"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``      list the bundled datasets (scaled Table 2) and strategies
``generate``  write a synthetic dataset to a LIBSVM or CSV file
``train``     train a model over a data file (or bundled dataset) with a
              chosen shuffling strategy; optionally save the model
``parallel-train``  train with real worker processes — sharded CorgiPile
              with sync/epoch/async aggregation (Section 5); can verify
              equivalence against the single-process reference
``predict``   score a saved model against a data file
``explain``   print the physical plan a TRAIN query would execute
``advise``    run the cost-based shuffle advisor over a dataset and print
              its per-device decision table (h_D probe + strategy costs)
``bench-io``  print the Figure 20 random-vs-sequential throughput curve
``loader-stats``  drive the concurrent loaders and print their
              observability counters (queue depth, stall/wait, overlap)
``kernel-bench``  time the scalar vs fused decode/SGD kernels and print
              a tuples/sec throughput table
``chaos``     train through fault-injected storage (transient errors, torn
              pages, latency, optional crash+resume) and verify the result
              is bit-identical to the fault-free run; ``--layout columnar``
              drives the chunk-pruned read path so faults land on column
              chunks
``migrate``   rewrite a row-format block file or heap file as columnar in
              place (atomic, CRC-verified, resumable) and print the report
``obs-report``  render (and optionally validate) an exported trace file as
              the human span-tree/metrics summary
``serve``     run the long-lived multi-client training daemon (sessions,
              async TRAIN job queue, crash-safe resume) over a data dir
``client``    connect to a running daemon: load tables, run statements,
              poll/cancel jobs, print live daemon stats

Telemetry: every workload command takes ``--trace-out PATH`` /
``--metrics-out PATH`` (shared argument group) and then emits through the
one :mod:`repro.obs` session — a JSONL span trace and/or a flat JSON
metrics snapshot, both re-renderable with ``repro obs-report``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from . import obs
from .bench import format_table
from .data import (
    DATASETS,
    Dataset,
    clustered_by_label,
    load,
    ordered_by_feature,
    read_csv,
    read_libsvm,
    write_csv,
    write_libsvm,
)
from .db import MiniDB, TrainQuery
from .ml import (
    ExponentialDecay,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    SoftmaxRegression,
    Trainer,
    load_model,
    save_model,
)
from .shuffle import STRATEGY_NAMES, make_strategy
from .storage import DEVICE_MODELS, device_by_name, random_vs_sequential_curve

__all__ = ["main", "build_parser"]

_MODELS = ("lr", "svm", "linreg", "softmax")


def _add_common_options(
    parser: argparse.ArgumentParser,
    *,
    workers: int | None = None,
    quick: bool = True,
    telemetry: bool = True,
) -> None:
    """The shared ``--seed/--workers/--quick/--trace-out/--metrics-out`` group.

    Every subcommand that takes any of these gets them from here, so the
    flags spell and default the same way everywhere (``--seed 0``; ``--quick``
    shrinks the workload for a smoke run; ``--workers`` appears only where a
    worker count is meaningful, with the subcommand's natural default).
    ``telemetry`` adds the unified ``--trace-out``/``--metrics-out`` export
    flags on every workload command.
    """
    group = parser.add_argument_group("common options")
    group.add_argument(
        "--seed", type=int, default=0,
        help="deterministic seed for shuffles, data generation, and faults",
    )
    if workers is not None:
        group.add_argument(
            "--workers", type=int, default=workers,
            help=f"number of parallel workers (default {workers})",
        )
    if quick:
        group.add_argument(
            "--quick", action="store_true",
            help="shrink the workload for a fast smoke run",
        )
    if telemetry:
        group.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="enable span tracing and write the JSONL trace here",
        )
        group.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write the flat JSON metrics snapshot here",
        )


@contextlib.contextmanager
def _telemetry(args):
    """Scope one command's run under the requested obs exports.

    No flags → no-op (tracing stays off).  With ``--trace-out`` and/or
    ``--metrics-out`` the session tracer records for the duration and the
    files are written on the way out — one code path for every command.
    """
    trace_path = getattr(args, "trace_out", None)
    metrics_path = getattr(args, "metrics_out", None)
    if trace_path is None and metrics_path is None:
        yield
        return
    obs.reset()  # each CLI run exports its own telemetry, not stale state
    with obs.trace_to(trace_path, metrics_path=metrics_path):
        yield
    for path in (trace_path, metrics_path):
        if path is not None:
            print(f"wrote {path}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CorgiPile reproduction — SGD without full data shuffle",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list bundled datasets and strategies")

    gen = sub.add_parser("generate", help="write a synthetic dataset to disk")
    gen.add_argument("dataset", choices=sorted(DATASETS))
    gen.add_argument("--out", required=True, help="output file path")
    gen.add_argument("--format", choices=("libsvm", "csv"), default="libsvm")
    gen.add_argument(
        "--order",
        default="shuffled",
        help="physical order: shuffled | clustered | feature:<index>",
    )
    _add_common_options(gen, quick=False, telemetry=False)

    train = sub.add_parser("train", help="train a model with a shuffle strategy")
    source = train.add_mutually_exclusive_group(required=True)
    source.add_argument("--data", help="LIBSVM/CSV input file")
    source.add_argument("--dataset", choices=sorted(DATASETS), help="bundled dataset")
    train.add_argument("--format", choices=("libsvm", "csv"), default="libsvm")
    train.add_argument("--task", choices=("binary", "multiclass", "regression"), default="binary")
    train.add_argument("--model", choices=_MODELS, default="lr")
    train.add_argument("--strategy", choices=STRATEGY_NAMES, default="corgipile")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--decay", type=float, default=0.95)
    train.add_argument("--batch-size", type=int, default=1)
    train.add_argument("--buffer-fraction", type=float, default=0.1)
    train.add_argument("--block-tuples", type=int, default=40)
    train.add_argument("--test-fraction", type=float, default=0.1)
    train.add_argument(
        "--where", metavar="PRED", default=None,
        help="train over the qualifying subset only (e.g. 'f0 >= 0.5 AND "
        "label = 1'); routes the run through the engine's TRAIN ... WHERE "
        "path, bit-exact against a materialised copy of the subset",
    )
    train.add_argument(
        "--index", metavar="COLUMN", default=None,
        help="with --where: build a B+tree index on COLUMN first, so the "
        "planner can pick the index-ordered fetch over the full scan",
    )
    train.add_argument(
        "--grid", metavar="AXES", default=None,
        help="model-hopper grid search, e.g. 'lr = 0.1 | 0.01, l2 = 0 | 1e-4': "
        "trains every axis combination in one data pass (S models hopping "
        "over P shard workers) and prints the leaderboard; each config's "
        "weights are bit-identical to training it alone",
    )
    train.add_argument("--save-model", help="write the trained model to this .npz path")
    _add_common_options(train, workers=1)

    par = sub.add_parser(
        "parallel-train",
        help="multi-process data-parallel training (sharded CorgiPile, Section 5)",
    )
    par.add_argument("--dataset", choices=sorted(DATASETS), default="susy")
    par.add_argument("--model", choices=_MODELS, default="lr")
    par.add_argument(
        "--mode", choices=("sync", "epoch", "async"), default="sync",
        help="aggregation: per-batch gradient averaging | epoch-end model "
        "averaging | Hogwild (default sync)",
    )
    par.add_argument("--epochs", type=int, default=5)
    par.add_argument("--lr", type=float, default=0.05)
    par.add_argument("--decay", type=float, default=0.95)
    par.add_argument("--global-batch-size", type=int, default=32)
    par.add_argument("--block-tuples", type=int, default=40)
    par.add_argument("--buffer-blocks", type=int, default=2)
    par.add_argument(
        "--compare-single",
        action="store_true",
        help="also run the equivalent single-process reference and verify the "
        "parallel model matches (sync: params within 1e-6; all modes: final "
        "accuracy within 0.5 pp); non-zero exit on mismatch",
    )
    par.add_argument("--json", help="write the full run report to this path")
    _add_common_options(par, workers=2)

    predict = sub.add_parser("predict", help="score a saved model on a data file")
    predict.add_argument("--model", required=True, help="saved .npz model")
    predict.add_argument("--data", required=True)
    predict.add_argument("--format", choices=("libsvm", "csv"), default="libsvm")
    predict.add_argument("--task", choices=("binary", "multiclass", "regression"), default="binary")

    explain = sub.add_parser("explain", help="print the TRAIN physical plan")
    explain.add_argument("--dataset", choices=sorted(DATASETS), default="higgs")
    explain.add_argument("--model", choices=_MODELS, default="svm")
    explain.add_argument(
        "--strategy", default="corgipile",
        help="access path, or 'auto' to show the cost advisor's decision",
    )
    explain.add_argument("--block-size", type=int, default=8 * 1024)
    explain.add_argument("--buffer-fraction", type=float, default=0.1)
    explain.add_argument(
        "--device", choices=sorted(DEVICE_MODELS), default="ssd",
        help="device model charged by the advisor for strategy=auto",
    )
    explain.add_argument(
        "--order", default="shuffled",
        help="physical order of the table: shuffled | clustered | feature:<index>",
    )
    explain.add_argument(
        "--where", metavar="PRED", default=None,
        help="show the filtered plan: predicate resolution, index-vs-scan "
        "fetch decision, and the RidBlockShuffle tree",
    )
    explain.add_argument(
        "--index", metavar="COLUMN", default=None,
        help="with --where: build a B+tree index on COLUMN before planning",
    )
    explain.add_argument(
        "--grid", metavar="AXES", default=None,
        help="show the model-hopper plan for a grid TRAIN, e.g. "
        "'lr = 0.1 | 0.01, l2 = 0 | 1e-4'",
    )

    advise = sub.add_parser(
        "advise",
        help="run the cost-based shuffle advisor over a dataset and print its decision",
    )
    advise.add_argument("--dataset", choices=sorted(DATASETS), default="higgs")
    advise.add_argument(
        "--order", default="clustered",
        help="physical order: shuffled | clustered | feature:<index>",
    )
    advise.add_argument(
        "--device", choices=sorted(DEVICE_MODELS), default=None,
        help="one device model (default: compare hdd, ssd and nvm)",
    )
    advise.add_argument("--block-size", type=int, default=8 * 1024)
    advise.add_argument("--buffer-fraction", type=float, default=0.1)
    advise.add_argument("--epochs", type=int, default=20)
    _add_common_options(advise, quick=False, telemetry=False)

    io_bench = sub.add_parser("bench-io", help="Figure 20 throughput curve")
    io_bench.add_argument("--device", choices=("hdd", "ssd", "nvm"), default="hdd")

    loader = sub.add_parser(
        "loader-stats",
        help="run the concurrent loaders and print their observability counters",
    )
    loader.add_argument("--dataset", choices=sorted(DATASETS), default="susy")
    loader.add_argument("--buffer-blocks", type=int, default=2)
    loader.add_argument("--batch-size", type=int, default=32)
    loader.add_argument("--epochs", type=int, default=2)
    loader.add_argument("--block-tuples", type=int, default=40)
    loader.add_argument("--buffer-tuples", type=int, default=200)
    loader.add_argument("--prefetch-depth", type=int, default=2)
    _add_common_options(loader, workers=2)

    kernel = sub.add_parser(
        "kernel-bench",
        help="time the scalar vs fused decode/SGD kernels",
    )
    kernel.add_argument(
        "--full",
        action="store_true",
        help="larger workloads for more stable numbers (default: quick)",
    )
    kernel.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    kernel.add_argument("--json", help="also write the full bench document to this path")
    _add_common_options(kernel, quick=False)

    chaos = sub.add_parser(
        "chaos",
        help="train under injected storage faults and verify fault-tolerance",
    )
    chaos.add_argument("--dataset", choices=sorted(DATASETS), default="susy")
    chaos.add_argument("--epochs", type=int, default=2)
    chaos.add_argument("--p-transient", type=float, default=0.2)
    chaos.add_argument("--p-torn", type=float, default=0.1)
    chaos.add_argument("--p-latency", type=float, default=0.0)
    chaos.add_argument("--latency-ms", type=float, default=1.0)
    chaos.add_argument("--max-failures", type=int, default=2)
    chaos.add_argument(
        "--crash-at",
        type=int,
        default=None,
        help="also kill the run after N tuples and resume it from checkpoint",
    )
    chaos.add_argument("--block-tuples", type=int, default=40)
    chaos.add_argument("--buffer-blocks", type=int, default=2)
    chaos.add_argument("--batch-size", type=int, default=64)
    chaos.add_argument(
        "--layout", choices=("row", "columnar"), default="row",
        help="block-file layout; columnar trains off pruned chunk reads, so "
        "injected faults address individual column chunks",
    )
    _add_common_options(chaos)

    mig = sub.add_parser(
        "migrate",
        help="rewrite a row block file or heap file as columnar, in place",
    )
    mig.add_argument("path", help="data file (block file with index sidecar, or heap file)")
    mig.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-block decode round-trip check before accepting blocks",
    )
    mig.add_argument(
        "--block-bytes", type=int, default=64 * 1024,
        help="heap sources only: page-run grouping per columnar block (default 64KB)",
    )
    mig.add_argument("--json", help="also write the migration report to this path")

    obsr = sub.add_parser(
        "obs-report",
        help="render (and optionally validate) an exported obs trace",
    )
    obsr.add_argument("trace", help="JSONL trace written by --trace-out")
    obsr.add_argument(
        "--metrics",
        help="also render a metrics snapshot written by --metrics-out",
    )
    obsr.add_argument(
        "--validate", action="store_true",
        help="check the trace against the checked-in JSON schema; "
        "non-zero exit on violations",
    )
    obsr.add_argument(
        "--schema", default=None,
        help="alternate schema path (default docs/obs_trace.schema.json)",
    )
    obsr.add_argument("--max-depth", type=int, default=6)

    serve = sub.add_parser(
        "serve",
        help="run the multi-client training daemon over a durable data dir",
    )
    serve.add_argument(
        "--data-dir", required=True,
        help="daemon state directory (job journal, checkpoints, server.json)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed "
        "and advertised in server.json)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=8,
        help="admission-control bound on queued TRAIN jobs (default 8)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=2,
        help="training worker threads (default 2)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=256, metavar="TUPLES",
        help="checkpoint cadence for TRAIN jobs (default 256 tuples)",
    )
    serve.add_argument(
        "--device", choices=sorted(DEVICE_MODELS), default="ssd",
        help="device model the plan-time advisor charges for strategy=auto "
        "TRAIN statements (default ssd)",
    )
    _add_common_options(serve, quick=False)

    client = sub.add_parser(
        "client",
        help="connect to a running daemon and run statements / inspect jobs",
    )
    client.add_argument(
        "--data-dir", default=None,
        help="find the daemon via its server.json advertisement",
    )
    client.add_argument("--host", default=None, help="explicit daemon host")
    client.add_argument("--port", type=int, default=None, help="explicit daemon port")
    client.add_argument(
        "--load", metavar="DATASET", default=None,
        help="materialise a bundled dataset as a session table first",
    )
    client.add_argument(
        "--order", default="shuffled", choices=("shuffled", "clustered"),
        help="row order for --load (default shuffled)",
    )
    client.add_argument(
        "--table", default=None,
        help="table name for --load (default: the dataset name)",
    )
    client.add_argument(
        "-e", "--execute", action="append", default=[], metavar="SQL",
        help="run one statement (repeatable, in order); TRAIN BY prints the "
        "job id and, with --wait, blocks for the result",
    )
    client.add_argument(
        "--wait", action="store_true",
        help="block on each submitted TRAIN job and print its final state",
    )
    client.add_argument("--status", metavar="JOB", default=None)
    client.add_argument("--cancel", metavar="JOB", default=None)
    client.add_argument(
        "--jobs", action="store_true", help="list this daemon's jobs"
    )
    client.add_argument(
        "--stats", action="store_true", help="print the live daemon stats"
    )
    client.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to stop"
    )
    _add_common_options(client, quick=False, telemetry=False)

    return parser


def _load_input(args) -> Dataset:
    if getattr(args, "dataset", None):
        return load(args.dataset, seed=getattr(args, "seed", 0))
    if args.format == "csv":
        return read_csv(args.data, task=args.task)
    return read_libsvm(args.data, task=args.task)


def _apply_order(dataset: Dataset, order: str, seed: int) -> Dataset:
    if order == "shuffled":
        return dataset.shuffled(seed=seed)
    if order == "clustered":
        return clustered_by_label(dataset, seed=seed)
    if order.startswith("feature:"):
        return ordered_by_feature(dataset, int(order.split(":", 1)[1]), seed=seed)
    raise SystemExit(f"unknown --order {order!r}")


def _build_model(name: str, dataset: Dataset):
    if name == "lr":
        return LogisticRegression(dataset.n_features)
    if name == "svm":
        return LinearSVM(dataset.n_features)
    if name == "linreg":
        return LinearRegression(dataset.n_features)
    return SoftmaxRegression(dataset.n_features, dataset.n_classes)


def _cmd_info(_args) -> int:
    rows = [
        {
            "name": name,
            "kind": spec.kind,
            "tuples": spec.n_tuples,
            "features": spec.n_features,
            "paper size": spec.paper_size,
        }
        for name, spec in DATASETS.items()
    ]
    print(format_table(rows, title="bundled datasets (scaled Table 2)"))
    print("\nshuffle strategies:", ", ".join(STRATEGY_NAMES))
    return 0


def _cmd_generate(args) -> int:
    dataset = _apply_order(load(args.dataset, seed=args.seed), args.order, args.seed)
    if args.format == "csv":
        write_csv(dataset, args.out)
    else:
        write_libsvm(dataset, args.out)
    print(f"wrote {dataset.n_tuples} tuples x {dataset.n_features} features to {args.out}")
    return 0


def _parallel_batch(batch_size: int, workers: int) -> int:
    """Round the batch size up to a multiple of the worker count."""
    per_worker = max(1, -(-batch_size // workers))
    return per_worker * workers


def _train_where(args, train_set, test_set, epochs: int) -> int:
    """``train --where``: route the run through the engine's filtered path.

    A filtered run needs the heap/index machinery — the predicate resolves
    to RIDs and the planner picks index-ordered fetch vs full scan — so
    ``--where`` trades the raw :class:`Trainer` for a MiniDB table and
    prints the planner's decision under the convergence table.
    """
    from .db.engine import WHERE_STRATEGIES
    from .db.query import CreateIndexQuery, parse_predicate

    if args.workers > 1:
        raise SystemExit("--where trains single-process (TRAIN ... WHERE has no parallel plan)")
    if args.strategy != "auto" and args.strategy not in WHERE_STRATEGIES:
        raise SystemExit(
            f"--where supports strategies auto, {', '.join(WHERE_STRATEGIES)}; "
            f"got {args.strategy!r}"
        )
    db = MiniDB(page_bytes=4096)
    info = db.create_table("t", train_set)
    if args.index:
        db.create_index(
            CreateIndexQuery(name=f"ix_{args.index}", table="t", column=args.index)
        )
    query = TrainQuery(
        table="t",
        model=args.model,
        strategy=args.strategy,
        learning_rate=args.lr,
        decay=args.decay,
        max_epoch_num=epochs,
        batch_size=args.batch_size,
        buffer_fraction=args.buffer_fraction,
        block_size=max(4096, int(args.block_tuples * info.tuple_bytes)),
        seed=args.seed,
        where=parse_predicate(args.where),
    )
    result = db.train(query, test=test_set)
    rows = [
        {
            "epoch": r.epoch,
            "lr": round(r.lr, 5),
            "train_loss": round(r.train_loss, 4),
            "train_score": round(r.train_score, 4),
            "test_score": round(r.test_score, 4) if r.test_score is not None else None,
        }
        for r in result.history.records
    ]
    print(
        format_table(
            rows, title=f"{args.model} via {result.query.strategy} WHERE {args.where}"
        )
    )
    d = result.query.extra["where"]
    via = f" via index {d['index']} on {d['index_column']}" if d["index"] else ""
    print(
        f"\nWHERE {d['predicate']}: {d['n_matching']} / {d['n_tuples']} tuples "
        f"({100 * d['selectivity']:.1f}% selectivity) -> fetch={d['fetch']}{via}"
    )
    physical = d.get("physical")
    if physical:
        print(
            f"physical: {physical['blocks_loaded']} blocks loaded, "
            f"{physical['pages_fetched']} page fetches, "
            f"{physical['device_page_reads']} device page reads"
        )
    if args.save_model:
        save_model(result.model, args.save_model)
        print(f"saved model to {args.save_model}")
    return 0


def _train_grid(args, train_set, test_set, epochs: int) -> int:
    """``train --grid``: one model-hopper pass over every axis combination.

    Routes through the engine's ``TRAIN ... WITH grid`` path — S models
    hop across P shard workers so each config sees the identical CorgiPile
    stream a solo run sees — and prints the leaderboard plus the hop
    schedule's cost summary.  ``--save-model`` writes the winner.
    """
    from .db.query import _parse_grid

    if args.strategy not in ("corgipile", "auto"):
        raise SystemExit(
            f"--grid executes model-hopper CorgiPile; --strategy "
            f"{args.strategy} has no grid plan"
        )
    db = MiniDB(page_bytes=4096)
    info = db.create_table("t", train_set)
    query = TrainQuery(
        table="t",
        model=args.model,
        strategy="corgipile",
        learning_rate=args.lr,
        decay=args.decay,
        max_epoch_num=epochs,
        batch_size=args.batch_size,
        buffer_fraction=args.buffer_fraction,
        block_size=max(4096, int(args.block_tuples * info.tuple_bytes)),
        seed=args.seed,
        workers=args.workers,
        grid=_parse_grid(args.grid),
    )
    result = db.train(query, test=test_set)
    rows = [
        {
            "rank": row["rank"],
            "config": row["label"],
            "model_id": row["model_id"],
            "train_loss": round(row["final_train_loss"], 4),
            "train_score": round(row["final_train_score"], 4),
            "epochs": row["epochs_run"],
        }
        for row in result.leaderboard
    ]
    hopper = result.query.extra["hopper"]
    sched = hopper["schedule"]
    print(
        format_table(
            rows,
            title=(
                f"{args.model} grid ({args.grid}) — "
                f"{sched['n_models']} models x {sched['n_workers']} workers"
            ),
        )
    )
    print(
        f"\nmodel hopper: {sched['total_slots']} sub-epoch slots "
        f"(bubble {sched['bubble_ratio']:.2f}x vs a perfect pipeline); "
        f"{hopper['tuples_processed']} tuples in {hopper['wall_seconds']:.2f}s; "
        f"best = {result.leaderboard[0]['label']}"
    )
    if args.save_model:
        save_model(result.model, args.save_model)
        print(f"saved winning model to {args.save_model}")
    return 0


def _cmd_train(args) -> int:
    dataset = _load_input(args)
    epochs = min(args.epochs, 3) if args.quick else args.epochs
    train_set, test_set = dataset.split(1.0 - args.test_fraction, seed=args.seed)
    if args.grid:
        if args.where:
            raise SystemExit("--grid and --where cannot combine (no filtered hopper plan)")
        return _train_grid(args, train_set, test_set, epochs)
    if args.where:
        return _train_where(args, train_set, test_set, epochs)
    model = _build_model(args.model, dataset)
    if args.workers > 1:
        # Real multi-process training: sharded CorgiPile over a materialised
        # block file (Section 5); other strategies have no parallel plan.
        import tempfile
        from pathlib import Path

        from .parallel import ParallelTrainer
        from .storage import write_block_file

        if args.strategy != "corgipile":
            raise SystemExit(
                f"--workers {args.workers} executes sharded CorgiPile; "
                f"--strategy {args.strategy} has no parallel plan"
            )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "train.blocks"
            write_block_file(train_set, path, args.block_tuples)
            buffer_blocks = max(
                1,
                round(
                    args.buffer_fraction
                    * train_set.n_tuples
                    / (args.workers * args.block_tuples)
                ),
            )
            history = ParallelTrainer(
                path,
                model,
                n_workers=args.workers,
                mode="sync",
                epochs=epochs,
                global_batch_size=_parallel_batch(args.batch_size, args.workers),
                buffer_blocks=buffer_blocks,
                seed=args.seed,
                schedule=ExponentialDecay(args.lr, args.decay),
                test=test_set,
                task=dataset.task,
            ).run().history
    else:
        layout = train_set.layout(args.block_tuples)
        strategy = make_strategy(
            args.strategy, layout, buffer_fraction=args.buffer_fraction, seed=args.seed
        )
        history = Trainer(
            model,
            train_set,
            strategy,
            epochs=epochs,
            schedule=ExponentialDecay(args.lr, args.decay),
            batch_size=args.batch_size,
            test=test_set,
        ).run()
    rows = [
        {
            "epoch": r.epoch,
            "lr": round(r.lr, 5),
            "train_loss": round(r.train_loss, 4),
            "train_score": round(r.train_score, 4),
            "test_score": round(r.test_score, 4) if r.test_score is not None else None,
        }
        for r in history.records
    ]
    suffix = f" x{args.workers} workers" if args.workers > 1 else ""
    print(format_table(rows, title=f"{args.model} via {args.strategy}{suffix}"))
    if args.save_model:
        save_model(model, args.save_model)
        print(f"saved model to {args.save_model}")
    return 0


def _cmd_predict(args) -> int:
    model = load_model(args.model)
    dataset = _load_input(args)
    predictions = model.predict(dataset.X)
    score = model.score(dataset.X, dataset.y)
    metric = "R^2" if dataset.task == "regression" else "accuracy"
    print(f"{predictions.size} predictions; {metric} = {score:.4f}")
    return 0


def _cmd_explain(args) -> int:
    dataset = _apply_order(load(args.dataset, seed=0), args.order, 0)
    db = MiniDB(device=device_by_name(args.device), page_bytes=1024)
    db.create_table(args.dataset, dataset)
    where = None
    if args.where:
        from .db.query import CreateIndexQuery, parse_predicate

        where = parse_predicate(args.where)
        if args.index:
            db.create_index(
                CreateIndexQuery(
                    name=f"ix_{args.index}", table=args.dataset, column=args.index
                )
            )
    grid = None
    if args.grid:
        from .db.query import _parse_grid

        grid = _parse_grid(args.grid)
    query = TrainQuery(
        table=args.dataset,
        model=args.model,
        strategy=args.strategy,
        block_size=args.block_size,
        buffer_fraction=args.buffer_fraction,
        where=where,
        grid=grid,
    )
    print(db.explain(query))
    return 0


def _cmd_advise(args) -> int:
    """Print the cost advisor's per-device decision for one dataset.

    Without ``--device``, runs the same statement against hdd, ssd and nvm
    side by side — the quickest way to see the device flipping the choice
    (the Figure 20 regime on spinning disks vs the LIRS byte-addressable
    point where full random access is fine).
    """
    from .db.advisor import advise_strategy
    from .db.catalog import Catalog
    from .db.engine import ENGINE_PROFILE

    dataset = _apply_order(load(args.dataset, seed=args.seed), args.order, args.seed)
    table = Catalog(page_bytes=1024).create_table(args.dataset, dataset)
    devices = [args.device] if args.device else ["hdd", "ssd", "nvm"]
    for i, name in enumerate(devices):
        decision = advise_strategy(
            table,
            device_by_name(name),
            block_bytes=args.block_size,
            buffer_fraction=args.buffer_fraction,
            epochs=args.epochs,
            compute=ENGINE_PROFILE,
        )
        if i:
            print()
        print(decision.render())
    return 0


def _cmd_bench_io(args) -> int:
    device = device_by_name(args.device)
    sizes = [2**k for k in range(12, 28, 2)]
    rows = [
        {
            "block": f"{int(r['block_bytes']) // 1024}KB",
            "random MB/s": round(r["random_mb_per_s"], 2),
            "sequential MB/s": round(r["sequential_mb_per_s"], 1),
            "ratio": round(r["ratio"], 3),
        }
        for r in random_vs_sequential_curve(device, sizes)
    ]
    print(format_table(rows, title=f"{device.name}: random vs sequential"))
    return 0


def _cmd_parallel_train(args) -> int:
    """Train with real worker processes; optionally verify against single-process.

    ``--compare-single`` re-runs the equivalent single-process reference
    over the same block file and checks the Section 5 equivalence for real:
    in sync mode the parallel parameters must match the reference within
    1e-6 (they match at float rounding), and in every mode the final
    training accuracy must land within 0.5 pp.  Exit code 0 iff the checks
    pass — the CI ``parallel-smoke`` job runs exactly this.
    """
    import json
    import tempfile
    from pathlib import Path

    import numpy as np

    from .parallel import ParallelTrainer, sync_reference_trainer
    from .storage import write_block_file

    dataset = load(args.dataset, seed=args.seed)
    epochs = args.epochs
    if args.quick:
        epochs = min(epochs, 3)
        if dataset.n_tuples > 1600:
            dataset = dataset.subset(range(1600))
    gbs = _parallel_batch(args.global_batch_size, args.workers)
    model = _build_model(args.model, dataset)
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "parallel.blocks"
        write_block_file(dataset, path, args.block_tuples)
        result = ParallelTrainer(
            path,
            model,
            n_workers=args.workers,
            mode=args.mode,
            epochs=epochs,
            global_batch_size=gbs,
            buffer_blocks=args.buffer_blocks,
            seed=args.seed,
            schedule=ExponentialDecay(args.lr, args.decay),
            task=dataset.task,
        ).run()

        rows = [
            {
                "epoch": r.epoch,
                "lr": round(r.lr, 5),
                "train_loss": round(r.train_loss, 4),
                "train_score": round(r.train_score, 4),
                "wall_s": round(result.epoch_walls[i], 3),
            }
            for i, r in enumerate(result.history.records)
        ]
        print(
            format_table(
                rows,
                title=f"{args.model} x{result.n_workers} workers ({result.mode})",
            )
        )
        loader = result.loader_stats.as_dict()
        print(
            f"\n{result.tuples_processed} tuples in {result.wall_seconds:.2f}s "
            f"({result.tuples_per_second:,.0f} tuples/s); "
            f"{loader['buffers_filled']} buffer fills across "
            f"{len(result.per_worker)} workers, {loader['live_threads']} live threads"
        )

        if args.compare_single:
            ref_model = _build_model(args.model, dataset)
            ref = sync_reference_trainer(
                path,
                ref_model,
                n_workers=args.workers,
                epochs=epochs,
                global_batch_size=gbs,
                buffer_blocks=args.buffer_blocks,
                seed=args.seed,
                schedule=ExponentialDecay(args.lr, args.decay),
                task=dataset.task,
            ).run()
            acc_gap = abs(result.history.final.train_score - ref.final.train_score)
            print(
                f"single-process reference accuracy {ref.final.train_score:.4f} "
                f"vs parallel {result.history.final.train_score:.4f} "
                f"(gap {100 * acc_gap:.3f} pp)"
            )
            ok &= acc_gap <= 0.005
            if args.mode == "sync":
                diff = float(
                    np.max(
                        np.abs(
                            model.parameter_vector() - ref_model.parameter_vector()
                        )
                    )
                )
                print(f"max parameter diff vs reference: {diff:.3e}")
                ok &= diff <= 1e-6
            print(f"equivalence verdict: {'PASS' if ok else 'FAIL'}")

    if args.json:
        report = result.describe()
        report["dataset"] = args.dataset
        report["seed"] = args.seed
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if ok else 1


def _cmd_loader_stats(args) -> int:
    """Exercise each concurrent loader for real and print its counters."""
    import tempfile
    from pathlib import Path

    from .core import (
        CorgiPileDataset,
        DataLoader as CoreDataLoader,
        MultiWorkerLoader,
        PrefetchLoader,
    )
    from .db import Catalog, overlap_report
    from .obs import LoaderMetrics
    from .db.engine import ENGINE_PROFILE
    from .db.operators import SeqScanOperator
    from .db.threaded import ThreadedTupleShuffleOperator
    from .db.timing import RuntimeContext
    from .storage import SSD, write_block_file

    dataset = load(args.dataset, seed=args.seed)
    epochs = 1 if args.quick else args.epochs
    args.epochs = epochs
    rows = []

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "loader.blocks"
        write_block_file(dataset, path, args.block_tuples)

        prefetch_stats = LoaderMetrics("prefetch")
        with CorgiPileDataset(
            path, buffer_blocks=args.buffer_blocks, seed=args.seed, stats=prefetch_stats
        ) as single:
            loader = PrefetchLoader(
                CoreDataLoader(single, batch_size=args.batch_size),
                depth=args.prefetch_depth,
                stats=prefetch_stats,
            )
            for epoch in range(args.epochs):
                single.set_epoch(epoch)
                for _ in loader:
                    pass
        rows.append(overlap_report(prefetch_stats))

        multi_stats = LoaderMetrics("multiworker")
        with MultiWorkerLoader(
            path,
            args.workers,
            args.buffer_blocks,
            batch_size=args.batch_size,
            seed=args.seed,
            prefetch_depth=args.prefetch_depth,
            stats=multi_stats,
        ) as multi:
            for epoch in range(args.epochs):
                multi.set_epoch(epoch)
                for _ in multi:
                    pass
        rows.append(overlap_report(multi_stats))

    threaded_stats = LoaderMetrics("threaded-tuple-shuffle")
    table = Catalog(page_bytes=1024).create_table(args.dataset, dataset)
    ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
    op = ThreadedTupleShuffleOperator(
        SeqScanOperator(table, ctx), args.buffer_tuples, seed=args.seed, stats=threaded_stats
    )
    op.open()
    for epoch in range(args.epochs):
        while op.next() is not None:
            pass
        if epoch + 1 < args.epochs:
            op.rescan()
    op.close()
    rows.append(overlap_report(threaded_stats))

    # One merged row across all loaders — the cross-process/-thread merge
    # the parallel engine uses, exercised here on the CLI path.  Each
    # loader's counters are also projected into the session registry, so a
    # --metrics-out snapshot carries the same numbers the table shows:
    # the printed rows are views over the exported snapshot format.
    total = LoaderMetrics("TOTAL")
    for stats in (prefetch_stats, multi_stats, threaded_stats):
        total.merge(stats)
        stats.to_registry(obs.get_registry(), prefix=f"loader.{stats.name}")
    rows.append(overlap_report(total.as_dict()))

    print(
        format_table(
            rows,
            title=f"loader observability — {args.dataset}, {args.epochs} epoch(s)",
        )
    )
    print(
        "\noverlap_fraction: share of cross-thread waiting borne by the producer"
        " (1.0 = loading fully hidden behind compute)"
    )
    return 0


def _cmd_kernel_bench(args) -> int:
    """Time scalar vs fused kernels and print the throughput table."""
    import json

    from .bench import kernel_bench_rows, run_kernel_bench

    doc = run_kernel_bench(quick=not args.full, seed=args.seed, repeats=args.repeats)
    title = f"kernel bench ({doc['config']}, seed={args.seed}, best of {args.repeats})"
    print(format_table(kernel_bench_rows(doc), title=title))
    summary = doc["summary"]
    print(
        f"\nepoch speedup (sparse): {summary['epoch_speedup']:.2f}x   "
        f"dense: {summary['epoch_dense_speedup']:.2f}x   "
        f"decode: {summary['decode_speedup']:.2f}x"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_chaos(args) -> int:
    """Train through fault-injected storage and verify equivalence.

    Runs the streaming trainer twice over the same on-disk block file — once
    clean, once through a seeded :class:`~repro.faults.FaultPlan` — and
    checks the final weights are *bit-identical* (transient faults must be
    fully absorbed by checksums + retries).  With ``--crash-at N`` it also
    kills a third run after N tuples and resumes it from its checkpoint,
    checking the resumed weights match the clean run.  Exit code 0 iff every
    equivalence check passes.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from .core import CorgiPileDataset, DataLoader as CoreDataLoader
    from .faults import FaultPlan, InjectedCrash, chaos_report, faulty_reader_factory
    from .obs import StorageMetrics
    from .ml import CheckpointConfig, train_streaming, train_streaming_chunks
    from .storage import write_block_file

    if args.quick:
        args.epochs = min(args.epochs, 1)
    dataset = load(args.dataset, seed=args.seed)
    model_clean = _build_model("lr", dataset)
    plan = FaultPlan(
        seed=args.seed,
        p_transient=args.p_transient,
        p_torn=args.p_torn,
        p_latency=args.p_latency,
        latency_s=args.latency_ms / 1e3,
        max_failures=args.max_failures,
        crash_at_tuple=args.crash_at,
    )
    stats = StorageMetrics("chaos")
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaos.blocks"
        write_block_file(dataset, path, args.block_tuples, layout=args.layout)

        def run(model, reader_factory=None, fault_plan=None, **kwargs):
            with CorgiPileDataset(
                path,
                buffer_blocks=args.buffer_blocks,
                seed=args.seed,
                reader_factory=reader_factory,
            ) as view:

                def loader_factory(epoch):
                    view.set_epoch(epoch)
                    return CoreDataLoader(view, batch_size=args.batch_size)

                return train_streaming(
                    model,
                    loader_factory,
                    epochs=args.epochs,
                    per_tuple=True,
                    fused=True,
                    fault_plan=fault_plan,
                    **kwargs,
                )

        def run_chunks(model, reader_factory=None):
            # Columnar mode: train off pruned chunk reads, so the fault plan
            # decides per ("chunk", block*8+col) instead of whole blocks.
            with CorgiPileDataset(
                path,
                buffer_blocks=args.buffer_blocks,
                seed=args.seed,
                reader_factory=reader_factory,
            ) as view:
                return train_streaming_chunks(model, view, epochs=args.epochs)

        compare_run = run_chunks if args.layout == "columnar" else run
        compare_run(model_clean)

        model_faulty = _build_model("lr", dataset)
        compare_run(model_faulty, reader_factory=faulty_reader_factory(plan, stats=stats))
        identical = all(
            np.array_equal(model_clean.params[k], model_faulty.params[k])
            for k in model_clean.params
        )
        ok &= identical
        # The printed table is a view over the exported snapshot format:
        # the same dict lands in --metrics-out via the session registry.
        stats.to_registry(obs.get_registry(), prefix="chaos")
        print(format_table([chaos_report(stats.as_dict(), plan)], title="chaos run counters"))
        print(
            f"\nfaults injected: {stats.faults_injected}, retries: {stats.retries} — "
            f"faulty-run weights {'bit-identical to' if identical else 'DIFFER from'} "
            "clean run"
        )

        if args.crash_at is not None:
            ckpath = Path(tmp) / "chaos.ckpt.npz"
            crash_plan = FaultPlan(seed=args.seed, crash_at_tuple=args.crash_at)
            model_crash = _build_model("lr", dataset)
            try:
                run(
                    model_crash,
                    fault_plan=crash_plan,
                    checkpoint=CheckpointConfig(ckpath, every_tuples=args.batch_size),
                )
                print(f"\ncrash-at {args.crash_at}: run finished before the crash point")
            except InjectedCrash as exc:
                model_resumed = _build_model("lr", dataset)
                run(model_resumed, resume_from=ckpath)
                diff = max(
                    float(np.max(np.abs(model_clean.params[k] - model_resumed.params[k])))
                    for k in model_clean.params
                )
                ok &= diff <= 1e-12
                print(
                    f"\ninjected crash ({exc}); resumed from {ckpath.name}: "
                    f"max weight diff vs uninterrupted run = {diff:.3e} "
                    f"({'OK' if diff <= 1e-12 else 'MISMATCH'})"
                )

    print(f"\nchaos verdict: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_migrate(args) -> int:
    """Rewrite a row-format data file as columnar in place and report.

    Detects the source kind (block file with index sidecar vs heap file),
    converts block by block with per-block CRC + optional decode round-trip
    verification, journals progress so an interrupted run resumes, and
    finishes with an atomic replace — an already-columnar file is a no-op.
    """
    import json

    from .storage import migrate_file

    report = migrate_file(
        args.path, verify=not args.no_verify, block_bytes=args.block_bytes
    )
    doc = report.to_doc()
    if report.skipped:
        print(f"{args.path}: already columnar ({report.n_blocks} blocks), nothing to do")
    else:
        resumed = (
            f", resumed at block {report.resumed_at_block}"
            if report.resumed_at_block
            else ""
        )
        print(
            f"migrated {args.path} ({report.kind}): {report.n_blocks} blocks, "
            f"{report.n_tuples} tuples, {report.bytes_per_tuple_before:.1f} -> "
            f"{report.bytes_per_tuple_after:.1f} bytes/tuple "
            f"({report.verified_blocks} blocks verified{resumed})"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_obs_report(args) -> int:
    """Render an exported trace (and metrics) as the summary tree.

    With ``--validate``, the trace is first checked against the pinned
    JSON schema (``docs/obs_trace.schema.json``); any violation prints and
    fails the command — this is what the CI ``obs-smoke`` job runs.
    """
    import json

    from .obs import (
        Registry,
        load_schema,
        read_trace_jsonl,
        render_report,
        validate_events,
    )

    meta, events = read_trace_jsonl(args.trace)
    if args.validate:
        errors = validate_events(meta, events, load_schema(args.schema))
        if errors:
            for problem in errors:
                print(f"INVALID: {problem}")
            print(f"\n{args.trace}: {len(errors)} schema violation(s)")
            return 1
        print(
            f"{args.trace}: valid (version {meta.get('version')}, "
            f"{meta.get('span_count')} spans, {meta.get('dropped')} dropped)"
        )
    registry = None
    snapshot = next((e for e in events if e.get("type") == "metrics"), None)
    if args.metrics:
        with open(args.metrics) as fh:
            snapshot = json.load(fh)
    if snapshot is not None:
        registry = Registry.from_snapshot(snapshot)
    print(render_report(events, registry=registry, max_depth=args.max_depth))
    return 0


def _cmd_serve(args) -> int:
    import signal

    from .serve import ReproServer

    server = ReproServer(
        args.data_dir,
        host=args.host,
        port=args.port,
        max_queued=args.max_queued,
        job_workers=args.job_workers,
        checkpoint_every_tuples=args.checkpoint_every,
        device=args.device,
    )
    server.start()
    print(f"repro daemon listening on {server.host}:{server.port}")
    print(f"state dir: {server.data_dir}")

    def _graceful(_signum, _frame):
        server._shutdown_requested.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError):  # non-main threads in tests
            signal.signal(sig, _graceful)
    server.serve_forever()
    print("daemon stopped")
    return 0


def _cmd_client(args) -> int:
    from .serve import ReproClient, ServerError

    if args.data_dir is None and (args.host is None or args.port is None):
        print("client needs --data-dir or --host/--port", file=sys.stderr)
        return 2
    if args.data_dir is not None:
        client = ReproClient.from_server_file(args.data_dir)
    else:
        client = ReproClient(args.host, args.port)
    exit_code = 0
    with client:
        try:
            if args.load:
                info = client.load(
                    args.load,
                    table=args.table,
                    order=args.order,
                    seed=args.seed,
                )
                print(
                    f"loaded {info['table']}: {info['n_tuples']} tuples x "
                    f"{info['n_features']} features ({info['order']})"
                )
            for statement in args.execute:
                response = client.sql(statement)
                if "job_id" in response:
                    print(f"submitted {response['job_id']}")
                    if args.wait:
                        final = client.wait(response["job_id"])
                        print(f"{final['job_id']}: {final['state']}", end="")
                        if final.get("result"):
                            print(f" {final['result']}", end="")
                        if final.get("error"):
                            print(f" ({final['error']})", end="")
                        print()
                        if final["state"] != "done":
                            exit_code = 1
                else:
                    _print_json(response)
            if args.status:
                _print_json(client.status(args.status))
            if args.cancel:
                _print_json(client.cancel(args.cancel))
            if args.jobs:
                for job in client.jobs(all_sessions=True):
                    line = f"{job['job_id']:<8} {job['state']:<10} {job.get('table', '')}"
                    if job.get("result"):
                        line += f" loss={job['result'].get('final_train_loss')}"
                    print(line)
            if args.stats:
                _print_json(client.stats())
            if args.shutdown:
                client.shutdown()
                print("daemon shutting down")
                return exit_code
        except ServerError as exc:
            print(f"server error: {exc}", file=sys.stderr)
            return 1
    return exit_code


def _print_json(payload) -> None:
    import json

    payload = dict(payload)
    payload.pop("ok", None)
    print(json.dumps(payload, indent=2, default=str))


_COMMANDS = {
    "info": _cmd_info,
    "generate": _cmd_generate,
    "train": _cmd_train,
    "parallel-train": _cmd_parallel_train,
    "predict": _cmd_predict,
    "explain": _cmd_explain,
    "advise": _cmd_advise,
    "bench-io": _cmd_bench_io,
    "loader-stats": _cmd_loader_stats,
    "kernel-bench": _cmd_kernel_bench,
    "chaos": _cmd_chaos,
    "migrate": _cmd_migrate,
    "obs-report": _cmd_obs_report,
    "serve": _cmd_serve,
    "client": _cmd_client,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _telemetry(args):
            return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `repro info | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
