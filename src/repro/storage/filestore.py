"""On-disk persistence for heap files.

The engine's :class:`~repro.storage.heapfile.HeapFile` lives in memory; this
module gives it a real on-disk form so tables survive process restarts and
page reads hit an actual file:

* :func:`save_heap` writes the page images (padded to the page capacity,
  like PostgreSQL data files) plus a JSON header recording the schema,
  page capacity, and each page's slot directory;
* :func:`load_heap` maps the file back into a fully functional
  :class:`HeapFile` (pages re-split into their original tuple payloads).

Round-tripping is byte-exact: every tuple payload, page boundary, and
compression flag is preserved, so block layouts and the operators behave
identically on the reloaded table.
"""

from __future__ import annotations

import json
from pathlib import Path

from .codec import TupleSchema
from .heapfile import HeapFile
from .page import Page

__all__ = ["save_heap", "load_heap"]

_MAGIC = b"CORGIHEAP1"


def save_heap(heap: HeapFile, path: str | Path) -> Path:
    """Persist ``heap`` to ``path`` (header + padded page images)."""
    path = Path(path)
    heap.flush()  # columnar heaps: push buffered rows into their final page
    header = {
        "n_features": heap.schema.n_features,
        "sparse": heap.schema.sparse,
        "page_bytes": heap.page_bytes,
        "compress": heap.compress,
        "layout": heap.layout,
        "pages": [
            {
                "capacity": page.capacity,
                # Dead slots render as length 0 (Snippet-2 style line
                # pointers) so RIDs survive a save/load round trip; their
                # payload bytes are dropped, i.e. saving compacts the page.
                "slots": page.slot_lengths(),
            }
            for page in heap.pages
        ],
    }
    header_bytes = json.dumps(header).encode()
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(len(header_bytes).to_bytes(8, "little"))
        f.write(header_bytes)
        for page in heap.pages:
            raw = page.raw()
            f.write(raw)
            f.write(b"\x00" * (page.capacity - len(raw)))  # pad like a data file
    return path


def load_heap(path: str | Path) -> HeapFile:
    """Reload a heap file written by :func:`save_heap`."""
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a heap file (bad magic {magic!r})")
        header_len = int.from_bytes(f.read(8), "little")
        header = json.loads(f.read(header_len).decode())
        schema = TupleSchema(header["n_features"], sparse=header["sparse"])
        heap = HeapFile(
            schema,
            page_bytes=header["page_bytes"],
            compress=header["compress"],
            layout=header.get("layout", "row"),  # pre-columnar files are row
        )
        for page_id, page_info in enumerate(header["pages"]):
            image = f.read(page_info["capacity"])
            if len(image) != page_info["capacity"]:
                raise ValueError(f"{path}: truncated page {page_id}")
            payloads: list[bytes | None] = []
            offset = 0
            for slot_len in page_info["slots"]:
                if slot_len == 0:
                    payloads.append(None)  # dead slot: keep the id, no bytes
                else:
                    payloads.append(image[offset : offset + slot_len])
                    offset += slot_len
            heap.pages.append(Page.from_slots(page_id, page_info["capacity"], payloads))
        # Rebuild the position -> (page, slot) directory.  Row pages hold one
        # tuple per slot; a columnar page is one payload whose header says
        # how many rows it packs (``slot`` is then the row index).
        from .heapfile import _TupleRef

        if heap.layout == "columnar":
            from .columnar import read_columnar_header

            for page in heap.pages:
                (payload,) = page.tuple_payloads()
                n_rows = read_columnar_header(payload)[0]
                for row in range(n_rows):
                    heap._refs.append(_TupleRef(page.page_id, row))
        else:
            for page in heap.pages:
                for slot in page.live_slots():
                    heap._refs.append(_TupleRef(page.page_id, slot))
    return heap
