"""An LRU buffer pool over heap-file pages.

PostgreSQL reads pages through its buffer manager; CorgiPile's deep
integration sits below the UDA layer precisely so it can drive block-granular
page reads through this component.  The pool here caches decoded pages with
an LRU policy and counts hits/misses, so experiments can report OS-cache-like
effects (small datasets become memory-resident after the first epoch —
Section 7.3.4's observation about higgs/susy/epsilon per-epoch times).

Pages are decoded in bulk into a columnar
:class:`~repro.storage.codec.TupleBatch` (one ``decode_page`` call per miss);
the per-tuple view consumed by the Volcano operators is materialised lazily
from the cached batch, so batch consumers and tuple consumers share one LRU
entry and the decode work is paid once either way.

The pool is also the heap side's fault boundary: with a
:class:`~repro.storage.retry.RetryPolicy` attached, page reads that raise a
retryable fault (transient error, checksum mismatch) are reissued up to the
budget.  Every failed attempt **invalidates any cached entry for that page
before retrying** — a page that went through a fault window may have been
cached from a pre-fault decode, and serving that stale batch would silently
corrupt training; only checksum-verified reads may live in the cache
(regression-tested in ``tests/test_bufferpool.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from .. import obs
from .codec import TrainingTuple, TupleBatch
from .heapfile import HeapFile
from .retry import RetryPolicy

__all__ = ["BufferPool"]


class _PageEntry:
    """One cached page: the decoded batch plus a lazy per-tuple view."""

    __slots__ = ("batch", "_tuples")

    def __init__(self, batch: TupleBatch):
        self.batch = batch
        self._tuples: tuple[TrainingTuple, ...] | None = None

    def tuples(self) -> tuple[TrainingTuple, ...]:
        if self._tuples is None:
            # Immutable tuple: the cached entry is shared by every reader, so
            # a mutable list would let one caller corrupt the page for all
            # later readers.
            self._tuples = tuple(self.batch.to_tuples())
        return self._tuples

    def decoded_nbytes(self) -> int:
        """Real decoded memory this entry pins (not the encoded page size).

        Lazy columnar batches report only the chunks materialised so far —
        the figure *grows* as consumers touch more columns, which is why the
        pool re-enforces its byte budget on every access, not just on insert.
        """
        batch = self.batch
        lazy = getattr(batch, "decoded_nbytes", None)
        if lazy is not None:
            return int(lazy)
        total = batch.ids.nbytes + batch.labels.nbytes
        if batch.is_sparse:
            total += batch.indptr.nbytes + batch.indices.nbytes + batch.values.nbytes
        else:
            total += batch.dense.nbytes
        return total


class BufferPool:
    """Caches decoded pages of a single heap file."""

    def __init__(
        self,
        heap: HeapFile,
        capacity_pages: int,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
        capacity_bytes: int | None = None,
    ):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive when given")
        self.heap = heap
        self.capacity_pages = capacity_pages
        #: Optional budget on *decoded* bytes cached — the real RSS the pool
        #: pins, not the encoded page size (a zlib'd or bit-packed page can
        #: decode to many times its stored footprint).
        self.capacity_bytes = capacity_bytes
        self.retry = retry
        self.storage_stats = storage_stats
        self._cache: OrderedDict[int, _PageEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _read_batch(self, page_id: int) -> TupleBatch:
        """One verified page read, retried (with invalidation) under faults."""
        if self.retry is None:
            return self.heap.read_page_batch(page_id)

        def on_retry(_exc: Exception) -> None:
            # The fix for the stale-batch hazard: a failed attempt means the
            # page is inside a fault window, so any batch cached from an
            # earlier read of it can no longer be trusted.  Drop it *before*
            # the retry, never after use.
            self.invalidate(page_id)

        return self.retry.run(
            lambda attempt: self.heap.read_page_batch(page_id, attempt=attempt),
            stats=self.storage_stats,
            describe=f"page {page_id}",
            on_retry=on_retry,
        )

    def _entry_traced(self, page_id: int) -> tuple[_PageEntry, bool]:
        # Page access is the hottest storage seam, so the registry counters
        # are published only while telemetry is on; the local hit/miss ints
        # stay always-available for hit_rate and the planner.
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            self.hits += 1
            if obs.enabled():
                obs.inc("storage.bufferpool.hits")
            # Lazy entries grow between accesses (columns materialise after
            # the batch left the pool), so the byte budget is re-checked on
            # hits too — the just-touched page is protected as MRU.
            self._enforce_capacity()
            return self._cache[page_id], True
        self.misses += 1
        if obs.enabled():
            obs.inc("storage.bufferpool.misses")
        entry = _PageEntry(self._read_batch(page_id))
        self._cache[page_id] = entry
        self._enforce_capacity()
        return entry, False

    def _enforce_capacity(self) -> None:
        while len(self._cache) > self.capacity_pages or (
            self.capacity_bytes is not None
            and len(self._cache) > 1
            and self.decoded_bytes > self.capacity_bytes
        ):
            self._cache.popitem(last=False)
            self.evictions += 1
            obs.inc("storage.bufferpool.evictions")

    def get_page(self, page_id: int) -> tuple[TrainingTuple, ...]:
        """Return the decoded tuples of ``page_id``, via the cache."""
        return self.get_page_traced(page_id)[0]

    def get_page_traced(self, page_id: int) -> tuple[tuple[TrainingTuple, ...], bool]:
        """Like :meth:`get_page`, also reporting whether it was a cache hit.

        The hit flag lets callers charge the read at memory speed instead of
        device speed (the experiments' "cached after the first epoch"
        behaviour on small datasets).
        """
        entry, hit = self._entry_traced(page_id)
        return entry.tuples(), hit

    def get_batch(self, page_id: int) -> TupleBatch:
        """The page as a columnar batch (decoded once, shared with tuples)."""
        return self.get_batch_traced(page_id)[0]

    def get_batch_traced(self, page_id: int) -> tuple[TupleBatch, bool]:
        """Like :meth:`get_batch`, also reporting whether it was a cache hit."""
        entry, hit = self._entry_traced(page_id)
        return entry.batch, hit

    # ------------------------------------------------------------------
    def invalidate(self, page_id: int) -> bool:
        """Drop the cached entry for one page (if present).

        Called by the retry path after every failed read attempt, and by
        chaos harnesses after a known fault window, so a stale pre-fault
        batch can never be served as a "hit".
        """
        dropped = self._cache.pop(page_id, None) is not None
        if dropped:
            obs.inc("storage.bufferpool.invalidations")
            if self.storage_stats is not None:
                self.storage_stats.record_cache_invalidation()
        return dropped

    def refresh(self, page_id: int) -> tuple[TrainingTuple, ...]:
        """Invalidate and re-read one page through the verified path."""
        self.invalidate(page_id)
        return self.get_page(page_id)

    @property
    def cached_pages(self) -> int:
        return len(self._cache)

    @property
    def decoded_bytes(self) -> int:
        """Decoded bytes currently pinned by the cache (what eviction charges)."""
        return sum(entry.decoded_nbytes() for entry in self._cache.values())

    def is_cached(self, page_id: int) -> bool:
        return page_id in self._cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all cached pages (the experiments clear the OS cache)."""
        self._cache.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
