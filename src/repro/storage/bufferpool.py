"""An LRU buffer pool over heap-file pages.

PostgreSQL reads pages through its buffer manager; CorgiPile's deep
integration sits below the UDA layer precisely so it can drive block-granular
page reads through this component.  The pool here caches decoded pages with
an LRU policy and counts hits/misses, so experiments can report OS-cache-like
effects (small datasets become memory-resident after the first epoch —
Section 7.3.4's observation about higgs/susy/epsilon per-epoch times).
"""

from __future__ import annotations

from collections import OrderedDict

from .codec import TrainingTuple
from .heapfile import HeapFile

__all__ = ["BufferPool"]


class BufferPool:
    """Caches decoded pages of a single heap file."""

    def __init__(self, heap: HeapFile, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.heap = heap
        self.capacity_pages = capacity_pages
        self._cache: OrderedDict[int, tuple[TrainingTuple, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_page(self, page_id: int) -> tuple[TrainingTuple, ...]:
        """Return the decoded tuples of ``page_id``, via the cache."""
        return self.get_page_traced(page_id)[0]

    def get_page_traced(self, page_id: int) -> tuple[tuple[TrainingTuple, ...], bool]:
        """Like :meth:`get_page`, also reporting whether it was a cache hit.

        The hit flag lets callers charge the read at memory speed instead of
        device speed (the experiments' "cached after the first epoch"
        behaviour on small datasets).

        Pages are handed out as immutable tuples: the cached entry is shared
        by every reader, so a mutable list would let one caller corrupt the
        page for all later readers.
        """
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            self.hits += 1
            return self._cache[page_id], True
        self.misses += 1
        tuples = tuple(self.heap.read_page(page_id))
        self._cache[page_id] = tuples
        if len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)
        return tuples, False

    @property
    def cached_pages(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all cached pages (the experiments clear the OS cache)."""
        self._cache.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
