"""Binary tuple codec.

Serialises training tuples to bytes using the paper's storage schema
``<id, features_k[], features_v[], label>`` (Section 6): dense tuples store
only ``features_v``, sparse tuples store parallel index/value arrays.  The
codec is shared by the heap-file pages of the mini database engine and the
on-disk block files of the PyTorch-style integration, so both sides measure
identical tuple sizes.

Wire format (little-endian):

* header: ``tuple_id:int64, label:float64, nnz:int32`` where ``nnz < 0``
  marks a dense tuple of ``-nnz`` values;
* dense payload: ``-nnz`` float64 feature values;
* sparse payload: ``nnz`` int32 indices followed by ``nnz`` float64 values.

Two decode granularities are provided:

* :func:`decode_tuple` — the scalar reference path, one ``struct`` parse per
  tuple;
* :func:`decode_page` / :func:`decode_block` — the vectorized path: parse a
  whole run of concatenated tuples in bulk via ``np.frombuffer`` into a
  columnar :class:`TupleBatch` (ids, labels, and either a dense matrix or
  CSR indptr/indices/values).  Uniform pages (all-dense of one width, or
  all-sparse) take the bulk path; irregular pages fall back to repeated
  :func:`decode_tuple`, so the batch output is always element-wise identical
  to the scalar path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.sparse import SparseMatrix, SparseRow

__all__ = [
    "TupleSchema",
    "TrainingTuple",
    "TupleBatch",
    "encode_tuple",
    "decode_tuple",
    "decode_page",
    "decode_block",
    "encode_block_columnar",
    "decode_block_columnar",
]

_HEADER = struct.Struct("<qdi")


@dataclass(frozen=True)
class TupleSchema:
    """Static description of a table's tuples."""

    n_features: int
    sparse: bool = False

    def dense_tuple_bytes(self) -> int:
        """Size of one dense tuple under this schema."""
        return _HEADER.size + 8 * self.n_features

    def sparse_tuple_bytes(self, nnz: int) -> int:
        return _HEADER.size + 12 * nnz


@dataclass
class TrainingTuple:
    """A decoded training tuple."""

    tuple_id: int
    label: float
    features: np.ndarray | SparseRow

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.features, SparseRow)


@dataclass
class TupleBatch:
    """A columnar run of decoded tuples.

    Either ``dense`` is a ``(n, d)`` float64 matrix, or the CSR triple
    ``indptr``/``indices``/``values`` describes ``n`` sparse rows over
    ``n_features`` columns.  ``ids``/``labels`` are parallel per-row arrays.

    Rows handed out by :meth:`row` / :meth:`to_tuples` are views into the
    columnar arrays (not copies): the batch is the single owner of the
    decoded data, which is what makes block-granular decode cheap.
    """

    ids: np.ndarray
    labels: np.ndarray
    n_features: int
    dense: np.ndarray | None = None
    indptr: np.ndarray | None = None
    indices: np.ndarray | None = None
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        if (self.dense is None) == (self.indptr is None):
            raise ValueError("exactly one of dense / indptr must be set")
        if self.indptr is not None and self.indptr.size != self.ids.size + 1:
            raise ValueError("indptr must have n + 1 entries")

    @property
    def is_sparse(self) -> bool:
        return self.dense is None

    def __len__(self) -> int:
        return int(self.ids.size)

    # ------------------------------------------------------------------
    def row(self, i: int) -> np.ndarray | SparseRow:
        """Features of row ``i`` (a view into the columnar arrays)."""
        if self.dense is not None:
            return self.dense[i]
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return SparseRow(self.indices[lo:hi], self.values[lo:hi], self.n_features)

    def to_tuples(self) -> list[TrainingTuple]:
        """Materialise the per-tuple view (for Volcano-style consumers)."""
        ids = self.ids.tolist()
        labels = self.labels.tolist()
        return [
            TrainingTuple(ids[i], labels[i], self.row(i)) for i in range(len(self))
        ]

    def features_matrix(self) -> np.ndarray | SparseMatrix:
        """The features as a dense matrix or :class:`SparseMatrix`."""
        if self.dense is not None:
            return self.dense
        return SparseMatrix(
            self.indptr, self.indices, self.values, (len(self), self.n_features)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls, records: Sequence[TrainingTuple], schema: TupleSchema
    ) -> "TupleBatch":
        """Columnarise already-decoded tuples (the scalar fallback path)."""
        n = len(records)
        ids = np.fromiter((r.tuple_id for r in records), dtype=np.int64, count=n)
        labels = np.fromiter((r.label for r in records), dtype=np.float64, count=n)
        if not schema.sparse:
            dense = (
                np.stack([np.asarray(r.features, dtype=np.float64) for r in records])
                if n
                else np.empty((0, schema.n_features), dtype=np.float64)
            )
            if dense.shape[1] != schema.n_features:
                raise ValueError(
                    f"dense rows have {dense.shape[1]} features, schema says "
                    f"{schema.n_features}"
                )
            return cls(ids, labels, schema.n_features, dense=dense)
        rows = [_as_sparse_row(r.features, schema.n_features) for r in records]
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, row in enumerate(rows):
            indptr[i + 1] = indptr[i] + row.nnz
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        values = np.empty(nnz, dtype=np.float64)
        for i, row in enumerate(rows):
            indices[indptr[i] : indptr[i + 1]] = row.indices
            values[indptr[i] : indptr[i + 1]] = row.values
        return cls(
            ids, labels, schema.n_features, indptr=indptr, indices=indices, values=values
        )

    @classmethod
    def concat(cls, batches: Sequence["TupleBatch"]) -> "TupleBatch":
        """Stack batches of one schema into a single batch (e.g. a page run)."""
        if not batches:
            raise ValueError("cannot concat zero batches")
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        ids = np.concatenate([b.ids for b in batches])
        labels = np.concatenate([b.labels for b in batches])
        if not first.is_sparse:
            return cls(
                ids,
                labels,
                first.n_features,
                dense=np.concatenate([b.dense for b in batches], axis=0),
            )
        counts = np.concatenate([np.diff(b.indptr) for b in batches])
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            ids,
            labels,
            first.n_features,
            indptr=indptr,
            indices=np.concatenate([b.indices for b in batches]),
            values=np.concatenate([b.values for b in batches]),
        )


def encode_tuple(tuple_id: int, label: float, features: np.ndarray | SparseRow) -> bytes:
    """Serialise one tuple to bytes."""
    if isinstance(features, SparseRow):
        header = _HEADER.pack(tuple_id, float(label), features.nnz)
        idx = features.indices.astype("<i4").tobytes()
        val = features.values.astype("<f8").tobytes()
        return header + idx + val
    dense = np.asarray(features, dtype="<f8")
    header = _HEADER.pack(tuple_id, float(label), -dense.size)
    return header + dense.tobytes()


def decode_tuple(buffer: bytes, offset: int, schema: TupleSchema) -> tuple[TrainingTuple, int]:
    """Deserialise one tuple starting at ``offset``; return (tuple, next offset)."""
    tuple_id, label, nnz = _HEADER.unpack_from(buffer, offset)
    offset += _HEADER.size
    if nnz < 0:
        n = -nnz
        values = np.frombuffer(buffer, dtype="<f8", count=n, offset=offset).copy()
        offset += 8 * n
        return TrainingTuple(tuple_id, label, values), offset
    indices = np.frombuffer(buffer, dtype="<i4", count=nnz, offset=offset).astype(np.int64)
    offset += 4 * nnz
    values = np.frombuffer(buffer, dtype="<f8", count=nnz, offset=offset).copy()
    offset += 8 * nnz
    row = SparseRow(indices, values, schema.n_features)
    return TrainingTuple(tuple_id, label, row), offset


# ----------------------------------------------------------------------
# Bulk (columnar) decode
# ----------------------------------------------------------------------

def decode_page(
    buffer: bytes, n_tuples: int, schema: TupleSchema, offset: int = 0
) -> TupleBatch:
    """Decode ``n_tuples`` concatenated tuples starting at ``offset`` in bulk.

    Uniform runs are parsed with a handful of ``np.frombuffer``/gather calls
    instead of one ``struct`` parse per tuple; irregular runs (mixed layouts)
    fall back to repeated :func:`decode_tuple`.
    """
    if n_tuples == 0:
        return TupleBatch.from_tuples([], schema)
    if not schema.sparse:
        batch = _decode_dense_run(buffer, n_tuples, schema, offset)
        if batch is not None:
            return batch
    else:
        batch = _decode_sparse_run(buffer, n_tuples, schema, offset)
        if batch is not None:
            return batch
    return TupleBatch.from_tuples(
        _decode_run_scalar(buffer, n_tuples, schema, offset), schema
    )


def decode_block(
    buffer: bytes, n_tuples: int, schema: TupleSchema, offset: int = 0
) -> TupleBatch:
    """Decode one block's concatenated tuples (a block is a page run)."""
    return decode_page(buffer, n_tuples, schema, offset=offset)


def _decode_run_scalar(
    buffer: bytes, n_tuples: int, schema: TupleSchema, offset: int
) -> list[TrainingTuple]:
    out: list[TrainingTuple] = []
    for _ in range(n_tuples):
        decoded, offset = decode_tuple(buffer, offset, schema)
        out.append(decoded)
    return out


def _dense_record_dtype(n_features: int) -> np.dtype:
    return np.dtype(
        [("id", "<i8"), ("label", "<f8"), ("nnz", "<i4"), ("vals", "<f8", (n_features,))]
    )


def _decode_dense_run(
    buffer: bytes, n_tuples: int, schema: TupleSchema, offset: int
) -> TupleBatch | None:
    """Bulk-parse a uniform dense run, or ``None`` if the layout is irregular."""
    d = schema.n_features
    record_bytes = _HEADER.size + 8 * d
    if len(buffer) - offset < n_tuples * record_bytes:
        return None
    records = np.frombuffer(
        buffer, dtype=_dense_record_dtype(d), count=n_tuples, offset=offset
    )
    if not np.all(records["nnz"] == -d):
        return None
    return TupleBatch(
        ids=records["id"].astype(np.int64),
        labels=records["label"].astype(np.float64),
        n_features=d,
        dense=records["vals"].astype(np.float64),
    )


def _segment_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat positions covering ``[starts[i], starts[i] + lengths[i])`` per segment."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_off = np.cumsum(lengths) - lengths  # where each segment lands in the output
    return np.repeat(starts - seg_off, lengths) + np.arange(total, dtype=np.int64)


def _decode_sparse_run(
    buffer: bytes, n_tuples: int, schema: TupleSchema, offset: int
) -> TupleBatch | None:
    """Bulk-parse a uniform sparse run, or ``None`` if the layout is irregular.

    Record lengths vary with nnz, so one cheap sequential pass parses the
    headers (offset chain); the index/value payloads are then gathered with
    two vectorized byte-gathers instead of per-tuple ``frombuffer`` calls.
    """
    header_size = _HEADER.size
    unpack = _HEADER.unpack_from
    ids = np.empty(n_tuples, dtype=np.int64)
    labels = np.empty(n_tuples, dtype=np.float64)
    counts = np.empty(n_tuples, dtype=np.int64)
    starts = np.empty(n_tuples, dtype=np.int64)
    end = len(buffer)
    pos = offset
    for i in range(n_tuples):
        if pos + header_size > end:
            return None
        tid, label, nnz = unpack(buffer, pos)
        if nnz < 0:  # a dense record inside a sparse run: irregular
            return None
        ids[i] = tid
        labels[i] = label
        counts[i] = nnz
        starts[i] = pos + header_size
        pos += header_size + 12 * nnz
    if pos > end:
        return None
    u8 = np.frombuffer(buffer, dtype=np.uint8)
    idx_bytes = u8[_segment_positions(starts, 4 * counts)]
    val_bytes = u8[_segment_positions(starts + 4 * counts, 8 * counts)]
    indptr = np.zeros(n_tuples + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return TupleBatch(
        ids=ids,
        labels=labels,
        n_features=schema.n_features,
        indptr=indptr,
        indices=idx_bytes.view("<i4").astype(np.int64),
        values=val_bytes.view("<f8").astype(np.float64),
    )


def _as_sparse_row(features: np.ndarray | SparseRow, n_features: int) -> SparseRow:
    if isinstance(features, SparseRow):
        return features
    dense = np.asarray(features, dtype=np.float64)
    nz = np.nonzero(dense)[0]
    return SparseRow(nz, dense[nz], n_features)


def encode_block_columnar(batch, schema=None):
    """Columnar-tier encode; see :mod:`repro.storage.columnar`."""
    from .columnar import encode_block_columnar as _encode

    return _encode(batch, schema)


def decode_block_columnar(buffer, schema=None, offset=0, columns=None, verify_chunks=False):
    """Columnar-tier lazy decode; see :mod:`repro.storage.columnar`."""
    from .columnar import decode_block_columnar as _decode

    return _decode(
        buffer, schema, offset=offset, columns=columns, verify_chunks=verify_chunks
    )
