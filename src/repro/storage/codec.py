"""Binary tuple codec.

Serialises training tuples to bytes using the paper's storage schema
``<id, features_k[], features_v[], label>`` (Section 6): dense tuples store
only ``features_v``, sparse tuples store parallel index/value arrays.  The
codec is shared by the heap-file pages of the mini database engine and the
on-disk block files of the PyTorch-style integration, so both sides measure
identical tuple sizes.

Wire format (little-endian):

* header: ``tuple_id:int64, label:float64, nnz:int32`` where ``nnz < 0``
  marks a dense tuple of ``-nnz`` values;
* dense payload: ``-nnz`` float64 feature values;
* sparse payload: ``nnz`` int32 indices followed by ``nnz`` float64 values.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..data.sparse import SparseRow

__all__ = ["TupleSchema", "TrainingTuple", "encode_tuple", "decode_tuple"]

_HEADER = struct.Struct("<qdi")


@dataclass(frozen=True)
class TupleSchema:
    """Static description of a table's tuples."""

    n_features: int
    sparse: bool = False

    def dense_tuple_bytes(self) -> int:
        """Size of one dense tuple under this schema."""
        return _HEADER.size + 8 * self.n_features

    def sparse_tuple_bytes(self, nnz: int) -> int:
        return _HEADER.size + 12 * nnz


@dataclass
class TrainingTuple:
    """A decoded training tuple."""

    tuple_id: int
    label: float
    features: np.ndarray | SparseRow

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.features, SparseRow)


def encode_tuple(tuple_id: int, label: float, features: np.ndarray | SparseRow) -> bytes:
    """Serialise one tuple to bytes."""
    if isinstance(features, SparseRow):
        header = _HEADER.pack(tuple_id, float(label), features.nnz)
        idx = features.indices.astype("<i4").tobytes()
        val = features.values.astype("<f8").tobytes()
        return header + idx + val
    dense = np.asarray(features, dtype="<f8")
    header = _HEADER.pack(tuple_id, float(label), -dense.size)
    return header + dense.tobytes()


def decode_tuple(buffer: bytes, offset: int, schema: TupleSchema) -> tuple[TrainingTuple, int]:
    """Deserialise one tuple starting at ``offset``; return (tuple, next offset)."""
    tuple_id, label, nnz = _HEADER.unpack_from(buffer, offset)
    offset += _HEADER.size
    if nnz < 0:
        n = -nnz
        values = np.frombuffer(buffer, dtype="<f8", count=n, offset=offset).copy()
        offset += 8 * n
        return TrainingTuple(tuple_id, label, values), offset
    indices = np.frombuffer(buffer, dtype="<i4", count=nnz, offset=offset).astype(np.int64)
    offset += 4 * nnz
    values = np.frombuffer(buffer, dtype="<f8", count=nnz, offset=offset).copy()
    offset += 8 * nnz
    row = SparseRow(indices, values, schema.n_features)
    return TrainingTuple(tuple_id, label, row), offset
