"""Record identifiers: stable ``(page_id, slot)`` tuple addresses.

A RID names the physical location of a tuple in a heap file — PostgreSQL's
``ctid``.  RIDs are *stable*: deletes leave dead slots behind instead of
renumbering, and in-page compaction never moves a tuple to a different slot
id, so a RID recorded in a secondary index stays valid until that exact
tuple is deleted or moved by a non-in-place ``UPDATE``.

The serialized form is 6 bytes big-endian — ``page_id:uint32`` +
``slot:uint16`` — the packed-RID layout B+tree leaves store.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

__all__ = ["RID", "RID_BYTES", "pack_rids", "unpack_rids"]

_RID_STRUCT = struct.Struct(">IH")
RID_BYTES = _RID_STRUCT.size  # 6


class RID(NamedTuple):
    """A tuple address: heap page id + slot within the page."""

    page_id: int
    slot: int

    def pack(self) -> bytes:
        """6-byte big-endian serialized form (``page:u32 + slot:u16``)."""
        return _RID_STRUCT.pack(self.page_id, self.slot)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "RID":
        page_id, slot = _RID_STRUCT.unpack_from(data, offset)
        return cls(page_id, slot)


def pack_rids(rids) -> bytes:
    """Concatenate the 6-byte forms of an iterable of RIDs."""
    return b"".join(RID(*r).pack() for r in rids)


def unpack_rids(data: bytes, count: int, offset: int = 0) -> list[RID]:
    return [RID.unpack(data, offset + i * RID_BYTES) for i in range(count)]
