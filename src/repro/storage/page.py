"""Heap-file pages with a slot directory.

A :class:`Page` is a fixed-capacity byte container holding encoded tuples in
numbered *slots*, mirroring PostgreSQL's 8 KB heap pages with their line
pointer array.  Slots are stable: deleting a tuple marks its slot dead
(``offset = 0, length = 0`` in the on-disk rendering) without renumbering the
survivors, so a ``(page_id, slot)`` RID recorded in a secondary index stays
valid across unrelated DML.  The payload bytes of a dead tuple keep occupying
the page until :meth:`compact` reclaims them — exactly PostgreSQL's dead-line
-pointer behaviour before a (page-local) vacuum.

Pages only know byte offsets; decoding is the caller's job (via
:mod:`repro.storage.codec`), which keeps the page layer reusable for
compressed (TOAST-like) payloads.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

__all__ = ["Page", "DEFAULT_PAGE_BYTES"]

DEFAULT_PAGE_BYTES = 8192


@dataclass
class Page:
    """One fixed-size page of encoded tuples behind a slot directory."""

    page_id: int
    capacity: int = DEFAULT_PAGE_BYTES
    #: Slot directory: ``None`` marks a dead (deleted) slot whose id must
    #: never be reused for a *different* logical position implicitly — only
    #: an explicit :meth:`append` may claim it again.
    _slots: list[bytes | None] = field(default_factory=list, repr=False)
    #: Bytes held by live slots.
    _live: int = 0
    #: Bytes still physically occupied by deleted tuples (until compaction).
    _dead: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_slots(
        cls, page_id: int, capacity: int, payloads: list[bytes | None]
    ) -> "Page":
        """Rebuild a page image with its slot directory (``None`` = dead).

        Used by the file loader: dead slots come back as zero-length line
        pointers whose space was already reclaimed at save time, so they
        carry no dead bytes.
        """
        page = cls(page_id, capacity=capacity)
        page._slots = list(payloads)
        page._live = sum(len(p) for p in payloads if p is not None)
        return page

    # ------------------------------------------------------------------
    def fits(self, n_bytes: int) -> bool:
        """Would ``n_bytes`` fit in the page *as it stands* (no compaction)?"""
        return self._live + self._dead + n_bytes <= self.capacity

    def fits_after_compact(self, n_bytes: int) -> bool:
        """Would ``n_bytes`` fit once dead space is reclaimed?"""
        return self._live + n_bytes <= self.capacity

    def can_fit(self, n_bytes: int) -> bool:
        return self.fits(n_bytes) or self.fits_after_compact(n_bytes)

    def append(self, payload: bytes) -> int:
        """Store one encoded tuple, reusing the lowest dead slot if any.

        Returns the slot id.  Compacts the page first when the tuple only
        fits after reclaiming dead space; raises ``ValueError`` when it does
        not fit at all.
        """
        if len(payload) > self.capacity:
            raise ValueError(
                f"tuple of {len(payload)} bytes exceeds page capacity {self.capacity}"
            )
        if not self.fits(len(payload)):
            if not self.fits_after_compact(len(payload)):
                raise ValueError("page full")
            self.compact()
        for slot, stored in enumerate(self._slots):
            if stored is None:
                self._slots[slot] = payload
                self._live += len(payload)
                return slot
        self._slots.append(payload)
        self._live += len(payload)
        return len(self._slots) - 1

    def delete(self, slot: int) -> int:
        """Mark ``slot`` dead; returns the freed payload length.

        The bytes stay counted as occupied (:attr:`used_bytes`) until
        :meth:`compact` — deleting does not shrink the page.
        """
        payload = self.payload(slot)
        self._slots[slot] = None
        self._live -= len(payload)
        self._dead += len(payload)
        return len(payload)

    def replace(self, slot: int, payload: bytes) -> None:
        """In-place ``UPDATE``: repoint ``slot`` at a new payload.

        Like PostgreSQL, the new tuple needs free space of its own (the old
        version becomes dead space, reclaimed by compaction).  Raises
        ``ValueError`` when the page cannot hold the new version even after
        compaction — the caller then falls back to delete + insert elsewhere,
        which changes the RID.
        """
        old = self.payload(slot)
        if self._live - len(old) + len(payload) > self.capacity:
            raise ValueError("page full")
        # The old version is dead the moment the slot repoints.
        self._live -= len(old)
        self._dead += len(old)
        if self._live + self._dead + len(payload) > self.capacity:
            self.compact()
        self._slots[slot] = payload
        self._live += len(payload)

    def compact(self) -> int:
        """Reclaim dead-tuple bytes without renumbering slots.

        Live payloads are (conceptually) slid together; dead slots keep their
        ids as zero-length line pointers.  Returns the bytes reclaimed.
        """
        freed = self._dead
        self._dead = 0
        return freed

    # ------------------------------------------------------------------
    def payload(self, slot: int) -> bytes:
        """The stored payload of a live slot; raises on dead/bad slots."""
        if not 0 <= slot < len(self._slots):
            raise IndexError(f"page {self.page_id}: slot {slot} out of range")
        stored = self._slots[slot]
        if stored is None:
            raise ValueError(f"page {self.page_id}: slot {slot} is dead")
        return stored

    def payload_length(self, slot: int) -> int:
        return len(self.payload(slot))

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < len(self._slots) and self._slots[slot] is not None

    def live_slots(self) -> list[int]:
        """Slot ids holding live tuples, in slot order."""
        return [slot for slot, stored in enumerate(self._slots) if stored is not None]

    @property
    def n_slots(self) -> int:
        """Directory length, dead slots included."""
        return len(self._slots)

    @property
    def n_tuples(self) -> int:
        """Live tuples only."""
        return sum(1 for stored in self._slots if stored is not None)

    @property
    def used_bytes(self) -> int:
        """Physically occupied bytes (live + not-yet-compacted dead space)."""
        return self._live + self._dead

    @property
    def live_bytes(self) -> int:
        return self._live

    @property
    def dead_bytes(self) -> int:
        return self._dead

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def raw(self) -> bytes:
        """The concatenated live tuple payloads in slot order (no padding)."""
        return b"".join(stored for stored in self._slots if stored is not None)

    def checksum(self) -> int:
        """CRC32 of the page payload — the ground truth the fault-aware
        read path verifies reads against (PostgreSQL's ``data_checksums``).
        """
        return zlib.crc32(self.raw())

    def tuple_payloads(self) -> list[bytes]:
        """Live payloads in slot order (what a sequential page read yields)."""
        return [stored for stored in self._slots if stored is not None]

    def slot_lengths(self) -> list[int]:
        """Per-slot payload lengths; dead slots render as 0 (Snippet-2 style)."""
        return [0 if stored is None else len(stored) for stored in self._slots]
