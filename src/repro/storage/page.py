"""Heap-file pages.

A :class:`Page` is a fixed-capacity byte container holding a run of encoded
tuples, mirroring PostgreSQL's 8 KB heap pages.  Pages only know byte
offsets; decoding is the caller's job (via :mod:`repro.storage.codec`), which
keeps the page layer reusable for compressed (TOAST-like) payloads.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

__all__ = ["Page", "DEFAULT_PAGE_BYTES"]

DEFAULT_PAGE_BYTES = 8192


@dataclass
class Page:
    """One fixed-size page of encoded tuples."""

    page_id: int
    capacity: int = DEFAULT_PAGE_BYTES
    _chunks: list[bytes] = field(default_factory=list, repr=False)
    _used: int = 0

    def fits(self, n_bytes: int) -> bool:
        return self._used + n_bytes <= self.capacity

    def append(self, payload: bytes) -> None:
        """Add one encoded tuple; raises if it does not fit."""
        if len(payload) > self.capacity:
            raise ValueError(
                f"tuple of {len(payload)} bytes exceeds page capacity {self.capacity}"
            )
        if not self.fits(len(payload)):
            raise ValueError("page full")
        self._chunks.append(payload)
        self._used += len(payload)

    @property
    def n_tuples(self) -> int:
        return len(self._chunks)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def raw(self) -> bytes:
        """The concatenated tuple payloads (without padding)."""
        return b"".join(self._chunks)

    def checksum(self) -> int:
        """CRC32 of the page payload — the ground truth the fault-aware
        read path verifies reads against (PostgreSQL's ``data_checksums``).
        """
        return zlib.crc32(self.raw())

    def tuple_payloads(self) -> list[bytes]:
        return list(self._chunks)
