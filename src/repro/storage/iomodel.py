"""Analytic I/O device models and access-trace costing.

The paper's hardware efficiency claims all reduce to one device property:
a random access pays a latency ``t_lat`` that a sequential scan does not, so
random *tuple* access is catastrophically slow while random *block* access
approaches sequential bandwidth once blocks are ~10 MB (Appendix A,
Figure 20).  Real disks are not available (or reproducible) here, so every
experiment charges its physical reads/writes through these models.

Devices are calibrated to the paper's testbed: the Alibaba-cloud HDD with a
maximum 140 MB/s bandwidth and ~8 ms seek+rotate, the SSD with 1 GB/s and
~0.12 ms access latency, and an in-memory device for cached data.

An :class:`AccessTrace` is the bridge between the shuffle strategies (which
record what they physically touch) and the device models (which convert the
trace to seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "DeviceModel",
    "HDD",
    "SSD",
    "NVM",
    "MEMORY",
    "HDD_SCALED",
    "SSD_SCALED",
    "NVM_SCALED",
    "DEVICE_MODELS",
    "device_by_name",
    "StripedDevice",
    "AccessEvent",
    "AccessTrace",
    "random_vs_sequential_curve",
]


@dataclass(frozen=True)
class DeviceModel:
    """A storage device characterised by access latency and bandwidth."""

    name: str
    access_latency_s: float
    bandwidth_bytes_per_s: float

    def sequential_time(self, n_bytes: float) -> float:
        """Time to scan ``n_bytes`` sequentially (one initial positioning)."""
        if n_bytes <= 0:
            return 0.0
        return self.access_latency_s + n_bytes / self.bandwidth_bytes_per_s

    def random_time(self, n_bytes_each: float, count: int) -> float:
        """Time for ``count`` independent random accesses of ``n_bytes_each``."""
        if count <= 0:
            return 0.0
        return count * (self.access_latency_s + n_bytes_each / self.bandwidth_bytes_per_s)

    def random_throughput(self, chunk_bytes: float) -> float:
        """Effective bytes/s for random accesses of ``chunk_bytes`` (Fig. 20)."""
        if chunk_bytes <= 0:
            return 0.0
        return chunk_bytes / (self.access_latency_s + chunk_bytes / self.bandwidth_bytes_per_s)


# Calibrated to the paper's Section 7.1.1 hardware.
HDD = DeviceModel("hdd", access_latency_s=8e-3, bandwidth_bytes_per_s=140e6)
SSD = DeviceModel("ssd", access_latency_s=1.2e-4, bandwidth_bytes_per_s=1e9)
MEMORY = DeviceModel("memory", access_latency_s=1e-7, bandwidth_bytes_per_s=20e9)
# Byte-addressable NVM (the LIRS regime, arXiv 1810.04509): reads happen at
# cache-line granularity with no positioning penalty worth the name, so a
# random *tuple* read costs nearly the same as its sequential transfer —
# the device point where full per-epoch random shuffling becomes viable.
NVM = DeviceModel("nvm", access_latency_s=2e-8, bandwidth_bytes_per_s=2.5e9)

# Scale-consistent devices for the ~10^3-scaled-down benchmark datasets.
#
# The paper's regime is "10 MB blocks amortise an 8 ms seek" — the latency
# is ~10 % of the block transfer time.  Our benchmark tables are ~10^3
# smaller, so blocks are ~10 KB; charging a full 8 ms per 10 KB block would
# put the experiments in a latency regime the paper never ran in.  Scaling
# the access latency by the same 10^3 factor (bandwidths unchanged) keeps
# every ratio the paper reports — latency/transfer per block, shuffle cost
# in units of epochs, HDD/SSD gap — while letting the experiments run on
# kilobyte-scale tables.  Use HDD/SSD for full-size byte counts and
# HDD_SCALED/SSD_SCALED whenever the data itself was scaled down.
HDD_SCALED = DeviceModel("hdd-scaled", access_latency_s=8e-6, bandwidth_bytes_per_s=140e6)
SSD_SCALED = DeviceModel("ssd-scaled", access_latency_s=1.2e-7, bandwidth_bytes_per_s=1e9)
NVM_SCALED = DeviceModel("nvm-scaled", access_latency_s=2e-11, bandwidth_bytes_per_s=2.5e9)

#: Name → device registry for CLI flags, the plan-time advisor, and tests.
DEVICE_MODELS = {
    d.name: d for d in (HDD, SSD, NVM, MEMORY, HDD_SCALED, SSD_SCALED, NVM_SCALED)
}


def device_by_name(name: str) -> DeviceModel:
    """Look up a calibrated device model by its registry name."""
    try:
        return DEVICE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {', '.join(sorted(DEVICE_MODELS))}"
        ) from None


@dataclass(frozen=True)
class AccessEvent:
    """One homogeneous batch of physical accesses.

    ``kind`` is ``"seq"`` for a sequential scan of ``count * n_bytes_each``
    bytes, ``"rand"`` for ``count`` independent random reads, and
    ``"rand_write"``/``"seq_write"`` for the corresponding writes (writes
    share the read cost model — adequate for the shuffle-copy accounting the
    paper needs).
    """

    kind: str
    count: int
    n_bytes_each: float
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("seq", "rand", "seq_write", "rand_write"):
            raise ValueError(f"unknown access kind {self.kind!r}")
        if self.count < 0 or self.n_bytes_each < 0:
            raise ValueError("count and n_bytes_each must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.count * self.n_bytes_each

    def time_on(self, device: DeviceModel) -> float:
        if self.kind in ("seq", "seq_write"):
            return device.sequential_time(self.total_bytes)
        return device.random_time(self.n_bytes_each, self.count)


@dataclass
class AccessTrace:
    """An ordered collection of access events with costing helpers."""

    events: list[AccessEvent] = field(default_factory=list)

    def add(self, kind: str, count: int, n_bytes_each: float, note: str = "") -> None:
        self.events.append(AccessEvent(kind, count, n_bytes_each, note))

    def extend(self, other: "AccessTrace") -> None:
        self.events.extend(other.events)

    @property
    def total_bytes(self) -> float:
        return sum(e.total_bytes for e in self.events)

    @property
    def read_bytes(self) -> float:
        return sum(e.total_bytes for e in self.events if e.kind in ("seq", "rand"))

    @property
    def write_bytes(self) -> float:
        return sum(e.total_bytes for e in self.events if e.kind.endswith("write"))

    def time_on(self, device: DeviceModel) -> float:
        return sum(e.time_on(device) for e in self.events)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def random_vs_sequential_curve(
    device: DeviceModel,
    block_sizes_bytes: Iterable[float],
) -> list[dict]:
    """Reproduce Figure 20: random-block throughput vs block size.

    Returns one record per block size with the random throughput, the
    sequential (dashed-line) throughput, and their ratio.
    """
    records = []
    for size in block_sizes_bytes:
        rand = device.random_throughput(size)
        records.append(
            {
                "device": device.name,
                "block_bytes": float(size),
                "random_mb_per_s": rand / 1e6,
                "sequential_mb_per_s": device.bandwidth_bytes_per_s / 1e6,
                "ratio": rand / device.bandwidth_bytes_per_s,
            }
        )
    return records


@dataclass(frozen=True)
class StripedDevice(DeviceModel):
    """A Lustre-style striped parallel file system (Section 5's substrate).

    Data is striped across ``n_stripes`` object storage targets of
    ``stripe_bytes`` each; a read touching multiple stripes transfers from
    the targets in parallel, capped by the client's network bandwidth.
    ``bandwidth_bytes_per_s`` is the per-target bandwidth and
    ``access_latency_s`` the per-request positioning cost.

    For accesses within one stripe this behaves like the base device; large
    sequential scans approach ``min(n_stripes x target bw, client bw)`` —
    which is why the paper's cluster reads "4 MB+ blocks" efficiently.
    """

    n_stripes: int = 4
    stripe_bytes: int = 4 * 1024**2
    client_bandwidth_bytes_per_s: float = 10e9

    def __post_init__(self) -> None:
        if self.n_stripes < 1:
            raise ValueError("n_stripes must be at least 1")
        if self.stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")

    def _effective_bandwidth(self, n_bytes: float) -> float:
        stripes_touched = min(self.n_stripes, max(1, -(-int(n_bytes) // self.stripe_bytes)))
        return min(
            stripes_touched * self.bandwidth_bytes_per_s,
            self.client_bandwidth_bytes_per_s,
        )

    def sequential_time(self, n_bytes: float) -> float:
        if n_bytes <= 0:
            return 0.0
        return self.access_latency_s + n_bytes / self._effective_bandwidth(n_bytes)

    def random_time(self, n_bytes_each: float, count: int) -> float:
        if count <= 0:
            return 0.0
        per_access = self.access_latency_s + (
            n_bytes_each / self._effective_bandwidth(n_bytes_each)
            if n_bytes_each > 0
            else 0.0
        )
        return count * per_access

    def random_throughput(self, chunk_bytes: float) -> float:
        if chunk_bytes <= 0:
            return 0.0
        return chunk_bytes / self.random_time(chunk_bytes, 1)
