"""Heap files: paged storage for a dataset, plus page-run blocks.

A :class:`HeapFile` materialises a :class:`~repro.data.dataset.Dataset` into
fixed-size pages of encoded tuples, the way the table would sit on disk in
PostgreSQL.  CorgiPile's ``BlockShuffle`` operator treats a *block* as a run
of contiguous pages (``block_bytes / page_bytes`` pages per block); the
:meth:`HeapFile.block_pages` helper reproduces that grouping.

Optionally tuples are compressed per tuple (``compress=True``), standing in
for PostgreSQL's TOAST compression of wide feature arrays — compressed
tables are smaller on disk but cost extra CPU to decode, which is exactly
the effect the paper observes on the epsilon/yfcc datasets (Section 7.3.4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .codec import TrainingTuple, TupleBatch, TupleSchema, decode_page, decode_tuple, encode_tuple
from .page import DEFAULT_PAGE_BYTES, Page
from .retry import ChecksumError

__all__ = ["HeapFile"]


@dataclass
class _TupleRef:
    page_id: int
    slot: int


class HeapFile:
    """A paged, optionally compressed, materialisation of a dataset."""

    def __init__(self, schema: TupleSchema, page_bytes: int = DEFAULT_PAGE_BYTES, compress: bool = False):
        self.schema = schema
        self.page_bytes = page_bytes
        self.compress = compress
        self.pages: list[Page] = []
        self._refs: list[_TupleRef] = []
        self.decode_count = 0  # tuples decoded (CPU accounting)
        # Verify every page read against the page's CRC32 before decoding.
        # Off by default (the in-memory heap cannot tear); the fault plane's
        # FaultyHeapFile turns it on so torn reads are caught, not decoded.
        self.verify_checksums = False

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        compress: bool = False,
    ) -> "HeapFile":
        schema = TupleSchema(dataset.n_features, sparse=dataset.is_sparse)
        heap = cls(schema, page_bytes=page_bytes, compress=compress)
        labels = np.asarray(dataset.y, dtype=np.float64)
        if isinstance(dataset.X, SparseMatrix):
            for i in range(dataset.n_tuples):
                heap.append(i, labels[i], dataset.X.row(i))
        else:
            for i in range(dataset.n_tuples):
                heap.append(i, labels[i], dataset.X[i])
        return heap

    def append(self, tuple_id: int, label: float, features) -> None:
        payload = encode_tuple(tuple_id, label, features)
        if self.compress:
            payload = len(payload).to_bytes(4, "little") + zlib.compress(payload, level=1)
        if not self.pages or not self.pages[-1].fits(len(payload)):
            self.pages.append(Page(len(self.pages), capacity=max(self.page_bytes, len(payload))))
        page = self.pages[-1]
        self._refs.append(_TupleRef(page.page_id, page.n_tuples))
        page.append(payload)

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return len(self._refs)

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def total_bytes(self) -> int:
        """On-disk footprint (pages are padded to their capacity)."""
        return sum(p.capacity for p in self.pages)

    @property
    def payload_bytes(self) -> int:
        return sum(p.used_bytes for p in self.pages)

    # ------------------------------------------------------------------
    def _decode(self, payload: bytes) -> TrainingTuple:
        if self.compress:
            raw_len = int.from_bytes(payload[:4], "little")
            payload = zlib.decompress(payload[4:])
            assert len(payload) == raw_len
        self.decode_count += 1
        decoded, _ = decode_tuple(payload, 0, self.schema)
        return decoded

    def read_page(self, page_id: int) -> list[TrainingTuple]:
        """Decode every tuple stored on ``page_id`` (in slot order)."""
        return self.read_page_batch(page_id).to_tuples()

    def _read_page_payloads(self, page_id: int, attempt: int = 1) -> list[bytes]:
        """The raw stored tuple payloads of one page — the *read* step.

        This is the fault-injection seam: the base heap returns the page's
        chunks verbatim; :class:`~repro.faults.store.FaultyHeapFile`
        overrides it to raise transient errors or hand back corrupted bytes
        according to its fault plan.  ``attempt`` is the 1-based retry
        attempt of the caller's read.
        """
        del attempt  # the clean heap never fails, whatever the attempt
        return self.pages[page_id].tuple_payloads()

    def page_checksum(self, page_id: int) -> int:
        """CRC32 ground truth for ``page_id`` (what a data file would store)."""
        return self.pages[page_id].checksum()

    def read_page_batch(self, page_id: int, attempt: int = 1) -> TupleBatch:
        """Decode a whole page in bulk into a columnar :class:`TupleBatch`.

        With :attr:`verify_checksums` set, the bytes read are CRC-checked
        against the page's stored checksum *before* decoding and a mismatch
        raises :class:`~repro.storage.retry.ChecksumError` — a retryable
        fault the buffer pool's bounded-retry read path absorbs.

        Compressed (TOAST-like) pages are decompressed tuple-by-tuple — that
        cost is inherent to the format — but the byte parse is still one bulk
        :func:`~repro.storage.codec.decode_page` call over the concatenation.
        """
        page = self.pages[page_id]
        payloads = self._read_page_payloads(page_id, attempt)
        if self.verify_checksums:
            got = zlib.crc32(b"".join(payloads))
            want = self.page_checksum(page_id)
            if got != want:
                raise ChecksumError(
                    f"page {page_id}: checksum mismatch "
                    f"(got {got:#010x}, want {want:#010x})"
                )
        if self.compress:
            chunks = []
            for payload in payloads:
                raw_len = int.from_bytes(payload[:4], "little")
                raw = zlib.decompress(payload[4:])
                assert len(raw) == raw_len
                chunks.append(raw)
            buffer = b"".join(chunks)
        else:
            buffer = b"".join(payloads)
        self.decode_count += page.n_tuples
        return decode_page(buffer, page.n_tuples, self.schema)

    def read_tuple(self, position: int) -> TrainingTuple:
        """Decode the tuple at heap position ``position``."""
        ref = self._refs[position]
        payload = self.pages[ref.page_id].tuple_payloads()[ref.slot]
        return self._decode(payload)

    def scan(self):
        """Sequentially decode every tuple in heap order."""
        for page in self.pages:
            for payload in page.tuple_payloads():
                yield self._decode(payload)

    # ------------------------------------------------------------------
    def pages_per_block(self, block_bytes: int) -> int:
        if block_bytes < self.page_bytes:
            raise ValueError("block_bytes must be at least one page")
        return max(1, block_bytes // self.page_bytes)

    def n_blocks(self, block_bytes: int) -> int:
        per = self.pages_per_block(block_bytes)
        return -(-self.n_pages // per)

    def block_pages(self, block_id: int, block_bytes: int) -> range:
        """The page ids making up block ``block_id``."""
        per = self.pages_per_block(block_bytes)
        n = self.n_blocks(block_bytes)
        if not 0 <= block_id < n:
            raise IndexError(f"block {block_id} out of range [0, {n})")
        lo = block_id * per
        return range(lo, min(lo + per, self.n_pages))

    def read_block(self, block_id: int, block_bytes: int) -> list[TrainingTuple]:
        out: list[TrainingTuple] = []
        for page_id in self.block_pages(block_id, block_bytes):
            out.extend(self.read_page(page_id))
        return out
