"""Heap files: paged storage for a dataset, plus page-run blocks.

A :class:`HeapFile` materialises a :class:`~repro.data.dataset.Dataset` into
fixed-size pages of encoded tuples, the way the table would sit on disk in
PostgreSQL.  CorgiPile's ``BlockShuffle`` operator treats a *block* as a run
of contiguous pages (``block_bytes / page_bytes`` pages per block); the
:meth:`HeapFile.block_pages` helper reproduces that grouping.

Optionally tuples are compressed per tuple (``compress=True``), standing in
for PostgreSQL's TOAST compression of wide feature arrays — compressed
tables are smaller on disk but cost extra CPU to decode, which is exactly
the effect the paper observes on the epsilon/yfcc datasets (Section 7.3.4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix, SparseRow
from .codec import TrainingTuple, TupleBatch, TupleSchema, decode_page, decode_tuple, encode_tuple
from .columnar import decode_block_columnar, encode_block_columnar
from .page import DEFAULT_PAGE_BYTES, Page
from .retry import ChecksumError
from .rid import RID

__all__ = ["HeapFile", "ColumnarMutationError"]


class ColumnarMutationError(TypeError):
    """DML on a columnar-layout heap.

    Columnar pages pack many rows into one immutable per-column payload, so
    slot-level ``INSERT``/``UPDATE``/``DELETE`` has no meaning there; callers
    must use a row-layout table (or rebuild the columnar table).
    """


@dataclass
class _TupleRef:
    page_id: int
    slot: int


class HeapFile:
    """A paged, optionally compressed, materialisation of a dataset.

    ``layout="columnar"`` stores each page as one columnar block payload
    (:mod:`repro.storage.columnar`) instead of row-major tuple slots:
    appends buffer rows until roughly ``page_bytes`` worth accumulate, then
    flush as a single per-column-chunked payload.  Page reads come back as
    lazy zero-copy batches; ``compress`` is row-layout only (the columnar
    encodings subsume it).
    """

    def __init__(
        self,
        schema: TupleSchema,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        compress: bool = False,
        layout: str = "row",
    ):
        if layout not in ("row", "columnar"):
            raise ValueError(f"unknown heap layout {layout!r}")
        if compress and layout == "columnar":
            raise ValueError("compress applies to the row layout only")
        self.schema = schema
        self.page_bytes = page_bytes
        self.compress = compress
        self.layout = layout
        self.pages: list[Page] = []
        self._refs: list[_TupleRef] = []
        # Columnar append buffer: rows not yet flushed into a page.
        self._pending: list[tuple[int, float, object]] = []
        self._pending_bytes = 0
        # DML marks the position directory stale; it is rebuilt lazily in
        # heap order (page-major, slot order) on the next positional access.
        self._refs_dirty = False
        self._pos_map: dict[RID, int] | None = None
        self.decode_count = 0  # tuples decoded (CPU accounting)
        # Verify every page read against the page's CRC32 before decoding.
        # Off by default (the in-memory heap cannot tear); the fault plane's
        # FaultyHeapFile turns it on so torn reads are caught, not decoded.
        self.verify_checksums = False

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        compress: bool = False,
        layout: str = "row",
    ) -> "HeapFile":
        schema = TupleSchema(dataset.n_features, sparse=dataset.is_sparse)
        heap = cls(schema, page_bytes=page_bytes, compress=compress, layout=layout)
        labels = np.asarray(dataset.y, dtype=np.float64)
        if isinstance(dataset.X, SparseMatrix):
            for i in range(dataset.n_tuples):
                heap.append(i, labels[i], dataset.X.row(i))
        else:
            for i in range(dataset.n_tuples):
                heap.append(i, labels[i], dataset.X[i])
        heap.flush()
        return heap

    def append(self, tuple_id: int, label: float, features) -> None:
        if self.layout == "columnar":
            if isinstance(features, SparseRow):
                est = 16 + 16 * features.indices.size
            else:
                est = 16 + 8 * len(features)
            self._pending.append((int(tuple_id), float(label), features))
            self._pending_bytes += est
            if self._pending_bytes >= self.page_bytes:
                self.flush()
            return
        payload = self.encode_payload(tuple_id, label, features)
        if not self.pages or not self.pages[-1].fits(len(payload)):
            self.pages.append(Page(len(self.pages), capacity=max(self.page_bytes, len(payload))))
        page = self.pages[-1]
        slot = page.append(payload)
        self._refs.append(_TupleRef(page.page_id, slot))
        self._pos_map = None

    def flush(self) -> None:
        """Flush buffered columnar rows into one single-slot page (no-op for row)."""
        if self.layout != "columnar" or not self._pending:
            return
        ids = np.array([r[0] for r in self._pending], dtype=np.int64)
        labels = np.array([r[1] for r in self._pending], dtype=np.float64)
        if self.schema.sparse:
            rows = [r[2] for r in self._pending]
            indptr = np.zeros(len(rows) + 1, dtype=np.int64)
            np.cumsum([r.indices.size for r in rows], out=indptr[1:])
            batch = TupleBatch(
                ids=ids,
                labels=labels,
                n_features=self.schema.n_features,
                indptr=indptr,
                indices=np.concatenate([r.indices for r in rows])
                if rows
                else np.empty(0, dtype=np.int64),
                values=np.concatenate([r.values for r in rows])
                if rows
                else np.empty(0, dtype=np.float64),
            )
        else:
            batch = TupleBatch(
                ids=ids,
                labels=labels,
                n_features=self.schema.n_features,
                dense=np.asarray([np.asarray(r[2], dtype=np.float64) for r in self._pending]),
            )
        payload = encode_block_columnar(batch, self.schema)
        page = Page(len(self.pages), capacity=max(self.page_bytes, len(payload)))
        page.append(payload)
        self.pages.append(page)
        for row_idx in range(len(self._pending)):
            self._refs.append(_TupleRef(page.page_id, row_idx))
        self._pending.clear()
        self._pending_bytes = 0
        self._pos_map = None

    # ------------------------------------------------------------------
    # DML: slot-level mutation of row-layout heaps.
    def encode_payload(self, tuple_id: int, label: float, features) -> bytes:
        """The exact stored byte form of one tuple (compression included)."""
        payload = encode_tuple(tuple_id, label, features)
        if self.compress:
            payload = len(payload).to_bytes(4, "little") + zlib.compress(payload, level=1)
        return payload

    def _require_mutable(self) -> None:
        if self.layout != "row":
            raise ColumnarMutationError(
                f"cannot mutate a {self.layout!r}-layout heap: slot-level DML "
                "is only supported on row-layout tables"
            )

    def insert(self, tuple_id: int, label: float, features) -> RID:
        """Insert one tuple, reusing dead slots / free space first-fit.

        Returns the RID of the stored tuple.  Unlike :meth:`append` (bulk
        load, always fills the tail page) inserts scan for the first page
        with room — dead-slot reuse keeps churned tables compact.
        """
        self._require_mutable()
        payload = self.encode_payload(tuple_id, label, features)
        page = None
        for candidate in self.pages:
            if candidate.can_fit(len(payload)):
                page = candidate
                break
        if page is None:
            page = Page(len(self.pages), capacity=max(self.page_bytes, len(payload)))
            self.pages.append(page)
        slot = page.append(payload)
        self._refs_dirty = True
        return RID(page.page_id, slot)

    def delete(self, rid: RID) -> None:
        """Delete the tuple at ``rid`` (its slot goes dead, RIDs elsewhere
        are untouched)."""
        self._require_mutable()
        self.pages[rid.page_id].delete(rid.slot)
        self._refs_dirty = True

    def update(self, rid: RID, tuple_id: int, label: float, features) -> RID:
        """Rewrite the tuple at ``rid``; returns its (possibly new) RID.

        In-place when the page can hold the new version (RID preserved —
        indexes on untouched columns stay valid); otherwise the tuple moves:
        delete + first-fit insert, returning the new address.
        """
        self._require_mutable()
        payload = self.encode_payload(tuple_id, label, features)
        page = self.pages[rid.page_id]
        try:
            page.replace(rid.slot, payload)
            self._refs_dirty = True
            return rid
        except ValueError:
            self.delete(rid)
            return self.insert(tuple_id, label, features)

    def _ensure_refs(self) -> None:
        """Rebuild the position directory after DML (heap order)."""
        if not self._refs_dirty:
            return
        self._refs = [
            _TupleRef(page.page_id, slot)
            for page in self.pages
            for slot in page.live_slots()
        ]
        self._refs_dirty = False
        self._pos_map = None

    def rid_of(self, position: int) -> RID:
        """The RID of the tuple at heap position ``position`` (scan order)."""
        self.flush()
        self._ensure_refs()
        ref = self._refs[position]
        return RID(ref.page_id, ref.slot)

    def position_of(self, rid: RID) -> int:
        """Inverse of :meth:`rid_of`; raises ``KeyError`` for dead RIDs."""
        self.flush()
        self._ensure_refs()
        if self._pos_map is None:
            self._pos_map = {
                RID(ref.page_id, ref.slot): pos for pos, ref in enumerate(self._refs)
            }
        return self._pos_map[rid]

    def slot_row_map(self, page_id: int) -> dict[int, int]:
        """slot id → row index within the page's decoded batch (live order)."""
        return {slot: row for row, slot in enumerate(self.pages[page_id].live_slots())}

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        self._ensure_refs()
        return len(self._refs) + len(self._pending)

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def total_bytes(self) -> int:
        """On-disk footprint (pages are padded to their capacity)."""
        return sum(p.capacity for p in self.pages)

    @property
    def payload_bytes(self) -> int:
        return sum(p.used_bytes for p in self.pages)

    # ------------------------------------------------------------------
    def _decode(self, payload: bytes) -> TrainingTuple:
        if self.compress:
            raw_len = int.from_bytes(payload[:4], "little")
            payload = zlib.decompress(payload[4:])
            assert len(payload) == raw_len
        self.decode_count += 1
        decoded, _ = decode_tuple(payload, 0, self.schema)
        return decoded

    def read_page(self, page_id: int) -> list[TrainingTuple]:
        """Decode every tuple stored on ``page_id`` (in slot order)."""
        return self.read_page_batch(page_id).to_tuples()

    def _read_page_payloads(self, page_id: int, attempt: int = 1) -> list[bytes]:
        """The raw stored tuple payloads of one page — the *read* step.

        This is the fault-injection seam: the base heap returns the page's
        chunks verbatim; :class:`~repro.faults.store.FaultyHeapFile`
        overrides it to raise transient errors or hand back corrupted bytes
        according to its fault plan.  ``attempt`` is the 1-based retry
        attempt of the caller's read.
        """
        del attempt  # the clean heap never fails, whatever the attempt
        return self.pages[page_id].tuple_payloads()

    def page_checksum(self, page_id: int) -> int:
        """CRC32 ground truth for ``page_id`` (what a data file would store)."""
        return self.pages[page_id].checksum()

    def read_page_batch(self, page_id: int, attempt: int = 1) -> TupleBatch:
        """Decode a whole page in bulk into a columnar :class:`TupleBatch`.

        With :attr:`verify_checksums` set, the bytes read are CRC-checked
        against the page's stored checksum *before* decoding and a mismatch
        raises :class:`~repro.storage.retry.ChecksumError` — a retryable
        fault the buffer pool's bounded-retry read path absorbs.

        Compressed (TOAST-like) pages are decompressed tuple-by-tuple — that
        cost is inherent to the format — but the byte parse is still one bulk
        :func:`~repro.storage.codec.decode_page` call over the concatenation.
        """
        self.flush()
        page = self.pages[page_id]
        payloads = self._read_page_payloads(page_id, attempt)
        if self.verify_checksums:
            got = zlib.crc32(b"".join(payloads))
            want = self.page_checksum(page_id)
            if got != want:
                raise ChecksumError(
                    f"page {page_id}: checksum mismatch "
                    f"(got {got:#010x}, want {want:#010x})"
                )
        if self.layout == "columnar":
            (payload,) = payloads  # columnar pages hold exactly one payload
            batch = decode_block_columnar(payload, self.schema)
            self.decode_count += len(batch)
            return batch
        if self.compress:
            chunks = []
            for payload in payloads:
                raw_len = int.from_bytes(payload[:4], "little")
                raw = zlib.decompress(payload[4:])
                assert len(raw) == raw_len
                chunks.append(raw)
            buffer = b"".join(chunks)
        else:
            buffer = b"".join(payloads)
        self.decode_count += page.n_tuples
        return decode_page(buffer, page.n_tuples, self.schema)

    def read_tuple(self, position: int) -> TrainingTuple:
        """Decode the tuple at heap position ``position``."""
        self.flush()
        self._ensure_refs()
        ref = self._refs[position]
        if self.layout == "columnar":
            # Columnar pages hold one payload; ``slot`` is the row index.
            batch = self.read_page_batch(ref.page_id)
            self.decode_count += 1 - len(batch)  # charge one tuple, not the page
            return TrainingTuple(
                int(batch.ids[ref.slot]),
                float(batch.labels[ref.slot]),
                batch.row(ref.slot),
            )
        payload = self.pages[ref.page_id].payload(ref.slot)
        return self._decode(payload)

    def scan(self):
        """Sequentially decode every tuple in heap order."""
        self.flush()
        if self.layout == "columnar":
            for page_id in range(len(self.pages)):
                yield from self.read_page_batch(page_id).to_tuples()
            return
        for page in self.pages:
            for payload in page.tuple_payloads():
                yield self._decode(payload)

    # ------------------------------------------------------------------
    def pages_per_block(self, block_bytes: int) -> int:
        if block_bytes < self.page_bytes:
            raise ValueError("block_bytes must be at least one page")
        return max(1, block_bytes // self.page_bytes)

    def n_blocks(self, block_bytes: int) -> int:
        per = self.pages_per_block(block_bytes)
        return -(-self.n_pages // per)

    def block_pages(self, block_id: int, block_bytes: int) -> range:
        """The page ids making up block ``block_id``."""
        per = self.pages_per_block(block_bytes)
        n = self.n_blocks(block_bytes)
        if not 0 <= block_id < n:
            raise IndexError(f"block {block_id} out of range [0, {n})")
        lo = block_id * per
        return range(lo, min(lo + per, self.n_pages))

    def read_block(self, block_id: int, block_bytes: int) -> list[TrainingTuple]:
        out: list[TrainingTuple] = []
        for page_id in self.block_pages(block_id, block_bytes):
            out.extend(self.read_page(page_id))
        return out
