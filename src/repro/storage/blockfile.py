"""On-disk block files — the TFRecord-style format of the PyTorch integration.

Section 5 of the paper stores ImageNet as binary record files on a
block-based parallel file system and builds a *block index* marking the
start/end of each block so that ``CorgiPileDataset`` can read whole blocks.
This module implements that format for real: a data file of concatenated
encoded tuples plus a sidecar index recording ``(offset, length, n_tuples)``
per block.

Index format v2 additionally records a CRC32 per block, and the reader
verifies every block read against it before decoding (torn/corrupt reads
raise :class:`~repro.storage.retry.ChecksumError`).  A
:class:`~repro.storage.retry.RetryPolicy` can be attached so transient
faults and checksum failures are absorbed by bounded re-reads — the fault
plane (:mod:`repro.faults`) injects underneath this path via
``FaultyBlockFileReader``.  v1 indexes (no checksums) still load; their
reads simply skip verification.

Index format v3 (``layout = "columnar"``) stores each block as the
columnar payload of :mod:`repro.storage.columnar` and mirrors the block's
binary column directory into the index, so
:meth:`BlockFileReader.read_block_batch` can either map a whole block into
a lazy :class:`~repro.storage.columnar.LazyTupleBatch` or — given
``columns=...`` — seek to and read *only* the requested column chunks,
each verified against its own CRC32.  ``repro migrate`` converts v1/v2 row
files in place; the row format stays fully readable.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .. import obs
from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .codec import TrainingTuple, TupleBatch, TupleSchema, decode_block, encode_tuple
from .columnar import (
    ChunkRef,
    LazyTupleBatch,
    columns_for,
    encode_block_columnar,
    read_columnar_header,
)
from .retry import ChecksumError, RetryPolicy

__all__ = ["BlockIndexEntry", "write_block_file", "BlockFileReader", "dataset_block_batch"]

_INDEX_SUFFIX = ".index.json"
_INDEX_FORMAT = 2  # v2 adds per-block crc32 checksums
_INDEX_FORMAT_COLUMNAR = 3  # v3 adds the columnar layout + chunk directory
LAYOUTS = ("row", "columnar")


@dataclass(frozen=True)
class BlockIndexEntry:
    """Location of one block within the data file."""

    block_id: int
    offset: int
    length: int
    n_tuples: int
    crc32: int | None = None  # None for v1 indexes written without checksums
    #: Column-chunk directory (columnar layout only): offsets relative to
    #: ``offset``, so a pruned read seeks straight to ``offset + ref.offset``.
    chunks: tuple[ChunkRef, ...] | None = None


def dataset_block_batch(dataset: Dataset, lo: int, hi: int) -> TupleBatch:
    """One block of ``dataset`` rows ``[lo, hi)`` as a columnar batch.

    Slices straight out of the dataset's arrays (CSR slice for sparse), so
    no per-tuple loop is involved.
    """
    ids = np.arange(lo, hi, dtype=np.int64)
    labels = np.asarray(dataset.y[lo:hi], dtype=np.float64)
    if isinstance(dataset.X, SparseMatrix):
        start, stop = int(dataset.X.indptr[lo]), int(dataset.X.indptr[hi])
        return TupleBatch(
            ids=ids,
            labels=labels,
            n_features=dataset.n_features,
            indptr=np.ascontiguousarray(dataset.X.indptr[lo : hi + 1] - start),
            indices=dataset.X.indices[start:stop],
            values=dataset.X.data[start:stop],
        )
    return TupleBatch(
        ids=ids,
        labels=labels,
        n_features=dataset.n_features,
        dense=np.asarray(dataset.X[lo:hi], dtype=np.float64),
    )


def _index_doc(
    dataset_meta: dict[str, Any], entries: list[BlockIndexEntry], layout: str
) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "format": _INDEX_FORMAT_COLUMNAR if layout == "columnar" else _INDEX_FORMAT,
        **dataset_meta,
        "blocks": [
            {
                "block_id": e.block_id,
                "offset": e.offset,
                "length": e.length,
                "n_tuples": e.n_tuples,
                "crc32": e.crc32,
                **(
                    {"chunks": [ref.to_doc() for ref in e.chunks]}
                    if e.chunks is not None
                    else {}
                ),
            }
            for e in entries
        ],
    }
    if layout == "columnar":
        doc["layout"] = "columnar"
    return doc


def write_block_file(
    dataset: Dataset,
    path: str | Path,
    tuples_per_block: int,
    layout: str = "row",
) -> list[BlockIndexEntry]:
    """Materialise ``dataset`` as a block file + index at ``path``.

    ``layout="row"`` writes the v2 row-major tuple runs; ``layout="columnar"``
    writes per-block column chunks (v3 index) whose chunk directory is
    mirrored into the index for pruned reads.  Returns the block index that
    was written to ``path + '.index.json'``.
    """
    if tuples_per_block <= 0:
        raise ValueError("tuples_per_block must be positive")
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")
    path = Path(path)
    labels = np.asarray(dataset.y, dtype=np.float64)
    schema = TupleSchema(dataset.n_features, sparse=dataset.is_sparse)
    entries: list[BlockIndexEntry] = []
    offset = 0
    with open(path, "wb") as f:
        block_id = 0
        for lo in range(0, dataset.n_tuples, tuples_per_block):
            hi = min(lo + tuples_per_block, dataset.n_tuples)
            chunks: tuple[ChunkRef, ...] | None = None
            if layout == "columnar":
                batch = dataset_block_batch(dataset, lo, hi)
                payload = encode_block_columnar(batch, schema)
                chunks = read_columnar_header(payload)[3]
            else:
                buf = bytearray()
                for i in range(lo, hi):
                    if isinstance(dataset.X, SparseMatrix):
                        features = dataset.X.row(i)
                    else:
                        features = dataset.X[i]
                    buf += encode_tuple(i, labels[i], features)
                payload = bytes(buf)
            f.write(payload)
            entries.append(
                BlockIndexEntry(
                    block_id,
                    offset,
                    len(payload),
                    hi - lo,
                    zlib.crc32(payload),
                    chunks,
                )
            )
            offset += len(payload)
            block_id += 1
    meta = {
        "n_features": dataset.n_features,
        "sparse": dataset.is_sparse,
        "n_tuples": dataset.n_tuples,
    }
    with open(str(path) + _INDEX_SUFFIX, "w") as f:
        json.dump(_index_doc(meta, entries, layout), f)
    return entries


class BlockFileReader:
    """Random block-granular reader over a block file written above.

    Every block read is CRC-verified (when the index carries checksums)
    before decoding.  With a ``retry`` policy, transient read errors and
    checksum mismatches are retried up to the policy's budget; without one,
    the first failure propagates.  ``storage_stats`` (duck-typed as
    :class:`~repro.obs.StorageMetrics`) receives attempt/retry
    counters either way.
    """

    def __init__(
        self,
        path: str | Path,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
        verify_checksums: bool = True,
    ):
        self.path = Path(path)
        with open(str(self.path) + _INDEX_SUFFIX) as f:
            doc = json.load(f)
        self.schema = TupleSchema(doc["n_features"], sparse=doc["sparse"])
        self.n_tuples = int(doc["n_tuples"])
        self.index_format = int(doc.get("format", 1))
        self.layout = doc.get("layout", "row")
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown block-file layout {self.layout!r}")
        self.entries = [
            BlockIndexEntry(
                b["block_id"],
                b["offset"],
                b["length"],
                b["n_tuples"],
                b.get("crc32"),
                tuple(ChunkRef.from_doc(c) for c in b["chunks"])
                if "chunks" in b
                else None,
            )
            for b in doc["blocks"]
        ]
        self._file = open(self.path, "rb")
        self.retry = retry
        self.storage_stats = storage_stats
        self.verify_checksums = bool(verify_checksums)
        self.bytes_read = 0
        self.blocks_read = 0

    @property
    def n_blocks(self) -> int:
        return len(self.entries)

    def read_block(self, block_id: int) -> list[TrainingTuple]:
        """Read one block as per-tuple records (decoded via the bulk path)."""
        return self.read_block_batch(block_id).to_tuples()

    # ------------------------------------------------------------------
    def _read_raw(self, entry: BlockIndexEntry, attempt: int) -> bytes:
        """Read one block's raw bytes — the fault-injection seam.

        The base reader seeks and reads; ``FaultyBlockFileReader`` overrides
        this to consult its fault plan (raise a transient error, return
        corrupted bytes, sleep, or crash) per ``attempt``.
        """
        del attempt
        self._file.seek(entry.offset)
        return self._file.read(entry.length)

    def _read_verified(self, entry: BlockIndexEntry, attempt: int) -> bytes:
        buffer = self._read_raw(entry, attempt)
        if self.verify_checksums and entry.crc32 is not None:
            got = zlib.crc32(buffer)
            if got != entry.crc32:
                raise ChecksumError(
                    f"block {entry.block_id}: checksum mismatch "
                    f"(got {got:#010x}, want {entry.crc32:#010x})"
                )
        return buffer

    def _run_read(self, fn, describe: str) -> bytes:
        """Run a raw-read closure under the retry policy / stats protocol."""
        if self.retry is not None:
            return self.retry.run(fn, stats=self.storage_stats, describe=describe)
        stats = self.storage_stats
        if stats is not None:
            stats.record_attempt()
        try:
            buffer = fn(1)
        except ChecksumError as exc:
            if stats is not None:
                stats.record_fault(exc)
            raise
        if stats is not None:
            stats.record_ok()
        return buffer

    # -- columnar chunk path -------------------------------------------
    def _read_chunk_raw(self, entry: BlockIndexEntry, ref: ChunkRef, attempt: int) -> bytes:
        """Read one column chunk's raw bytes — the chunk fault-injection seam.

        Chunk offsets in the directory are relative to the block start, so
        the file offset is ``entry.offset + ref.offset``.
        ``FaultyBlockFileReader`` overrides this to inject per-chunk faults.
        """
        del attempt
        self._file.seek(entry.offset + ref.offset)
        return self._file.read(ref.length)

    def _read_chunk_verified(
        self, entry: BlockIndexEntry, ref: ChunkRef, attempt: int
    ) -> bytes:
        buffer = self._read_chunk_raw(entry, ref, attempt)
        if self.verify_checksums:
            got = zlib.crc32(buffer)
            if got != ref.crc32:
                raise ChecksumError(
                    f"block {entry.block_id} chunk {ref.name}: checksum mismatch "
                    f"(got {got:#010x}, want {ref.crc32:#010x})"
                )
        return buffer

    def read_block_batch(
        self, block_id: int, columns: Any | None = None
    ) -> TupleBatch | LazyTupleBatch:
        """Read one block as a columnar :class:`TupleBatch` (vectorized decode).

        Verified and (when a policy is attached) retried: the caller either
        receives checksum-clean bytes or sees
        :class:`~repro.storage.retry.ReadExhaustedError` once the budget is
        spent.  Byte accounting only charges reads that succeeded.

        On a columnar file the result is a lazy
        :class:`~repro.storage.columnar.LazyTupleBatch`; passing
        ``columns=("labels", "values", ...)`` reads and verifies *only* those
        chunks from disk (a pruned read), each against its directory CRC32.
        Row files ignore ``columns`` — the row codec always decodes whole
        tuples.
        """
        entry = self.entries[block_id]
        if self.layout == "columnar" and columns is not None and entry.chunks:
            wanted = columns_for(columns)
            refs = [r for r in entry.chunks if r.col in wanted]
            chunks = {}
            read_bytes = 0
            for ref in refs:
                buf = self._run_read(
                    lambda attempt, ref=ref: self._read_chunk_verified(
                        entry, ref, attempt
                    ),
                    describe=f"block {block_id} chunk {ref.name} of {self.path.name}",
                )
                chunks[ref.col] = (buf, ref)
                read_bytes += ref.length
            self.bytes_read += read_bytes
            self.blocks_read += 1
            obs.inc("storage.blockfile.blocks_read")
            obs.inc("storage.blockfile.chunk_reads", len(refs))
            obs.inc("storage.blockfile.bytes_read", read_bytes)
            return LazyTupleBatch.from_chunks(
                entry.n_tuples, self.schema.n_features, self.schema.sparse, chunks
            )
        buffer = self._run_read(
            lambda attempt: self._read_verified(entry, attempt),
            describe=f"block {block_id} of {self.path.name}",
        )
        self.bytes_read += entry.length
        self.blocks_read += 1
        obs.inc("storage.blockfile.blocks_read")
        obs.inc("storage.blockfile.bytes_read", entry.length)
        if self.layout == "columnar":
            return LazyTupleBatch.from_block(buffer)
        return decode_block(buffer, entry.n_tuples, self.schema)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
