"""On-disk block files — the TFRecord-style format of the PyTorch integration.

Section 5 of the paper stores ImageNet as binary record files on a
block-based parallel file system and builds a *block index* marking the
start/end of each block so that ``CorgiPileDataset`` can read whole blocks.
This module implements that format for real: a data file of concatenated
encoded tuples plus a sidecar index recording ``(offset, length, n_tuples)``
per block.

The format is deliberately simple (no checksums, no varint framing) — the
properties the reproduction needs are (a) block-granular random access and
(b) accurate byte accounting for the I/O model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .codec import TrainingTuple, TupleBatch, TupleSchema, decode_block, encode_tuple

__all__ = ["BlockIndexEntry", "write_block_file", "BlockFileReader"]

_INDEX_SUFFIX = ".index.json"


@dataclass(frozen=True)
class BlockIndexEntry:
    """Location of one block within the data file."""

    block_id: int
    offset: int
    length: int
    n_tuples: int


def write_block_file(
    dataset: Dataset,
    path: str | Path,
    tuples_per_block: int,
) -> list[BlockIndexEntry]:
    """Materialise ``dataset`` as a block file + index at ``path``.

    Returns the block index that was written to ``path + '.index.json'``.
    """
    if tuples_per_block <= 0:
        raise ValueError("tuples_per_block must be positive")
    path = Path(path)
    labels = np.asarray(dataset.y, dtype=np.float64)
    entries: list[BlockIndexEntry] = []
    offset = 0
    with open(path, "wb") as f:
        block_id = 0
        for lo in range(0, dataset.n_tuples, tuples_per_block):
            hi = min(lo + tuples_per_block, dataset.n_tuples)
            payload = bytearray()
            for i in range(lo, hi):
                if isinstance(dataset.X, SparseMatrix):
                    features = dataset.X.row(i)
                else:
                    features = dataset.X[i]
                payload += encode_tuple(i, labels[i], features)
            f.write(payload)
            entries.append(BlockIndexEntry(block_id, offset, len(payload), hi - lo))
            offset += len(payload)
            block_id += 1
    index_doc = {
        "n_features": dataset.n_features,
        "sparse": dataset.is_sparse,
        "n_tuples": dataset.n_tuples,
        "blocks": [
            {"block_id": e.block_id, "offset": e.offset, "length": e.length, "n_tuples": e.n_tuples}
            for e in entries
        ],
    }
    with open(str(path) + _INDEX_SUFFIX, "w") as f:
        json.dump(index_doc, f)
    return entries


class BlockFileReader:
    """Random block-granular reader over a block file written above."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with open(str(self.path) + _INDEX_SUFFIX) as f:
            doc = json.load(f)
        self.schema = TupleSchema(doc["n_features"], sparse=doc["sparse"])
        self.n_tuples = int(doc["n_tuples"])
        self.entries = [
            BlockIndexEntry(b["block_id"], b["offset"], b["length"], b["n_tuples"])
            for b in doc["blocks"]
        ]
        self._file = open(self.path, "rb")
        self.bytes_read = 0
        self.blocks_read = 0

    @property
    def n_blocks(self) -> int:
        return len(self.entries)

    def read_block(self, block_id: int) -> list[TrainingTuple]:
        """Read one block as per-tuple records (decoded via the bulk path)."""
        return self.read_block_batch(block_id).to_tuples()

    def read_block_batch(self, block_id: int) -> TupleBatch:
        """Read one block as a columnar :class:`TupleBatch` (vectorized decode)."""
        entry = self.entries[block_id]
        self._file.seek(entry.offset)
        buffer = self._file.read(entry.length)
        self.bytes_read += entry.length
        self.blocks_read += 1
        return decode_block(buffer, entry.n_tuples, self.schema)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
