"""On-disk block files — the TFRecord-style format of the PyTorch integration.

Section 5 of the paper stores ImageNet as binary record files on a
block-based parallel file system and builds a *block index* marking the
start/end of each block so that ``CorgiPileDataset`` can read whole blocks.
This module implements that format for real: a data file of concatenated
encoded tuples plus a sidecar index recording ``(offset, length, n_tuples)``
per block.

Index format v2 additionally records a CRC32 per block, and the reader
verifies every block read against it before decoding (torn/corrupt reads
raise :class:`~repro.storage.retry.ChecksumError`).  A
:class:`~repro.storage.retry.RetryPolicy` can be attached so transient
faults and checksum failures are absorbed by bounded re-reads — the fault
plane (:mod:`repro.faults`) injects underneath this path via
``FaultyBlockFileReader``.  v1 indexes (no checksums) still load; their
reads simply skip verification.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .. import obs
from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .codec import TrainingTuple, TupleBatch, TupleSchema, decode_block, encode_tuple
from .retry import ChecksumError, RetryPolicy

__all__ = ["BlockIndexEntry", "write_block_file", "BlockFileReader"]

_INDEX_SUFFIX = ".index.json"
_INDEX_FORMAT = 2  # v2 adds per-block crc32 checksums


@dataclass(frozen=True)
class BlockIndexEntry:
    """Location of one block within the data file."""

    block_id: int
    offset: int
    length: int
    n_tuples: int
    crc32: int | None = None  # None for v1 indexes written without checksums


def write_block_file(
    dataset: Dataset,
    path: str | Path,
    tuples_per_block: int,
) -> list[BlockIndexEntry]:
    """Materialise ``dataset`` as a block file + index at ``path``.

    Returns the block index that was written to ``path + '.index.json'``.
    """
    if tuples_per_block <= 0:
        raise ValueError("tuples_per_block must be positive")
    path = Path(path)
    labels = np.asarray(dataset.y, dtype=np.float64)
    entries: list[BlockIndexEntry] = []
    offset = 0
    with open(path, "wb") as f:
        block_id = 0
        for lo in range(0, dataset.n_tuples, tuples_per_block):
            hi = min(lo + tuples_per_block, dataset.n_tuples)
            payload = bytearray()
            for i in range(lo, hi):
                if isinstance(dataset.X, SparseMatrix):
                    features = dataset.X.row(i)
                else:
                    features = dataset.X[i]
                payload += encode_tuple(i, labels[i], features)
            f.write(payload)
            entries.append(
                BlockIndexEntry(
                    block_id, offset, len(payload), hi - lo, zlib.crc32(bytes(payload))
                )
            )
            offset += len(payload)
            block_id += 1
    index_doc = {
        "format": _INDEX_FORMAT,
        "n_features": dataset.n_features,
        "sparse": dataset.is_sparse,
        "n_tuples": dataset.n_tuples,
        "blocks": [
            {
                "block_id": e.block_id,
                "offset": e.offset,
                "length": e.length,
                "n_tuples": e.n_tuples,
                "crc32": e.crc32,
            }
            for e in entries
        ],
    }
    with open(str(path) + _INDEX_SUFFIX, "w") as f:
        json.dump(index_doc, f)
    return entries


class BlockFileReader:
    """Random block-granular reader over a block file written above.

    Every block read is CRC-verified (when the index carries checksums)
    before decoding.  With a ``retry`` policy, transient read errors and
    checksum mismatches are retried up to the policy's budget; without one,
    the first failure propagates.  ``storage_stats`` (duck-typed as
    :class:`~repro.obs.StorageMetrics`) receives attempt/retry
    counters either way.
    """

    def __init__(
        self,
        path: str | Path,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
        verify_checksums: bool = True,
    ):
        self.path = Path(path)
        with open(str(self.path) + _INDEX_SUFFIX) as f:
            doc = json.load(f)
        self.schema = TupleSchema(doc["n_features"], sparse=doc["sparse"])
        self.n_tuples = int(doc["n_tuples"])
        self.index_format = int(doc.get("format", 1))
        self.entries = [
            BlockIndexEntry(
                b["block_id"],
                b["offset"],
                b["length"],
                b["n_tuples"],
                b.get("crc32"),
            )
            for b in doc["blocks"]
        ]
        self._file = open(self.path, "rb")
        self.retry = retry
        self.storage_stats = storage_stats
        self.verify_checksums = bool(verify_checksums)
        self.bytes_read = 0
        self.blocks_read = 0

    @property
    def n_blocks(self) -> int:
        return len(self.entries)

    def read_block(self, block_id: int) -> list[TrainingTuple]:
        """Read one block as per-tuple records (decoded via the bulk path)."""
        return self.read_block_batch(block_id).to_tuples()

    # ------------------------------------------------------------------
    def _read_raw(self, entry: BlockIndexEntry, attempt: int) -> bytes:
        """Read one block's raw bytes — the fault-injection seam.

        The base reader seeks and reads; ``FaultyBlockFileReader`` overrides
        this to consult its fault plan (raise a transient error, return
        corrupted bytes, sleep, or crash) per ``attempt``.
        """
        del attempt
        self._file.seek(entry.offset)
        return self._file.read(entry.length)

    def _read_verified(self, entry: BlockIndexEntry, attempt: int) -> bytes:
        buffer = self._read_raw(entry, attempt)
        if self.verify_checksums and entry.crc32 is not None:
            got = zlib.crc32(buffer)
            if got != entry.crc32:
                raise ChecksumError(
                    f"block {entry.block_id}: checksum mismatch "
                    f"(got {got:#010x}, want {entry.crc32:#010x})"
                )
        return buffer

    def read_block_batch(self, block_id: int) -> TupleBatch:
        """Read one block as a columnar :class:`TupleBatch` (vectorized decode).

        Verified and (when a policy is attached) retried: the caller either
        receives checksum-clean bytes or sees
        :class:`~repro.storage.retry.ReadExhaustedError` once the budget is
        spent.  Byte accounting only charges reads that succeeded.
        """
        entry = self.entries[block_id]
        if self.retry is not None:
            buffer = self.retry.run(
                lambda attempt: self._read_verified(entry, attempt),
                stats=self.storage_stats,
                describe=f"block {block_id} of {self.path.name}",
            )
        else:
            stats = self.storage_stats
            if stats is not None:
                stats.record_attempt()
            try:
                buffer = self._read_verified(entry, 1)
            except ChecksumError as exc:
                if stats is not None:
                    stats.record_fault(exc)
                raise
            if stats is not None:
                stats.record_ok()
        self.bytes_read += entry.length
        self.blocks_read += 1
        obs.inc("storage.blockfile.blocks_read")
        obs.inc("storage.blockfile.bytes_read", entry.length)
        return decode_block(buffer, entry.n_tuples, self.schema)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
