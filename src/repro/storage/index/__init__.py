"""Secondary indexes: single-column B+trees over heap RIDs.

``bptree`` is the in-memory structure DML maintains synchronously;
``idxfile`` is its versioned, CRC-checked on-disk ``.idx`` form with
6-byte packed-RID leaves.
"""

from ..rid import RID, RID_BYTES, pack_rids, unpack_rids
from .bptree import DEFAULT_ORDER, BPlusTree
from .idxfile import (
    FORMAT_VERSION,
    MAGIC,
    IndexFileReader,
    IndexFormatError,
    read_index_header,
    save_index,
)

__all__ = [
    "RID",
    "RID_BYTES",
    "pack_rids",
    "unpack_rids",
    "BPlusTree",
    "DEFAULT_ORDER",
    "FORMAT_VERSION",
    "MAGIC",
    "IndexFileReader",
    "IndexFormatError",
    "read_index_header",
    "save_index",
]
