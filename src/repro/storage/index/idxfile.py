"""The versioned, CRC-checked on-disk form of a B+tree index (``.idx``).

Layout (all integers big-endian; spec pinned in ``docs/storage_format.md``):

```
magic      4s   b"RIDX"
version    u16  FORMAT_VERSION (1)
flags      u16  reserved, 0
header_len u32
header     JSON: column, order, n_entries, n_nodes, height, root (always 0)
header_crc u32  CRC32 of the header JSON bytes
directory  n_nodes × (offset u64, length u32, crc u32)
nodes      concatenated node payloads (offsets relative to this area)
```

Node payload:

```
kind u8                      0 = leaf, 1 = internal
n    u16                     entries (leaf) / separators (internal)
leaf:     n × key f64, n × RID (6 bytes: page u32 + slot u16),
          next_leaf u32      0xFFFFFFFF terminates the chain
internal: n × (key f64 + RID 6B) composite separators,
          (n + 1) × child u32
```

Every node payload carries its own CRC32 in the directory, so a reader can
verify exactly the nodes a range scan touches — the same
verify-before-decode contract as block files, with the same
:class:`~repro.storage.retry.ChecksumError` → bounded-retry escalation.
Files are written via ``durable_write`` (tmp + fsync + rename), so an
interrupted ``CREATE INDEX`` or DML maintenance rewrite never leaves a torn
``.idx`` behind — recovery sees either the old or the new tree.

Version bumps follow the heap-file migration playbook (Snippet-2 style):
readers reject unknown versions with :class:`IndexFormatError`, and a
migration tool rewrites old files to the current version after backing the
original up as ``<name>.idx.v<N>.bak``.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator

from ..retry import ChecksumError, RetryPolicy
from ..rid import RID, RID_BYTES, pack_rids, unpack_rids
from .bptree import BPlusTree

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "IndexFormatError",
    "save_index",
    "IndexFileReader",
    "read_index_header",
]

MAGIC = b"RIDX"
FORMAT_VERSION = 1
_NO_NEXT = 0xFFFFFFFF

_PREAMBLE = struct.Struct(">4sHHI")
_DIR_ENTRY = struct.Struct(">QII")
_NODE_HEAD = struct.Struct(">BH")
_KEY = struct.Struct(">d")
_CHILD = struct.Struct(">I")


class IndexFormatError(ValueError):
    """The ``.idx`` bytes are not a readable index of a supported version."""


# ----------------------------------------------------------------------
# Writing
def _encode_leaf(entries, next_id: int | None) -> bytes:
    parts = [_NODE_HEAD.pack(0, len(entries))]
    parts.extend(_KEY.pack(key) for key, _ in entries)
    parts.append(pack_rids(rid for _, rid in entries))
    parts.append(_CHILD.pack(_NO_NEXT if next_id is None else next_id))
    return b"".join(parts)


def _encode_inner(separators, child_ids) -> bytes:
    parts = [_NODE_HEAD.pack(1, len(separators))]
    for key, rid in separators:
        parts.append(_KEY.pack(key))
        parts.append(RID(*rid).pack())
    parts.extend(_CHILD.pack(cid) for cid in child_ids)
    return b"".join(parts)


def save_index(tree: BPlusTree, column: str, path: str | Path) -> Path:
    """Serialize ``tree`` as a ``.idx`` file, atomically and durably."""
    numbered = tree.nodes()
    ids = {id(node): node_id for node_id, node in numbered}
    payloads: list[bytes] = []
    for _, node in numbered:
        if node.is_leaf:
            next_id = None if node.next is None else ids[id(node.next)]
            payloads.append(_encode_leaf(node.entries, next_id))
        else:
            payloads.append(
                _encode_inner(node.separators, [ids[id(c)] for c in node.children])
            )
    header = json.dumps(
        {
            "column": column,
            "order": tree.order,
            "n_entries": tree.n_entries,
            "n_nodes": len(payloads),
            "height": tree.height,
            "root": 0,
        }
    ).encode()
    directory = []
    offset = 0
    for payload in payloads:
        directory.append(_DIR_ENTRY.pack(offset, len(payload), zlib.crc32(payload)))
        offset += len(payload)
    blob = b"".join(
        [
            _PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header)),
            header,
            struct.pack(">I", zlib.crc32(header)),
            *directory,
            *payloads,
        ]
    )
    from ...ml.persistence import durable_write  # lazy: avoids an import cycle

    return durable_write(path, blob)


# ----------------------------------------------------------------------
# Reading
def read_index_header(path: str | Path) -> dict:
    """Parse and CRC-verify just the header (cheap metadata peek)."""
    with open(path, "rb") as fh:
        preamble = fh.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise IndexFormatError(f"{path}: truncated index file")
        magic, version, _flags, header_len = _PREAMBLE.unpack(preamble)
        if magic != MAGIC:
            raise IndexFormatError(f"{path}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise IndexFormatError(
                f"{path}: format version {version} not supported "
                f"(this build reads v{FORMAT_VERSION}; run the index "
                "migration to rewrite it)"
            )
        header_bytes = fh.read(header_len)
        (crc,) = struct.unpack(">I", fh.read(4))
    if zlib.crc32(header_bytes) != crc:
        raise IndexFormatError(f"{path}: header CRC mismatch")
    header = json.loads(header_bytes.decode())
    header["version"] = version
    return header


class IndexFileReader:
    """Random-access, CRC-verified reads over a ``.idx`` file.

    Nodes are fetched on demand during descents and leaf-chain walks, each
    read verified against its directory CRC before decoding.
    ``_read_node_raw`` is the fault-injection seam
    (:class:`~repro.faults.store.FaultyIndexReader` overrides it); pass a
    :class:`~repro.storage.retry.RetryPolicy` to absorb transient faults the
    way the block reader does.  ``nodes_read`` counts fetches — the unit the
    I/O model charges an index probe by.
    """

    def __init__(
        self,
        path: str | Path,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
    ):
        self.path = Path(path)
        self.retry = retry
        self.storage_stats = storage_stats
        self.nodes_read = 0
        data = self.path.read_bytes()
        if len(data) < _PREAMBLE.size:
            raise IndexFormatError(f"{self.path}: truncated index file")
        magic, version, _flags, header_len = _PREAMBLE.unpack_from(data, 0)
        if magic != MAGIC:
            raise IndexFormatError(f"{self.path}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise IndexFormatError(
                f"{self.path}: format version {version} not supported "
                f"(this build reads v{FORMAT_VERSION})"
            )
        pos = _PREAMBLE.size
        header_bytes = data[pos : pos + header_len]
        pos += header_len
        (crc,) = struct.unpack_from(">I", data, pos)
        pos += 4
        if zlib.crc32(header_bytes) != crc:
            raise IndexFormatError(f"{self.path}: header CRC mismatch")
        header = json.loads(header_bytes.decode())
        self.version = version
        self.column: str = header["column"]
        self.order: int = header["order"]
        self.n_entries: int = header["n_entries"]
        self.n_nodes: int = header["n_nodes"]
        self.height: int = header["height"]
        self.root_id: int = header["root"]
        self._directory = [
            _DIR_ENTRY.unpack_from(data, pos + i * _DIR_ENTRY.size)
            for i in range(self.n_nodes)
        ]
        self._payload_base = pos + self.n_nodes * _DIR_ENTRY.size
        self._data = data
        if self._payload_base + sum(d[1] for d in self._directory) > len(data):
            raise IndexFormatError(f"{self.path}: node area truncated")

    # ------------------------------------------------------------------
    def _read_node_raw(self, node_id: int, attempt: int = 1) -> bytes:
        """One raw node read — the fault-injection seam."""
        del attempt  # the clean reader never fails, whatever the attempt
        offset, length, _crc = self._directory[node_id]
        start = self._payload_base + offset
        return self._data[start : start + length]

    def read_node(self, node_id: int, attempt: int = 1):
        """Read, CRC-verify, and decode one node.

        Returns ``("leaf", entries, next_id)`` or ``("inner", separators,
        child_ids)``; raises :class:`ChecksumError` on a torn read.
        """
        if not 0 <= node_id < self.n_nodes:
            raise IndexFormatError(f"{self.path}: node {node_id} out of range")
        raw = self._read_node_raw(node_id, attempt)
        want = self._directory[node_id][2]
        got = zlib.crc32(raw)
        if got != want:
            raise ChecksumError(
                f"index node {node_id}: checksum mismatch "
                f"(got {got:#010x}, want {want:#010x})"
            )
        self.nodes_read += 1
        return _decode_node(raw)

    def _fetch(self, node_id: int):
        """A node read under the retry policy (if any)."""
        if self.retry is None:
            return self.read_node(node_id)
        return self.retry.run(
            lambda attempt: self.read_node(node_id, attempt),
            stats=self.storage_stats,
            describe=f"index node {node_id} of {self.path.name}",
        )

    # ------------------------------------------------------------------
    def range_rids(
        self,
        lo: float | None = None,
        hi: float | None = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, RID]]:
        """Stream ``(key, rid)`` over the interval, straight off the file."""
        from bisect import bisect_left, bisect_right

        probe = None
        if lo is not None:
            bound = RID(0, 0) if lo_inclusive else RID(2**32 - 1, 2**16 - 1)
            probe = (float(lo), bound)
        node_id = self.root_id
        node = self._fetch(node_id)
        while node[0] == "inner":
            _, separators, children = node
            idx = 0 if probe is None else bisect_right(separators, probe)
            node = self._fetch(children[idx])
        _, entries, next_id = node
        idx = 0
        if probe is not None:
            idx = (bisect_left if lo_inclusive else bisect_right)(entries, probe)
        while True:
            while idx < len(entries):
                key, rid = entries[idx]
                if hi is not None and (key > hi or (key == hi and not hi_inclusive)):
                    return
                yield key, rid
                idx += 1
            if next_id is None:
                return
            _, entries, next_id = self._fetch(next_id)
            idx = 0

    def items(self) -> Iterator[tuple[float, RID]]:
        return self.range_rids()

    def search(self, key: float) -> list[RID]:
        return [rid for _, rid in self.range_rids(key, key)]

    # ------------------------------------------------------------------
    def validate(self) -> dict:
        """Full-file audit: every node CRC + entry count + leaf order.

        The recovery check: a file that validates is exactly one the writer
        produced (durable_write guarantees old-or-new, this proves "whole").
        """
        entries = 0
        last = None
        leaves = 0
        for node_id in range(self.n_nodes):
            # Audit through the retry policy: a transient or torn read that
            # re-reads clean is healthy, not corrupt.  A reader with no
            # policy (the default) still surfaces the first CRC mismatch.
            node = self._fetch(node_id)
            if node[0] == "leaf":
                leaves += 1
                entries += len(node[1])
        for key, rid in self.items():
            if last is not None and (key, rid) < last:
                raise IndexFormatError(f"{self.path}: leaf chain out of order")
            last = (key, rid)
        if entries != self.n_entries:
            raise IndexFormatError(
                f"{self.path}: header says {self.n_entries} entries, "
                f"nodes hold {entries}"
            )
        return {
            "nodes": self.n_nodes,
            "leaves": leaves,
            "entries": entries,
            "height": self.height,
            "version": self.version,
        }

    def to_tree(self) -> BPlusTree:
        """Rebuild the in-memory tree (bulk load from the leaf chain)."""
        return BPlusTree.bulk_load(self.items(), order=self.order)


def _decode_node(raw: bytes):
    kind, n = _NODE_HEAD.unpack_from(raw, 0)
    pos = _NODE_HEAD.size
    if kind == 0:
        keys = [_KEY.unpack_from(raw, pos + i * 8)[0] for i in range(n)]
        pos += n * 8
        rids = unpack_rids(raw, n, pos)
        pos += n * RID_BYTES
        (next_raw,) = _CHILD.unpack_from(raw, pos)
        next_id = None if next_raw == _NO_NEXT else next_raw
        return ("leaf", list(zip(keys, rids)), next_id)
    if kind == 1:
        separators = []
        for _ in range(n):
            (key,) = _KEY.unpack_from(raw, pos)
            pos += 8
            separators.append((key, RID.unpack(raw, pos)))
            pos += RID_BYTES
        children = [
            _CHILD.unpack_from(raw, pos + i * _CHILD.size)[0] for i in range(n + 1)
        ]
        return ("inner", separators, children)
    raise IndexFormatError(f"unknown node kind {kind}")
