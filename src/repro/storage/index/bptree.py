"""In-memory B+tree over ``(key, RID)`` entries — the secondary-index core.

Single-column, float64 keys, duplicate keys allowed.  Every entry is made
unique by ordering on the *composite* ``(key, rid)`` — the RID is part of
the sort key, PostgreSQL-B-tree style (v12 "heap TID as tiebreaker") — so
inserts land deterministically, deletes remove exactly one physical entry,
and the leaf chain enumerates duplicates in stable heap order.

Leaves are chained for range scans; internal nodes hold composite separator
entries.  Deletion takes the lazy route (no rebalancing): an underfull or
empty leaf simply stays in the chain, which keeps scans correct because
separators remain valid bounds.  Index files are rewritten on DML commit,
so on-disk compactness is restored at every save anyway.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator

from ..rid import RID

__all__ = ["BPlusTree", "DEFAULT_ORDER"]

#: Max entries per leaf and max children per internal node.
DEFAULT_ORDER = 64

#: Composite probes below/above every real RID (slot ids are uint16,
#: page ids uint32 — these bound the packable range).
_MIN_RID = RID(0, 0)
_MAX_RID = RID(2**32 - 1, 2**16 - 1)


class _Leaf:
    __slots__ = ("entries", "next")

    def __init__(self, entries=None):
        #: Sorted list of ``(key, RID)`` tuples (lexicographic composite).
        self.entries: list[tuple[float, RID]] = entries or []
        self.next: _Leaf | None = None

    is_leaf = True


class _Inner:
    __slots__ = ("separators", "children")

    def __init__(self, separators, children):
        #: ``separators[i]`` is the smallest composite entry reachable under
        #: ``children[i + 1]``; ``len(children) == len(separators) + 1``.
        self.separators: list[tuple[float, RID]] = separators
        self.children: list = children

    is_leaf = False


class BPlusTree:
    """A single-column secondary index mapping key values to heap RIDs."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = int(order)
        self._root = _Leaf()
        self._n_entries = 0

    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, pairs, order: int = DEFAULT_ORDER) -> "BPlusTree":
        """Build bottom-up from ``(key, rid)`` pairs (sorted or not).

        The classic bulk path of ``CREATE INDEX``: sort once, pack leaves
        left to right, then stack internal levels — no per-entry descent.
        """
        tree = cls(order=order)
        entries = sorted((float(k), RID(*r)) for k, r in pairs)
        if not entries:
            return tree
        leaves = [
            _Leaf(entries[i : i + order]) for i in range(0, len(entries), order)
        ]
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        level: list = leaves
        while len(level) > 1:
            parents = []
            for i in range(0, len(level), order):
                group = level[i : i + order]
                parents.append(
                    _Inner([_smallest(child) for child in group[1:]], group)
                )
            level = parents
        tree._root = level[0]
        tree._n_entries = len(entries)
        return tree

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return self._n_entries

    @property
    def height(self) -> int:
        """Levels from root to leaf (a lone leaf is height 1)."""
        h, node = 1, self._root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h

    # ------------------------------------------------------------------
    def insert(self, key: float, rid) -> None:
        entry = (float(key), RID(*rid))
        split = self._insert(self._root, entry)
        if split is not None:
            separator, right = split
            self._root = _Inner([separator], [self._root, right])
        self._n_entries += 1

    def _insert(self, node, entry):
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        if node.is_leaf:
            insort(node.entries, entry)
            if len(node.entries) <= self.order:
                return None
            mid = len(node.entries) // 2
            right = _Leaf(node.entries[mid:])
            node.entries = node.entries[:mid]
            right.next = node.next
            node.next = right
            return right.entries[0], right
        idx = bisect_right(node.separators, entry)
        split = self._insert(node.children[idx], entry)
        if split is None:
            return None
        separator, right = split
        node.separators.insert(idx, separator)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self.order:
            return None
        mid = len(node.children) // 2
        promoted = node.separators[mid - 1]
        right_node = _Inner(node.separators[mid:], node.children[mid:])
        node.separators = node.separators[: mid - 1]
        node.children = node.children[:mid]
        return promoted, right_node

    def delete(self, key: float, rid) -> bool:
        """Remove exactly the entry ``(key, rid)``; returns False if absent.

        Lazy deletion: leaves are never merged, separators never shrink —
        both stay valid bounds, so lookups and scans remain correct.
        """
        entry = (float(key), RID(*rid))
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.separators, entry)]
        idx = bisect_left(node.entries, entry)
        if idx < len(node.entries) and node.entries[idx] == entry:
            del node.entries[idx]
            self._n_entries -= 1
            return True
        return False

    # ------------------------------------------------------------------
    def _leaf_for(self, probe) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.separators, probe)]
        return node

    def range(
        self,
        lo: float | None = None,
        hi: float | None = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, RID]]:
        """Yield ``(key, rid)`` in composite order over ``[lo, hi]``.

        ``None`` bounds are open ends; inclusivity flags give the four
        interval shapes the predicate compiler needs.
        """
        if lo is None:
            leaf, idx = self._leftmost(), 0
        else:
            probe = (float(lo), _MIN_RID if lo_inclusive else _MAX_RID)
            leaf = self._leaf_for(probe)
            idx = (bisect_left if lo_inclusive else bisect_right)(leaf.entries, probe)
        while leaf is not None:
            while idx < len(leaf.entries):
                key, rid = leaf.entries[idx]
                if hi is not None and (key > hi or (key == hi and not hi_inclusive)):
                    return
                yield key, rid
                idx += 1
            leaf, idx = leaf.next, 0

    def search(self, key: float) -> list[RID]:
        """All RIDs stored under exactly ``key`` (heap order)."""
        return [rid for _, rid in self.range(key, key)]

    def items(self) -> Iterator[tuple[float, RID]]:
        return self.range()

    def _leftmost(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    def nodes(self):
        """Breadth-first ``(node_id, node)`` enumeration; root is node 0.

        The serializer relies on this id assignment: children ids are only
        known once the whole level above is numbered, and BFS gives a stable,
        reader-friendly layout (root first, leaves contiguous at the tail).
        """
        order: list = [self._root]
        seen = 0
        while seen < len(order):
            node = order[seen]
            seen += 1
            if not node.is_leaf:
                order.extend(node.children)
        return list(enumerate(order))

    def check_invariants(self) -> None:
        """Structural audit (tests + recovery verification)."""
        count = sum(1 for _ in self.items())
        if count != self._n_entries:
            raise AssertionError(
                f"leaf chain holds {count} entries, counter says {self._n_entries}"
            )
        flat = list(self.items())
        if flat != sorted(flat):
            raise AssertionError("leaf chain out of composite order")
        self._check_node(self._root, None, None)

    def _check_node(self, node, lo, hi) -> None:
        if node.is_leaf:
            for entry in node.entries:
                if lo is not None and entry < lo:
                    raise AssertionError(f"entry {entry} below separator bound {lo}")
                if hi is not None and entry >= hi:
                    raise AssertionError(f"entry {entry} above separator bound {hi}")
            return
        if len(node.children) != len(node.separators) + 1:
            raise AssertionError("internal node child/separator arity mismatch")
        bounds = [lo, *node.separators, hi]
        for child, (b_lo, b_hi) in zip(node.children, zip(bounds, bounds[1:])):
            self._check_node(child, b_lo, b_hi)


def _smallest(node) -> tuple[float, RID]:
    while not node.is_leaf:
        node = node.children[0]
    return node.entries[0]
