"""Columnar compressed block format with lazy zero-copy views.

The row codec (:mod:`repro.storage.codec`) interleaves every tuple's id,
label, and features, so a reader pays the full decode even for columns it
never touches.  This module adds the columnar tier (ROADMAP item 4): one
block is stored as *per-column chunks* behind a binary column directory, so
readers can seek to — and decode — exactly the columns a consumer needs.

Block payload layout (all little-endian; pinned in
``docs/storage_format.md``)::

    header (16 bytes)   magic b"CPB1" | version u16 | n_tuples u32
                        | n_features u32 | n_cols u8 | flags u8
    directory           n_cols entries of 20 bytes each:
                        col u8 | enc u8 | width u8 | delta u8
                        | offset u32 | length u32 | n_values u32 | crc32 u32
    chunks              each 8-byte aligned, zero-padded between

Columns: ``ids`` (int64), ``labels`` (float64), and either ``dense`` (a
row-major ``n x d`` float64 run) or the CSR triple ``indptr``/``indices``/
``values``.  Encodings:

* ``ENC_F64`` / ``ENC_I64`` — raw little-endian runs.  Decoding is a
  **zero-copy** ``np.frombuffer`` view over the block buffer;
* ``ENC_PACKED`` — integer chunks delta-encoded (when monotone
  non-decreasing) then packed to the minimal byte width (1/2/4/8).  This is
  what shrinks sparse ``indices`` (width follows the feature-space size)
  and ``ids``/``indptr`` (deltas are tiny) well below the row format.

:func:`decode_block_columnar` returns a :class:`LazyTupleBatch`: no column
is decoded up front; each array materialises on first attribute access and
is cached on the batch.  Per-chunk CRC32s in the directory let pruned
readers verify only the bytes they actually read.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..data.sparse import SparseMatrix, SparseRow
from .codec import TrainingTuple, TupleBatch, TupleSchema
from .retry import ChecksumError

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_VERSION",
    "COL_IDS",
    "COL_LABELS",
    "COL_DENSE",
    "COL_INDPTR",
    "COL_INDICES",
    "COL_VALUES",
    "COLUMN_NAMES",
    "ChunkRef",
    "LazyTupleBatch",
    "encode_block_columnar",
    "decode_block_columnar",
    "read_columnar_header",
    "columns_for",
]

COLUMNAR_MAGIC = b"CPB1"
COLUMNAR_VERSION = 1

_HEADER = struct.Struct("<4sHIIBB")  # magic, version, n_tuples, n_features, n_cols, flags
_DIR_ENTRY = struct.Struct("<BBBBIIII")  # col, enc, width, delta, offset, length, n_values, crc32
_FLAG_SPARSE = 1

# Column codes (the ``col`` byte of a directory entry).
COL_IDS = 1
COL_LABELS = 2
COL_DENSE = 3
COL_INDPTR = 4
COL_INDICES = 5
COL_VALUES = 6

COLUMN_NAMES = {
    COL_IDS: "ids",
    COL_LABELS: "labels",
    COL_DENSE: "dense",
    COL_INDPTR: "indptr",
    COL_INDICES: "indices",
    COL_VALUES: "values",
}
_NAME_TO_COL = {name: code for code, name in COLUMN_NAMES.items()}

# Chunk encodings.
ENC_F64 = 0  # raw little-endian float64 (zero-copy view)
ENC_I64 = 1  # raw little-endian int64 (zero-copy view)
ENC_PACKED = 2  # unsigned ints, optional delta, packed to ``width`` bytes

_ALIGN = 8
_PACK_WIDTHS = (1, 2, 4)  # candidate packed widths below the raw 8 bytes
_PACK_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


@dataclass(frozen=True)
class ChunkRef:
    """One column chunk's directory entry."""

    col: int
    enc: int
    width: int
    delta: int
    offset: int
    length: int
    n_values: int
    crc32: int

    @property
    def name(self) -> str:
        return COLUMN_NAMES.get(self.col, f"col{self.col}")

    def to_doc(self) -> dict:
        """JSON form for the block index sidecar."""
        return {
            "col": self.name,
            "enc": self.enc,
            "width": self.width,
            "delta": self.delta,
            "offset": self.offset,
            "length": self.length,
            "n_values": self.n_values,
            "crc32": self.crc32,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ChunkRef":
        return cls(
            col=_NAME_TO_COL[doc["col"]],
            enc=int(doc["enc"]),
            width=int(doc["width"]),
            delta=int(doc["delta"]),
            offset=int(doc["offset"]),
            length=int(doc["length"]),
            n_values=int(doc["n_values"]),
            crc32=int(doc["crc32"]),
        )


def columns_for(names) -> frozenset[int]:
    """Map column names (``"labels"``, ...) to directory codes."""
    out = set()
    for name in names:
        if name not in _NAME_TO_COL:
            raise ValueError(
                f"unknown column {name!r}; one of {sorted(_NAME_TO_COL)}"
            )
        out.add(_NAME_TO_COL[name])
    return frozenset(out)


# ----------------------------------------------------------------------
# Integer chunk packing
# ----------------------------------------------------------------------

def _encode_ints(arr: np.ndarray) -> tuple[int, int, int, bytes]:
    """Encode an int array; returns ``(enc, width, delta, payload)``.

    Monotone non-decreasing arrays are delta-encoded first (``delta[0]`` is
    the raw first value, so decode is one ``cumsum``); the resulting values
    are packed to the smallest byte width that holds their maximum.  Arrays
    with negative values fall back to the raw int64 run.
    """
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    if arr.size == 0:
        return ENC_PACKED, 1, 0, b""
    if arr.min() < 0:
        return ENC_I64, 8, 0, arr.astype("<i8").tobytes()
    delta = 0
    stored = arr
    if arr.size > 1 and np.all(np.diff(arr) >= 0):
        stored = np.diff(arr, prepend=np.int64(0))
        delta = 1
    peak = int(stored.max())
    for width in _PACK_WIDTHS:
        if peak < 1 << (8 * width):
            return ENC_PACKED, width, delta, stored.astype(_PACK_DTYPES[width]).tobytes()
    return ENC_PACKED, 8, delta, stored.astype("<u8").tobytes()


def _decode_chunk(buffer, ref: ChunkRef, base: int) -> np.ndarray:
    """Materialise one chunk from ``buffer`` at ``base + ref.offset``.

    Raw float64/int64 chunks come back as zero-copy ``np.frombuffer`` views;
    packed chunks pay one vectorized widen (+ cumsum when delta-encoded).
    """
    offset = base + ref.offset
    if ref.enc == ENC_F64:
        return np.frombuffer(buffer, dtype="<f8", count=ref.n_values, offset=offset)
    if ref.enc == ENC_I64:
        return np.frombuffer(buffer, dtype="<i8", count=ref.n_values, offset=offset)
    if ref.enc == ENC_PACKED:
        packed = np.frombuffer(
            buffer, dtype=_PACK_DTYPES[ref.width], count=ref.n_values, offset=offset
        )
        out = packed.astype(np.int64)
        if ref.delta:
            np.cumsum(out, out=out)
        return out
    raise ValueError(f"unknown chunk encoding {ref.enc}")


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------

def encode_block_columnar(batch: TupleBatch, schema: TupleSchema | None = None) -> bytes:
    """Serialise one decoded block into the columnar payload.

    ``batch`` is a (materialised) :class:`~repro.storage.codec.TupleBatch`;
    the inverse is :func:`decode_block_columnar`, which round-trips to
    element-wise equality with the row codec's scalar reference.
    """
    if schema is not None and bool(schema.sparse) != batch.is_sparse:
        raise ValueError("schema sparsity does not match batch")
    chunks: list[tuple[int, int, int, int, bytes, int]] = []

    def add(col: int, enc: int, width: int, delta: int, payload: bytes, n_values: int):
        chunks.append((col, enc, width, delta, payload, n_values))

    enc, width, delta, payload = _encode_ints(batch.ids)
    add(COL_IDS, enc, width, delta, payload, batch.ids.size)
    add(COL_LABELS, ENC_F64, 8, 0, batch.labels.astype("<f8").tobytes(), batch.labels.size)
    if batch.is_sparse:
        enc, width, delta, payload = _encode_ints(batch.indptr)
        add(COL_INDPTR, enc, width, delta, payload, batch.indptr.size)
        enc, width, delta, payload = _encode_ints(batch.indices)
        add(COL_INDICES, enc, width, delta, payload, batch.indices.size)
        add(COL_VALUES, ENC_F64, 8, 0, batch.values.astype("<f8").tobytes(), batch.values.size)
    else:
        dense = np.ascontiguousarray(batch.dense, dtype="<f8")
        add(COL_DENSE, ENC_F64, 8, 0, dense.tobytes(), dense.size)

    dir_size = _HEADER.size + _DIR_ENTRY.size * len(chunks)
    out = bytearray()
    out += _HEADER.pack(
        COLUMNAR_MAGIC,
        COLUMNAR_VERSION,
        len(batch),
        batch.n_features,
        len(chunks),
        _FLAG_SPARSE if batch.is_sparse else 0,
    )
    offset = dir_size
    entries = []
    body = bytearray()
    for col, enc, width, delta, payload, n_values in chunks:
        pad = (-offset) % _ALIGN
        body += b"\x00" * pad
        offset += pad
        entries.append(
            _DIR_ENTRY.pack(col, enc, width, delta, offset, len(payload), n_values, zlib.crc32(payload))
        )
        body += payload
        offset += len(payload)
    for entry in entries:
        out += entry
    out += body
    return bytes(out)


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------

def read_columnar_header(
    buffer, offset: int = 0
) -> tuple[int, int, bool, list[ChunkRef]]:
    """Parse a columnar payload's header + directory.

    Returns ``(n_tuples, n_features, sparse, chunk_refs)``; raises
    ``ValueError`` for a non-columnar buffer (callers use this to sniff the
    layout of a stored page image).
    """
    if len(buffer) - offset < _HEADER.size:
        raise ValueError("buffer too short for a columnar block header")
    magic, version, n_tuples, n_features, n_cols, flags = _HEADER.unpack_from(buffer, offset)
    if magic != COLUMNAR_MAGIC:
        raise ValueError(f"not a columnar block (magic {magic!r})")
    if version != COLUMNAR_VERSION:
        raise ValueError(f"unsupported columnar version {version}")
    refs = [
        ChunkRef(*_DIR_ENTRY.unpack_from(buffer, offset + _HEADER.size + i * _DIR_ENTRY.size))
        for i in range(n_cols)
    ]
    return int(n_tuples), int(n_features), bool(flags & _FLAG_SPARSE), refs


def directory_size(n_cols: int) -> int:
    """Bytes occupied by the header + directory of an ``n_cols`` block."""
    return _HEADER.size + _DIR_ENTRY.size * n_cols


class LazyTupleBatch:
    """A columnar block whose column arrays materialise on first access.

    Mirrors the :class:`~repro.storage.codec.TupleBatch` read interface
    (``ids``/``labels``/``dense``/``indptr``/``indices``/``values``,
    ``row``, ``to_tuples``, ``features_matrix``) but decodes nothing up
    front: each property decodes its chunk on first touch — a zero-copy
    ``np.frombuffer`` view for raw float64/int64 chunks — and caches the
    array.  :attr:`decoded_nbytes` reports only the materialised bytes, so
    the buffer pool can charge real memory, not potential memory.

    The backing store is either one whole block buffer (``buffer`` +
    per-chunk offsets) or, after a column-pruned read, individual chunk
    buffers — absent columns raise ``KeyError`` on access.  Chunk CRCs are
    verified at materialisation time when ``verify_chunks`` is set (the
    pruned read path verifies at read time instead, before bytes are
    trusted enough to cache).

    Lazy-view lifetime rule: views alias the encoded buffer, so the buffer
    stays referenced by the batch for as long as any view may live — do not
    mutate or recycle a buffer handed to a batch.
    """

    def __init__(
        self,
        n_tuples: int,
        n_features: int,
        sparse: bool,
        sources: dict[int, tuple], # col -> (buffer, base_offset, ChunkRef)
        verify_chunks: bool = False,
    ):
        self._n = int(n_tuples)
        self.n_features = int(n_features)
        self._sparse = bool(sparse)
        self._sources = sources
        self._cache: dict[int, np.ndarray] = {}
        self.verify_chunks = bool(verify_chunks)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_block(
        cls, buffer, offset: int = 0, columns=None, verify_chunks: bool = False
    ) -> "LazyTupleBatch":
        n_tuples, n_features, sparse, refs = read_columnar_header(buffer, offset)
        if columns is not None:
            columns = set(columns)
        sources = {
            ref.col: (buffer, offset, ref)
            for ref in refs
            if columns is None or ref.col in columns
        }
        return cls(n_tuples, n_features, sparse, sources, verify_chunks=verify_chunks)

    @classmethod
    def from_chunks(
        cls,
        n_tuples: int,
        n_features: int,
        sparse: bool,
        chunks: dict[int, tuple],  # col -> (chunk_bytes, ChunkRef)
    ) -> "LazyTupleBatch":
        """Build from individually read (already CRC-verified) chunks."""
        sources = {
            col: (payload, -ref.offset, ref) for col, (payload, ref) in chunks.items()
        }
        return cls(n_tuples, n_features, sparse, sources)

    # -- core accessors -------------------------------------------------
    def _get(self, col: int) -> np.ndarray:
        cached = self._cache.get(col)
        if cached is not None:
            return cached
        try:
            buffer, base, ref = self._sources[col]
        except KeyError:
            raise KeyError(
                f"column {COLUMN_NAMES.get(col, col)!r} was pruned from this read"
            ) from None
        if self.verify_chunks and ref.length:
            got = zlib.crc32(memoryview(buffer)[base + ref.offset : base + ref.offset + ref.length])
            if got != ref.crc32:
                raise ChecksumError(
                    f"column chunk {ref.name!r}: checksum mismatch "
                    f"(got {got:#010x}, want {ref.crc32:#010x})"
                )
        array = _decode_chunk(buffer, ref, base)
        if col == COL_DENSE:
            array = array.reshape(self._n, self.n_features)
        self._cache[col] = array
        if obs.enabled():
            obs.inc("storage.columnar.chunks_decoded")
            obs.inc("storage.columnar.chunk_bytes_decoded", ref.length)
        return array

    @property
    def ids(self) -> np.ndarray:
        return self._get(COL_IDS)

    @property
    def labels(self) -> np.ndarray:
        return self._get(COL_LABELS)

    @property
    def dense(self) -> np.ndarray | None:
        return None if self._sparse else self._get(COL_DENSE)

    @property
    def indptr(self) -> np.ndarray | None:
        return self._get(COL_INDPTR) if self._sparse else None

    @property
    def indices(self) -> np.ndarray | None:
        return self._get(COL_INDICES) if self._sparse else None

    @property
    def values(self) -> np.ndarray | None:
        return self._get(COL_VALUES) if self._sparse else None

    # -- TupleBatch protocol --------------------------------------------
    @property
    def is_sparse(self) -> bool:
        return self._sparse

    def __len__(self) -> int:
        return self._n

    def row(self, i: int) -> np.ndarray | SparseRow:
        if not self._sparse:
            return self.dense[i]
        indptr = self.indptr
        lo, hi = indptr[i], indptr[i + 1]
        return SparseRow(self.indices[lo:hi], self.values[lo:hi], self.n_features)

    def to_tuples(self) -> list[TrainingTuple]:
        ids = self.ids.tolist()
        labels = self.labels.tolist()
        return [TrainingTuple(ids[i], labels[i], self.row(i)) for i in range(self._n)]

    def features_matrix(self) -> np.ndarray | SparseMatrix:
        if not self._sparse:
            return self.dense
        return SparseMatrix(
            self.indptr, self.indices, self.values, (self._n, self.n_features)
        )

    # -- introspection ---------------------------------------------------
    @property
    def available_columns(self) -> frozenset[str]:
        return frozenset(COLUMN_NAMES[c] for c in self._sources)

    @property
    def materialized_columns(self) -> frozenset[str]:
        return frozenset(COLUMN_NAMES[c] for c in self._cache)

    @property
    def decoded_nbytes(self) -> int:
        """Bytes of materialised column arrays (real memory, not potential)."""
        return sum(a.nbytes for a in self._cache.values())

    def materialize(self) -> TupleBatch:
        """Decode every available column into an eager ``TupleBatch``."""
        if self._sparse:
            return TupleBatch(
                ids=np.asarray(self.ids),
                labels=np.asarray(self.labels),
                n_features=self.n_features,
                indptr=np.asarray(self.indptr),
                indices=np.asarray(self.indices),
                values=np.asarray(self.values),
            )
        return TupleBatch(
            ids=np.asarray(self.ids),
            labels=np.asarray(self.labels),
            n_features=self.n_features,
            dense=np.asarray(self.dense),
        )


def decode_block_columnar(
    buffer,
    schema: TupleSchema | None = None,
    offset: int = 0,
    columns=None,
    verify_chunks: bool = False,
) -> LazyTupleBatch:
    """Decode one columnar block payload into a :class:`LazyTupleBatch`.

    Nothing is materialised here beyond the 16-byte header and the column
    directory; ``columns`` (an iterable of directory codes or names)
    restricts which chunks the batch may materialise at all.  ``schema`` is
    accepted for signature parity with the row codec and cross-checked when
    given.
    """
    if columns is not None:
        columns = {
            c if isinstance(c, int) else _NAME_TO_COL[c] for c in columns
        }
    batch = LazyTupleBatch.from_block(
        buffer, offset=offset, columns=columns, verify_chunks=verify_chunks
    )
    if schema is not None:
        if batch.n_features != schema.n_features or batch.is_sparse != bool(schema.sparse):
            raise ValueError(
                f"columnar block is ({batch.n_features}, sparse={batch.is_sparse}); "
                f"schema says ({schema.n_features}, sparse={schema.sparse})"
            )
    if obs.enabled():
        obs.inc("storage.columnar.blocks_decoded")
    return batch
