"""Storage substrate: tuple codec, pages, heap/block files, buffer pool, I/O models."""

from .blockfile import BlockFileReader, BlockIndexEntry, write_block_file
from .bufferpool import BufferPool
from .codec import (
    TrainingTuple,
    TupleBatch,
    TupleSchema,
    decode_block,
    decode_page,
    decode_tuple,
    encode_tuple,
)
from .columnar import (
    ChunkRef,
    LazyTupleBatch,
    decode_block_columnar,
    encode_block_columnar,
)
from .filestore import load_heap, save_heap
from .index import (
    BPlusTree,
    IndexFileReader,
    IndexFormatError,
    read_index_header,
    save_index,
)
from .migrate import MigrationReport, migrate_file
from .heapfile import ColumnarMutationError, HeapFile
from .rid import RID, RID_BYTES, pack_rids, unpack_rids
from .iomodel import (
    DEVICE_MODELS,
    HDD,
    HDD_SCALED,
    MEMORY,
    NVM,
    NVM_SCALED,
    SSD,
    SSD_SCALED,
    AccessEvent,
    StripedDevice,
    AccessTrace,
    DeviceModel,
    device_by_name,
    random_vs_sequential_curve,
)
from .page import DEFAULT_PAGE_BYTES, Page
from .retry import (
    ChecksumError,
    ReadExhaustedError,
    RetryableIOError,
    RetryPolicy,
    TransientReadError,
)

__all__ = [
    "RetryPolicy",
    "RetryableIOError",
    "TransientReadError",
    "ChecksumError",
    "ReadExhaustedError",
    "TrainingTuple",
    "TupleBatch",
    "TupleSchema",
    "encode_tuple",
    "decode_tuple",
    "decode_page",
    "decode_block",
    "ChunkRef",
    "LazyTupleBatch",
    "encode_block_columnar",
    "decode_block_columnar",
    "MigrationReport",
    "migrate_file",
    "Page",
    "DEFAULT_PAGE_BYTES",
    "HeapFile",
    "ColumnarMutationError",
    "RID",
    "RID_BYTES",
    "pack_rids",
    "unpack_rids",
    "BPlusTree",
    "IndexFileReader",
    "IndexFormatError",
    "read_index_header",
    "save_index",
    "save_heap",
    "load_heap",
    "BufferPool",
    "BlockFileReader",
    "BlockIndexEntry",
    "write_block_file",
    "DeviceModel",
    "HDD",
    "HDD_SCALED",
    "SSD",
    "SSD_SCALED",
    "NVM",
    "NVM_SCALED",
    "DEVICE_MODELS",
    "device_by_name",
    "MEMORY",
    "StripedDevice",
    "AccessEvent",
    "AccessTrace",
    "random_vs_sequential_curve",
]
