"""In-place migration of row-format files to the columnar block format.

``repro migrate`` (and :func:`migrate_file` underneath) converts

* v1/v2 row block files (``*.index.json`` sidecar) and
* ``CORGIHEAP1`` heap files written by :func:`~repro.storage.filestore.save_heap`

into v3 columnar block files at the same path.  The conversion is

* **atomic** — the new data file is assembled in a ``.migrate.tmp`` sibling
  and moved into place with fsync + ``os.replace`` (the index sidecar goes
  through :func:`~repro.ml.persistence.durable_write`), so a crash never
  leaves a half-written file where the source used to be;
* **CRC-verified** — source blocks are read through the checksum-verifying
  reader, and each re-encoded block is decoded back and compared
  element-wise against the source batch before it is accepted;
* **resumable** — progress is journalled per block to a
  ``.migrate.state.json`` sidecar; re-running after a crash picks up at the
  first unconverted block instead of starting over.

Block boundaries are preserved exactly (heap files group pages the same
way ``block_pages`` would), so CorgiPile's block-level shuffle visits
tuples in the identical order before and after migration — training on a
migrated file is bit-identical to training on the source.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..ml.persistence import durable_write
from .blockfile import (
    _INDEX_SUFFIX,
    BlockFileReader,
    BlockIndexEntry,
    _index_doc,
)
from .codec import TupleBatch, TupleSchema
from .columnar import (
    COLUMNAR_MAGIC,
    decode_block_columnar,
    encode_block_columnar,
    read_columnar_header,
)
from .filestore import _MAGIC as _HEAP_MAGIC
from .filestore import load_heap

__all__ = ["MigrationReport", "migrate_file"]

_STATE_SUFFIX = ".migrate.state.json"
_TMP_SUFFIX = ".migrate.tmp"


@dataclass
class MigrationReport:
    """What one :func:`migrate_file` call did."""

    path: str
    kind: str  # "block" | "heap"
    skipped: bool = False  # already columnar — nothing to do
    n_blocks: int = 0
    n_tuples: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    resumed_at_block: int = 0  # first block actually converted this run
    verified_blocks: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def bytes_per_tuple_before(self) -> float:
        return self.bytes_before / self.n_tuples if self.n_tuples else 0.0

    @property
    def bytes_per_tuple_after(self) -> float:
        return self.bytes_after / self.n_tuples if self.n_tuples else 0.0

    def to_doc(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "skipped": self.skipped,
            "n_blocks": self.n_blocks,
            "n_tuples": self.n_tuples,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "resumed_at_block": self.resumed_at_block,
            "verified_blocks": self.verified_blocks,
            "notes": list(self.notes),
        }


def _batches_equal(a: TupleBatch, b) -> bool:
    """Element-wise equality of a row batch and a (lazy) columnar batch."""
    if not np.array_equal(a.ids, b.ids) or not np.array_equal(a.labels, b.labels):
        return False
    if a.is_sparse != b.is_sparse:
        return False
    if a.is_sparse:
        return (
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.array_equal(a.values, b.values)
        )
    return np.array_equal(a.dense, b.dense)


def _load_state(state_path: Path, fingerprint: dict) -> dict | None:
    """The resume journal, iff it matches the current source file."""
    if not state_path.exists():
        return None
    try:
        with open(state_path) as f:
            state = json.load(f)
    except (OSError, ValueError):
        return None
    if state.get("fingerprint") != fingerprint:
        return None
    return state


def _heap_block_batches(
    heap, block_bytes: int
) -> tuple[TupleSchema, list[Callable[[], TupleBatch]]]:
    """Per-block batch thunks for a heap file, grouped like ``block_pages``."""
    n_blocks = heap.n_blocks(block_bytes) if heap.n_pages else 0

    def make(block_id: int) -> Callable[[], TupleBatch]:
        def read() -> TupleBatch:
            pages = [
                heap.read_page_batch(pid)
                for pid in heap.block_pages(block_id, block_bytes)
            ]
            ids = np.concatenate([p.ids for p in pages])
            labels = np.concatenate([p.labels for p in pages])
            if heap.schema.sparse:
                indptr = [np.asarray([0], dtype=np.int64)]
                nnz = 0
                for p in pages:
                    indptr.append(p.indptr[1:] + nnz)
                    nnz += int(p.indptr[-1])
                return TupleBatch(
                    ids=ids,
                    labels=labels,
                    n_features=heap.schema.n_features,
                    indptr=np.concatenate(indptr),
                    indices=np.concatenate([p.indices for p in pages]),
                    values=np.concatenate([p.values for p in pages]),
                )
            return TupleBatch(
                ids=ids,
                labels=labels,
                n_features=heap.schema.n_features,
                dense=np.concatenate([p.dense for p in pages]),
            )

        return read

    return heap.schema, [make(i) for i in range(n_blocks)]


def _finish_interrupted_finalize(
    path: Path, index_path: Path, state_path: Path
) -> MigrationReport:
    """Rewrite the v3 index for a data file whose finalize was interrupted."""
    with open(state_path) as f:
        state = json.load(f)
    docs = state["entries"]
    if int(state["blocks_done"]) != len(docs) or path.stat().st_size != int(
        state["tmp_bytes"]
    ):
        raise RuntimeError(
            f"{path}: columnar data with an inconsistent migration journal; "
            "cannot recover automatically"
        )
    entries: list[BlockIndexEntry] = []
    n_tuples = 0
    meta: dict | None = None
    with open(path, "rb") as f:
        for d in docs:
            f.seek(d["offset"])
            payload = f.read(d["length"])
            if zlib.crc32(payload) != d["crc32"]:
                raise RuntimeError(
                    f"{path}: block {d['block_id']} fails its journalled checksum"
                )
            n_rows, n_features, sparse, refs = read_columnar_header(payload)
            if meta is None:
                meta = {"n_features": n_features, "sparse": sparse}
            entries.append(
                BlockIndexEntry(
                    d["block_id"], d["offset"], d["length"], d["n_tuples"], d["crc32"], refs
                )
            )
            n_tuples += int(d["n_tuples"])
    assert meta is not None
    meta["n_tuples"] = n_tuples
    durable_write(
        index_path, json.dumps(_index_doc(meta, entries, "columnar")).encode()
    )
    try:
        os.unlink(state_path)
    except OSError:
        pass
    size = path.stat().st_size
    return MigrationReport(
        path=str(path),
        kind=str(state["fingerprint"].get("kind", "block")),
        n_blocks=len(entries),
        n_tuples=n_tuples,
        bytes_before=size,
        bytes_after=size,
        notes=["recovered interrupted finalize (index rebuilt from journal)"],
    )


def migrate_file(
    path: str | Path,
    verify: bool = True,
    block_bytes: int = 64 * 1024,
    _stop_after_blocks: int | None = None,
) -> MigrationReport:
    """Convert a row block file or heap file at ``path`` to columnar, in place.

    ``verify`` round-trips every converted block (decode + element-wise
    compare against the source batch) before accepting it.  ``block_bytes``
    only applies to heap sources, where it sets the page-run block grouping
    (the same grouping ``HeapFile.block_pages`` would use).

    ``_stop_after_blocks`` is a test-only crash hook: the migration raises
    ``KeyboardInterrupt`` after journalling that many blocks, leaving a
    valid resume state behind.
    """
    path = Path(path)
    index_path = Path(str(path) + _INDEX_SUFFIX)
    state_path = Path(str(path) + _STATE_SUFFIX)
    tmp_path = Path(str(path) + _TMP_SUFFIX)

    with open(path, "rb") as f:
        head = f.read(max(len(_HEAP_MAGIC), len(COLUMNAR_MAGIC)))
    source_bytes = path.stat().st_size

    if head.startswith(COLUMNAR_MAGIC) and state_path.exists():
        # Crashed between the data-file replace and the index write: the
        # data file is already columnar, the journal has the final entries.
        return _finish_interrupted_finalize(path, index_path, state_path)

    if head.startswith(_HEAP_MAGIC):
        kind = "heap"
        heap = load_heap(path)
        schema, thunks = _heap_block_batches(heap, block_bytes)
        n_tuples = heap.n_tuples
        meta = {
            "n_features": schema.n_features,
            "sparse": schema.sparse,
            "n_tuples": n_tuples,
        }
        reader = None
    elif index_path.exists():
        kind = "block"
        reader = BlockFileReader(path)
        if reader.layout == "columnar":
            reader.close()
            return MigrationReport(
                path=str(path),
                kind=kind,
                skipped=True,
                n_blocks=0,
                n_tuples=reader.n_tuples,
                bytes_before=source_bytes,
                bytes_after=source_bytes,
                notes=["already columnar"],
            )
        schema = reader.schema
        n_tuples = reader.n_tuples
        meta = {
            "n_features": schema.n_features,
            "sparse": schema.sparse,
            "n_tuples": n_tuples,
        }
        thunks = [
            (lambda i=i: reader.read_block_batch(i)) for i in range(reader.n_blocks)
        ]
    else:
        raise ValueError(
            f"{path}: not a migratable file (no heap magic, no {_INDEX_SUFFIX} sidecar)"
        )

    fingerprint = {"source_bytes": source_bytes, "n_blocks": len(thunks), "kind": kind}
    state = _load_state(state_path, fingerprint)
    entries: list[BlockIndexEntry] = []
    start_block = 0
    offset = 0
    if state is not None:
        docs = state["entries"]
        entries = [
            BlockIndexEntry(
                d["block_id"],
                d["offset"],
                d["length"],
                d["n_tuples"],
                d["crc32"],
                None,  # chunk refs are rebuilt from the tmp payloads below
            )
            for d in docs
        ]
        start_block = int(state["blocks_done"])
        offset = int(state["tmp_bytes"])

    report = MigrationReport(
        path=str(path),
        kind=kind,
        n_blocks=len(thunks),
        n_tuples=n_tuples,
        bytes_before=source_bytes,
        resumed_at_block=start_block,
    )

    mode = "r+b" if (state is not None and tmp_path.exists()) else "wb"
    if mode == "wb":
        entries = []
        start_block = 0
        offset = 0
        report.resumed_at_block = 0
    with open(tmp_path, mode) as out:
        if mode == "r+b":
            out.truncate(offset)  # drop any torn tail past the journalled offset
        out.seek(offset)
        for block_id in range(start_block, len(thunks)):
            batch = thunks[block_id]()
            payload = encode_block_columnar(batch, schema)
            if verify:
                decoded = decode_block_columnar(payload, schema)
                if not _batches_equal(batch, decoded):
                    raise RuntimeError(
                        f"{path}: block {block_id} failed round-trip verification"
                    )
                report.verified_blocks += 1
            out.write(payload)
            out.flush()
            os.fsync(out.fileno())
            entries.append(
                BlockIndexEntry(
                    block_id, offset, len(payload), len(batch), zlib.crc32(payload)
                )
            )
            offset += len(payload)
            durable_write(
                state_path,
                json.dumps(
                    {
                        "fingerprint": fingerprint,
                        "blocks_done": block_id + 1,
                        "tmp_bytes": offset,
                        "entries": [
                            {
                                "block_id": e.block_id,
                                "offset": e.offset,
                                "length": e.length,
                                "n_tuples": e.n_tuples,
                                "crc32": e.crc32,
                            }
                            for e in entries
                        ],
                    }
                ).encode(),
            )
            if (
                _stop_after_blocks is not None
                and block_id - start_block + 1 >= _stop_after_blocks
                and block_id + 1 < len(thunks)
            ):
                raise KeyboardInterrupt(
                    f"migration stopped after {_stop_after_blocks} blocks (test hook)"
                )

    if reader is not None:
        reader.close()

    # Rebuild the chunk directories from the tmp payloads (cheap header
    # parses) so the index mirrors each block's binary directory.
    full_entries: list[BlockIndexEntry] = []
    with open(tmp_path, "rb") as f:
        for e in entries:
            f.seek(e.offset)
            payload = f.read(e.length)
            refs = read_columnar_header(payload)[3]
            full_entries.append(
                BlockIndexEntry(
                    e.block_id, e.offset, e.length, e.n_tuples, e.crc32, refs
                )
            )

    # Finalize: data file first, then the index sidecar.  Both moves are
    # atomic; if we crash in between, re-running the migration rebuilds the
    # index from the (already columnar) data file via the journal.
    with open(tmp_path, "rb") as f:
        os.fsync(f.fileno())
    os.replace(tmp_path, path)
    durable_write(
        index_path, json.dumps(_index_doc(meta, full_entries, "columnar")).encode()
    )
    try:
        os.unlink(state_path)
    except OSError:
        pass

    report.bytes_after = path.stat().st_size
    report.notes.append(
        f"{report.bytes_per_tuple_before:.1f} -> {report.bytes_per_tuple_after:.1f} bytes/tuple"
    )
    return report
