"""Bounded retry-with-backoff for the storage read path.

Real deployments of an in-database trainer see *transient* storage faults —
a read that fails once and succeeds when reissued, or a torn page whose
checksum does not match the bytes read (Section 7's storage media are
exactly where such faults live).  This module defines the error taxonomy the
storage layer uses to distinguish retryable from fatal failures, plus the
:class:`RetryPolicy` that every verified read path
(:class:`~repro.storage.blockfile.BlockFileReader`,
:class:`~repro.storage.bufferpool.BufferPool`) runs under:

* :class:`RetryableIOError` — marker base class: reissuing the read may
  succeed.  :class:`TransientReadError` (the device errored) and
  :class:`ChecksumError` (the bytes read do not match the stored checksum —
  a torn or corrupt page) are its two concrete forms.
* :class:`ReadExhaustedError` — the bounded retry budget is spent; the fault
  is treated as unrecoverable and surfaces to the caller (the db engine
  translates it into a typed ``StorageError`` with partial progress).

Retries are *invisible* above the storage layer: a read either returns
verified bytes or raises :class:`ReadExhaustedError`.  Every attempt, retry,
and exhaustion is recorded into an optional stats sink (duck-typed as
:class:`~repro.obs.StorageMetrics`), so chaos runs can assert that
faults really happened even though the model output is unchanged.
"""

from __future__ import annotations

import time
from typing import Any, Callable, TypeVar

from .. import obs

__all__ = [
    "RetryableIOError",
    "TransientReadError",
    "ChecksumError",
    "ReadExhaustedError",
    "RetryPolicy",
]

T = TypeVar("T")


class RetryableIOError(IOError):
    """A storage read failure that may succeed if the read is reissued."""


class TransientReadError(RetryableIOError):
    """The device/file reported an error for this read attempt."""


class ChecksumError(RetryableIOError):
    """The bytes read do not match their stored checksum (torn/corrupt page)."""


class ReadExhaustedError(IOError):
    """A read kept failing after the full retry budget.

    Carries the attempt count and the last underlying failure so the engine
    layer can report *what* gave up, not just that something did.
    """

    def __init__(self, describe: str, attempts: int, last_error: Exception):
        super().__init__(
            f"{describe}: still failing after {attempts} attempt(s): {last_error}"
        )
        self.describe = describe
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """Bounded retry with capped, jittered exponential backoff.

    ``max_attempts`` counts the first try: ``RetryPolicy(3)`` issues at most
    three reads.  ``backoff_s`` seeds the backoff envelope before each
    *retry*; the envelope grows by ``backoff_factor`` and is capped at
    ``max_backoff_s``.  The default ``backoff_s`` of zero keeps tests
    instant and deterministic while production callers opt into real
    backoff.

    With ``jitter`` (the default) each sleep is drawn uniformly from
    ``[0, envelope]`` ("full jitter") so concurrent sessions retrying the
    same faulty device spread out instead of synchronising into a
    thundering herd of simultaneous re-reads.  The draws come from a
    :mod:`repro.core.seeding` stream keyed by ``(seed,
    RETRY_BACKOFF_STREAM)``: chaos runs stay bit-reproducible for a given
    seed, and callers de-synchronise by giving each session its own seed
    (the serve daemon uses the session ordinal).  ``jitter=False`` restores
    the deterministic pure-exponential schedule.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        backoff_s: float = 0.0,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 30.0,
        jitter: bool = True,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive")
        self.max_attempts = int(max_attempts)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = bool(jitter)
        self.seed = int(seed)
        self._sleep = sleep
        self._rng = None  # lazily derived; zero-backoff policies never draw

    def _next_delay(self, envelope: float) -> float:
        """One backoff sleep: the capped envelope, jittered when enabled."""
        envelope = min(envelope, self.max_backoff_s)
        if not self.jitter:
            return envelope
        if self._rng is None:
            # Imported lazily: repro.core pulls in the storage package, so a
            # module-level import here would be circular.
            from ..core.seeding import RETRY_BACKOFF_STREAM, derive_rng

            self._rng = derive_rng(self.seed, RETRY_BACKOFF_STREAM)
        return float(self._rng.uniform(0.0, envelope))

    def run(
        self,
        attempt_fn: Callable[[int], T],
        stats: Any | None = None,
        describe: str = "storage read",
        on_retry: Callable[[Exception], None] | None = None,
    ) -> T:
        """Call ``attempt_fn(attempt)`` (1-based) until it returns.

        Only :class:`RetryableIOError` triggers a retry — anything else
        (including an injected crash) propagates immediately.  ``on_retry``
        runs after each failed attempt, before the backoff sleep; callers
        use it to drop state the failed read may have poisoned (e.g. the
        buffer pool invalidating a cached page).
        """
        delay = self.backoff_s
        last: Exception | None = None
        for attempt in range(1, self.max_attempts + 1):
            if stats is not None:
                stats.record_attempt()
            try:
                result = attempt_fn(attempt)
            except RetryableIOError as exc:
                last = exc
                obs.inc(f"storage.retry.{type(exc).__name__}")
                if stats is not None:
                    stats.record_fault(exc)
                if on_retry is not None:
                    on_retry(exc)
                if attempt < self.max_attempts:
                    obs.inc("storage.retry.retries")
                    if stats is not None:
                        stats.record_retry()
                    if delay > 0:
                        self._sleep(self._next_delay(delay))
                        delay = min(
                            delay * self.backoff_factor, self.max_backoff_s
                        )
                continue
            if stats is not None:
                stats.record_ok()
            return result
        obs.inc("storage.retry.exhausted")
        if stats is not None:
            stats.record_exhausted()
        assert last is not None
        raise ReadExhaustedError(describe, self.max_attempts, last)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"backoff_s={self.backoff_s}, backoff_factor={self.backoff_factor}, "
            f"max_backoff_s={self.max_backoff_s}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )
