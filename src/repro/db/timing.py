"""Simulated-time accounting for the mini in-DB ML engine.

Wall-clock on the paper's testbed is dominated by two quantities that this
environment cannot measure but *can* model precisely:

* storage I/O — charged through :mod:`repro.storage.iomodel` device models;
* per-tuple SGD compute — charged through a per-system
  :class:`ComputeProfile` (systems differ enormously here: MADlib computes
  extra per-tuple statistics, PyTorch pays a Python↔C++ boundary crossing
  per tuple, our engine does a dot product and an axpy).

The :class:`RuntimeContext` is threaded through the Volcano operators.  The
TupleShuffle operator marks *buffer fill* boundaries; I/O accumulated while
producing a fill and compute spent consuming it are paired up so the epoch
wall-clock can honour double buffering (fills overlap consumption —
Section 6.3) or single buffering (they serialise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.buffer import pipelined_time, serial_time
from ..core.stats import LoaderStats
from ..storage.iomodel import MEMORY, DeviceModel

__all__ = ["ComputeProfile", "RuntimeContext", "overlap_report"]


@dataclass(frozen=True)
class ComputeProfile:
    """Per-tuple CPU cost of one SGD update in a given system.

    ``per_tuple_s`` is the fixed cost of touching a tuple (function-call,
    slot extraction, UDA transition); ``per_value_s`` scales with the number
    of feature values processed (the dot product / axpy).
    ``decompress_per_byte_s`` applies only to TOAST-compressed tables.
    """

    name: str
    per_tuple_s: float
    per_value_s: float
    decompress_per_byte_s: float = 0.0

    def tuple_compute_s(self, n_values: int, compressed_bytes: float = 0.0) -> float:
        return (
            self.per_tuple_s
            + n_values * self.per_value_s
            + compressed_bytes * self.decompress_per_byte_s
        )


@dataclass
class RuntimeContext:
    """Mutable execution state shared by the operators of one query."""

    device: DeviceModel
    compute: ComputeProfile
    double_buffer: bool = True
    values_per_tuple: float = 1.0
    compressed_bytes_per_tuple: float = 0.0

    # Per-epoch pairing of buffer fills (I/O) and their consumption (CPU).
    _fill_io: list[float] = field(default_factory=list)
    _fill_compute: list[float] = field(default_factory=list)
    _pending_io_s: float = 0.0

    # Cumulative counters (Appendix B resource accounting).
    total_io_s: float = 0.0
    total_compute_s: float = 0.0
    tuples_processed: int = 0

    # ------------------------------------------------------------------
    def charge_device_read(self, n_bytes: float, random: bool, count: int = 1) -> None:
        """I/O for reading ``count`` chunks of ``n_bytes`` from the device."""
        if random:
            t = self.device.random_time(n_bytes, count)
        else:
            t = self.device.sequential_time(n_bytes * count)
        self._pending_io_s += t
        self.total_io_s += t

    def charge_memory_read(self, n_bytes: float) -> None:
        """I/O for a buffer-pool hit (memory-speed transfer)."""
        t = MEMORY.sequential_time(n_bytes)
        self._pending_io_s += t
        self.total_io_s += t

    def end_fill(self, n_tuples: int) -> None:
        """Close one buffer fill: pair its I/O with its SGD compute."""
        compute = n_tuples * self.compute.tuple_compute_s(
            self.values_per_tuple, self.compressed_bytes_per_tuple
        )
        self._fill_io.append(self._pending_io_s)
        self._fill_compute.append(compute)
        self._pending_io_s = 0.0
        self.total_compute_s += compute
        self.tuples_processed += n_tuples

    # ------------------------------------------------------------------
    def epoch_wall_time(self) -> float:
        """Combine this epoch's fills into wall-clock and reset them."""
        if self._pending_io_s:
            # Trailing I/O with no consumer (e.g. a scan that found no
            # tuples) still costs time.
            self._fill_io.append(self._pending_io_s)
            self._fill_compute.append(0.0)
            self._pending_io_s = 0.0
        if self.double_buffer:
            wall = pipelined_time(self._fill_io, self._fill_compute)
        else:
            wall = serial_time(self._fill_io, self._fill_compute)
        self._fill_io.clear()
        self._fill_compute.clear()
        return wall


def overlap_report(stats: "LoaderStats | dict", digits: int = 6) -> dict:
    """Flatten a loader's *measured* overlap counters into one report row.

    The analytic model above predicts double-buffered wall-clock from
    per-fill I/O and compute; the real threaded loaders measure the same
    phenomenon directly (producer stall = loading hidden behind compute,
    consumer wait = compute starved by loading).  This helper reduces a
    :class:`~repro.core.stats.LoaderStats` (or its :meth:`as_dict`
    snapshot) to the row shape the benchmarks and CLI print, so the
    double-buffering figures can show measured overlap next to the analytic
    ``pipelined_time``.
    """
    d = stats.as_dict() if isinstance(stats, LoaderStats) else dict(stats)
    return {
        "loader": d.get("name", "loader"),
        "items": d.get("items_consumed", 0),
        "buffers_filled": d.get("buffers_filled", 0),
        "buffers_drained": d.get("buffers_drained", 0),
        "max_queue_depth": d.get("max_queue_depth", 0),
        "producer_stall_s": round(float(d.get("producer_stall_s", 0.0)), digits),
        "consumer_wait_s": round(float(d.get("consumer_wait_s", 0.0)), digits),
        "overlap_fraction": round(float(d.get("overlap_fraction", 1.0)), 4),
        "threads_started": d.get("threads_started", 0),
        "live_threads": d.get("live_threads", 0),
    }
