"""Simulated-time accounting for the mini in-DB ML engine.

Wall-clock on the paper's testbed is dominated by two quantities that this
environment cannot measure but *can* model precisely:

* storage I/O — charged through :mod:`repro.storage.iomodel` device models;
* per-tuple SGD compute — charged through a per-system
  :class:`ComputeProfile` (systems differ enormously here: MADlib computes
  extra per-tuple statistics, PyTorch pays a Python↔C++ boundary crossing
  per tuple, our engine does a dot product and an axpy).

The :class:`RuntimeContext` is threaded through the Volcano operators.  The
TupleShuffle operator marks *buffer fill* boundaries; I/O accumulated while
producing a fill and compute spent consuming it are paired up so the epoch
wall-clock can honour double buffering (fills overlap consumption —
Section 6.3) or single buffering (they serialise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.buffer import pipelined_time, serial_time
from ..obs import LoaderMetrics
from ..storage.iomodel import MEMORY, DeviceModel

__all__ = ["ComputeProfile", "RuntimeContext", "overlap_report", "overlap_crosscheck"]


@dataclass(frozen=True)
class ComputeProfile:
    """Per-tuple CPU cost of one SGD update in a given system.

    ``per_tuple_s`` is the fixed cost of touching a tuple (function-call,
    slot extraction, UDA transition); ``per_value_s`` scales with the number
    of feature values processed (the dot product / axpy).
    ``decompress_per_byte_s`` applies only to TOAST-compressed tables.
    """

    name: str
    per_tuple_s: float
    per_value_s: float
    decompress_per_byte_s: float = 0.0

    def tuple_compute_s(self, n_values: int, compressed_bytes: float = 0.0) -> float:
        return (
            self.per_tuple_s
            + n_values * self.per_value_s
            + compressed_bytes * self.decompress_per_byte_s
        )


@dataclass
class RuntimeContext:
    """Mutable execution state shared by the operators of one query."""

    device: DeviceModel
    compute: ComputeProfile
    double_buffer: bool = True
    values_per_tuple: float = 1.0
    compressed_bytes_per_tuple: float = 0.0

    # Per-epoch pairing of buffer fills (I/O) and their consumption (CPU).
    _fill_io: list[float] = field(default_factory=list)
    _fill_compute: list[float] = field(default_factory=list)
    _pending_io_s: float = 0.0

    # Cumulative counters (Appendix B resource accounting).
    total_io_s: float = 0.0
    total_compute_s: float = 0.0
    tuples_processed: int = 0

    # ------------------------------------------------------------------
    def charge_device_read(self, n_bytes: float, random: bool, count: int = 1) -> None:
        """I/O for reading ``count`` chunks of ``n_bytes`` from the device."""
        if random:
            t = self.device.random_time(n_bytes, count)
        else:
            t = self.device.sequential_time(n_bytes * count)
        self._pending_io_s += t
        self.total_io_s += t

    def charge_memory_read(self, n_bytes: float) -> None:
        """I/O for a buffer-pool hit (memory-speed transfer)."""
        t = MEMORY.sequential_time(n_bytes)
        self._pending_io_s += t
        self.total_io_s += t

    def end_fill(self, n_tuples: int) -> None:
        """Close one buffer fill: pair its I/O with its SGD compute."""
        compute = n_tuples * self.compute.tuple_compute_s(
            self.values_per_tuple, self.compressed_bytes_per_tuple
        )
        self._fill_io.append(self._pending_io_s)
        self._fill_compute.append(compute)
        self._pending_io_s = 0.0
        self.total_compute_s += compute
        self.tuples_processed += n_tuples

    # ------------------------------------------------------------------
    def epoch_wall_time(self) -> float:
        """Combine this epoch's fills into wall-clock and reset them."""
        if self._pending_io_s:
            # Trailing I/O with no consumer (e.g. a scan that found no
            # tuples) still costs time.
            self._fill_io.append(self._pending_io_s)
            self._fill_compute.append(0.0)
            self._pending_io_s = 0.0
        if self.double_buffer:
            wall = pipelined_time(self._fill_io, self._fill_compute)
        else:
            wall = serial_time(self._fill_io, self._fill_compute)
        self._fill_io.clear()
        self._fill_compute.clear()
        return wall


def overlap_report(stats: "LoaderMetrics | dict", digits: int = 6) -> dict:
    """Flatten a loader's *measured* overlap counters into one report row.

    The analytic model above predicts double-buffered wall-clock from
    per-fill I/O and compute; the real threaded loaders measure the same
    phenomenon directly (producer stall = loading hidden behind compute,
    consumer wait = compute starved by loading).  This helper reduces a
    :class:`~repro.obs.LoaderMetrics` (or its :meth:`as_dict`
    snapshot) to the row shape the benchmarks and CLI print, so the
    double-buffering figures can show measured overlap next to the analytic
    ``pipelined_time``.
    """
    d = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    return {
        "loader": d.get("name", "loader"),
        "items": d.get("items_consumed", 0),
        "buffers_filled": d.get("buffers_filled", 0),
        "buffers_drained": d.get("buffers_drained", 0),
        "max_queue_depth": d.get("max_queue_depth", 0),
        "producer_stall_s": round(float(d.get("producer_stall_s", 0.0)), digits),
        "consumer_wait_s": round(float(d.get("consumer_wait_s", 0.0)), digits),
        "overlap_fraction": round(float(d.get("overlap_fraction", 1.0)), 4),
        "threads_started": d.get("threads_started", 0),
        "live_threads": d.get("live_threads", 0),
    }


def overlap_crosscheck(
    stats: "LoaderMetrics | dict",
    spans,
    wall_s: float,
    tolerance_s: float | None = None,
) -> dict:
    """Audit the counter-measured overlap against independent span data.

    Two routes to the same physical quantity — the seconds during which
    loading genuinely overlapped compute over a consumer-side wall of
    ``wall_s``:

    * **counters** (``LoaderMetrics``): the consumer was computing except
      while it waited, and the producer was loading except while it
      stalled, so ``overlap = wall − stall − wait`` (clamped at 0);
    * **spans** (:mod:`repro.obs`): producer busy is the measured
      ``loader.producer`` lifetime minus its ``loader.producer_stall``
      spans; consumer busy is the wall minus the ``loader.consumer_wait``
      spans; the inclusion–exclusion identity gives
      ``overlap = producer_busy + consumer_busy − wall``.

    The two must agree within ``tolerance_s`` (defaults to
    ``max(0.05, 10%·wall)`` — span timestamps and counter sums are taken
    at slightly different instants).  This cross-check is what exposed the
    phantom-stall accounting bug in ``ProducerChannel.put`` (non-blocking
    puts booking microseconds of lock traffic as stall); it stays wired
    into the fig05/fig13 benches and ``tests/test_obs.py`` as a
    regression guard.

    ``spans`` accepts :class:`~repro.obs.Span` objects or exported span
    events (dicts); only the ``loader.*`` spans matching this loader's name
    are consulted.  Returns a verdict row — callers assert ``row["ok"]``.
    """
    d = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    name = d.get("name", "loader")
    wall_s = float(wall_s)

    def _fields(span) -> tuple[str, float, str]:
        if isinstance(span, dict):
            return (
                span.get("name", ""),
                float(span.get("duration_s", 0.0)),
                str(span.get("attrs", {}).get("loader", "")),
            )
        return span.name, span.duration_s, str(span.attrs.get("loader", ""))

    producer_life = stall_span_s = wait_span_s = 0.0
    for span in spans:
        span_name, duration, loader = _fields(span)
        if loader != name:
            continue
        if span_name == "loader.producer":
            producer_life += duration
        elif span_name == "loader.producer_stall":
            stall_span_s += duration
        elif span_name == "loader.consumer_wait":
            wait_span_s += duration

    producer_busy = max(0.0, producer_life - stall_span_s)
    consumer_busy = max(0.0, wall_s - wait_span_s)
    span_overlap = producer_busy + consumer_busy - wall_s
    counter_overlap = max(
        0.0,
        wall_s - float(d.get("producer_stall_s", 0.0)) - float(d.get("consumer_wait_s", 0.0)),
    )
    if tolerance_s is None:
        tolerance_s = max(0.05, 0.10 * wall_s)
    gap = abs(span_overlap - counter_overlap)
    return {
        "loader": name,
        "wall_s": wall_s,
        "producer_busy_s": producer_busy,
        "consumer_busy_s": consumer_busy,
        "span_overlap_s": span_overlap,
        "counter_overlap_s": counter_overlap,
        "gap_s": gap,
        "tolerance_s": tolerance_s,
        "ok": gap <= tolerance_s,
    }
