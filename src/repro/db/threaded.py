"""A *really* threaded double-buffered TupleShuffle operator.

The analytic engine models double buffering's wall-clock; this operator
implements the mechanism itself, exactly as Section 6.3 describes: a write
thread pulls tuples from the child operator into one buffer and shuffles
it, while the read side drains the other buffer into SGD; the buffers swap
when one is full and the other consumed.

It is a drop-in replacement for
:class:`~repro.db.operators.TupleShuffleOperator` (same Volcano interface,
same per-epoch tuple order given the same seed — verified by test), so the
engine's statistical behaviour is identical; what changes is that filling
genuinely overlaps consumption on a second OS thread.

The writer thread rides on :class:`~repro.core.lifecycle.ManagedProducer`:
``rescan()`` and ``close()`` cancel, drain, and join it deterministically
(asserting it died — a zombie raises rather than leaking), the error-path
terminal put is cancellable, and ``open()`` after ``close()`` restarts from
epoch 0 so a reopened operator replays the first epoch's order instead of
silently resuming mid-sequence.  Fill/drain counts and stall/wait times are
recorded in a :class:`~repro.obs.LoaderMetrics` so benchmarks can
report the *measured* loading/compute overlap next to the analytic
:func:`~repro.core.buffer.pipelined_time` model.
"""

from __future__ import annotations

from .. import obs
from ..core.buffer import ShuffleBuffer
from ..core.lifecycle import END, Failure, ManagedProducer, ProducerChannel
from ..core.seeding import TUPLE_SHUFFLE_STREAM, stream_rng
from ..obs import LoaderMetrics
from ..storage.codec import TrainingTuple
from .operators import PhysicalOperator

__all__ = ["ThreadedTupleShuffleOperator"]


class ThreadedTupleShuffleOperator(PhysicalOperator):
    """Double-buffered tuple shuffle with a real, managed producer thread.

    The producer fills and shuffles buffers of ``buffer_tuples`` tuples and
    hands each completed (shuffled) buffer over a depth-1 queue — so at any
    moment one buffer is being consumed while the next is being produced,
    the two-buffer scheme of Section 6.3.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        buffer_tuples: int,
        seed: int = 0,
        stats: LoaderMetrics | None = None,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        self.child = child
        self.buffer_tuples = int(buffer_tuples)
        self.seed = int(seed)
        self.stats = stats if stats is not None else LoaderMetrics("tuple-shuffle")
        self._epoch = 0
        self._producer: ManagedProducer | None = None
        self._drained: list[TrainingTuple] = []
        self._slot = 0
        self._finished = False

    # ------------------------------------------------------------------
    def _produce(self, channel: ProducerChannel, epoch: int) -> None:
        rng = stream_rng(self.seed, epoch, TUPLE_SHUFFLE_STREAM)
        while not channel.cancelled:
            buffer: ShuffleBuffer[TrainingTuple] = ShuffleBuffer(self.buffer_tuples, rng)
            with obs.span("db.fill", loader=self.stats.name, epoch=epoch) as sp:
                while not buffer.full:
                    if channel.cancelled:
                        return
                    record = self.child.next()
                    if record is None:
                        break
                    buffer.add(record)
                sp.set(n_tuples=len(buffer))
            if len(buffer) == 0:
                return
            self.stats.record_buffer_filled(len(buffer))
            batch = buffer.shuffle_and_drain()
            if not channel.put(batch):
                return
            if len(batch) < self.buffer_tuples:
                return  # child exhausted mid-fill

    def _start_producer(self) -> None:
        self._drained = []
        self._slot = 0
        self._finished = False
        epoch = self._epoch

        self._producer = ManagedProducer(
            lambda channel: self._produce(channel, epoch),
            depth=1,  # one buffer in flight + one consumed
            name="tuple-shuffle-writer",
            stats=self.stats,
        ).start()

    def _stop_producer(self) -> None:
        """Cancel + join the writer; ``ManagedProducer.stop`` asserts death."""
        if self._producer is not None:
            self._producer.stop()
        self._producer = None

    # ------------------------------------------------------------------
    def open(self) -> None:
        self.child.open()
        # A reopened operator replays the first epoch, never a later one.
        self._epoch = 0
        self._start_producer()

    def next(self) -> TrainingTuple | None:
        if self._finished:
            return None
        while self._slot >= len(self._drained):
            batch = self._producer.get()
            if batch is END or isinstance(batch, Failure):
                self._finished = True
                self._stop_producer()
                if isinstance(batch, Failure):
                    raise batch.error
                return None
            self.stats.record_buffer_drained(len(batch))
            self._drained = batch
            self._slot = 0
        record = self._drained[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self._stop_producer()
        self._epoch += 1
        self.child.rescan()
        self._start_producer()

    def close(self) -> None:
        self._stop_producer()
        self.child.close()
