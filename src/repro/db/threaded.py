"""A *really* threaded double-buffered TupleShuffle operator.

The analytic engine models double buffering's wall-clock; this operator
implements the mechanism itself, exactly as Section 6.3 describes: a write
thread pulls tuples from the child operator into one buffer and shuffles
it, while the read side drains the other buffer into SGD; the buffers swap
when one is full and the other consumed.

It is a drop-in replacement for
:class:`~repro.db.operators.TupleShuffleOperator` (same Volcano interface,
same per-epoch tuple order given the same seed — verified by test), so the
engine's statistical behaviour is identical; what changes is that filling
genuinely overlaps consumption on a second OS thread.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from ..core.buffer import ShuffleBuffer
from ..storage.codec import TrainingTuple
from .operators import PhysicalOperator

__all__ = ["ThreadedTupleShuffleOperator"]

_END = object()


class ThreadedTupleShuffleOperator(PhysicalOperator):
    """Double-buffered tuple shuffle with a real producer thread.

    The producer fills and shuffles buffers of ``buffer_tuples`` tuples and
    hands each completed (shuffled) buffer over a depth-1 queue — so at any
    moment one buffer is being consumed while the next is being produced,
    the two-buffer scheme of Section 6.3.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        buffer_tuples: int,
        seed: int = 0,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        self.child = child
        self.buffer_tuples = int(buffer_tuples)
        self.seed = int(seed)
        self._epoch = 0
        self._queue: queue.Queue | None = None
        self._producer: threading.Thread | None = None
        self._stop = threading.Event()
        self._error: BaseException | None = None
        self._drained: list[TrainingTuple] = []
        self._slot = 0
        self._finished = False

    # ------------------------------------------------------------------
    def _produce(self, epoch: int) -> None:
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, epoch, 7]))
        try:
            while not self._stop.is_set():
                buffer: ShuffleBuffer[TrainingTuple] = ShuffleBuffer(self.buffer_tuples, rng)
                while not buffer.full:
                    record = self.child.next()
                    if record is None:
                        break
                    buffer.add(record)
                if len(buffer) == 0:
                    break
                batch = buffer.shuffle_and_drain()
                while not self._stop.is_set():
                    try:
                        self._queue.put(batch, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if len(batch) < self.buffer_tuples:
                    break  # child exhausted mid-fill
            if not self._stop.is_set():
                self._queue.put(_END)
        except BaseException as error:
            self._error = error
            self._queue.put(_END)

    def _start_producer(self) -> None:
        self._queue = queue.Queue(maxsize=1)  # one buffer in flight + one consumed
        self._stop.clear()
        self._error = None
        self._drained = []
        self._slot = 0
        self._finished = False
        self._producer = threading.Thread(
            target=self._produce, args=(self._epoch,), daemon=True,
            name="tuple-shuffle-writer",
        )
        self._producer.start()

    def _stop_producer(self) -> None:
        if self._producer is not None and self._producer.is_alive():
            self._stop.set()
            # Unblock a producer waiting on a full queue.
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            self._producer.join(timeout=5.0)
        self._producer = None

    # ------------------------------------------------------------------
    def open(self) -> None:
        self.child.open()
        self._start_producer()

    def next(self) -> TrainingTuple | None:
        if self._finished:
            return None
        while self._slot >= len(self._drained):
            batch = self._queue.get()
            if batch is _END:
                self._finished = True
                if self._error is not None:
                    error, self._error = self._error, None
                    raise error
                return None
            self._drained = batch
            self._slot = 0
        record = self._drained[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self._stop_producer()
        self._epoch += 1
        self.child.rescan()
        self._start_producer()

    def close(self) -> None:
        self._stop_producer()
        self.child.close()
