"""Cost/statistics-based access-path selection (``strategy = auto``).

The paper's Table 1 implies a decision procedure: if the stored order is
already (close to) random, No Shuffle is unbeatable — sequential I/O, no
buffer; if the data is clustered, CorgiPile is the only strategy that is
simultaneously fast and convergent.  This module turns that into a planner
step the engine can run at query time:

1. probe the table's clustering with the theory's ``h_D`` factor, computed
   from a cheap surrogate model (logistic/linear probe on the stored
   labels) at the query's block granularity;
2. choose No Shuffle when ``h_D`` is near 1 (blocks already look like the
   full distribution), CorgiPile otherwise;
3. report the decision with the measured statistic, EXPLAIN-style.

The probe touches only the logical arrays (no simulated I/O is charged) —
analogous to a planner consulting table statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import BlockLayout, Dataset
from ..ml.models.linear import LinearRegression, LogisticRegression
from ..ml.models.softmax import SoftmaxRegression
from ..theory.hd import hd_factor
from .catalog import TableInfo

__all__ = ["AccessPathChoice", "choose_access_path", "HD_NO_SHUFFLE_THRESHOLD"]

# Blocks whose h_D sits below this look statistically like a full shuffle;
# beyond it, the clustered-order convergence penalty of Figures 1/2 kicks in.
HD_NO_SHUFFLE_THRESHOLD = 1.5


@dataclass(frozen=True)
class AccessPathChoice:
    """The planner's decision and its evidence."""

    strategy: str
    hd: float
    threshold: float
    n_blocks: int

    def describe(self) -> str:
        relation = "<" if self.hd < self.threshold else ">="
        return (
            f"strategy={self.strategy} (h_D={self.hd:.2f} {relation} "
            f"{self.threshold} over {self.n_blocks} blocks)"
        )


def _probe_model(dataset: Dataset):
    """A cheap surrogate whose gradients expose label/feature clustering.

    A freshly initialised GLM probe is enough: at the zero point the
    per-example gradients are label/feature-driven, which is exactly what
    block clustering skews.
    """
    if dataset.task == "binary":
        return LogisticRegression(dataset.n_features)
    if dataset.task == "multiclass":
        return SoftmaxRegression(dataset.n_features, dataset.n_classes)
    return LinearRegression(dataset.n_features)


def choose_access_path(
    table: TableInfo,
    block_bytes: int,
    threshold: float = HD_NO_SHUFFLE_THRESHOLD,
    max_probe_tuples: int = 20_000,
) -> AccessPathChoice:
    """Pick ``no_shuffle`` or ``corgipile`` from the table's measured h_D.

    The block granularity matches the query's ``block_size`` so the
    statistic reflects what CorgiPile's buffer would actually see.  Tables
    larger than ``max_probe_tuples`` are probed on evenly spaced
    *contiguous* chunks: each chunk preserves the within-block structure
    (a random tuple sample would destroy the clustering being measured),
    while spacing the chunks across the table captures its global label
    drift — a prefix alone would be single-class on clustered tables and
    look deceptively uniform.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1 (h_D >= 1 by definition)")
    dataset = table.dataset
    tuples_per_block = max(1, round(block_bytes / max(1.0, table.tuple_bytes)))
    probe = dataset
    if dataset.n_tuples > max_probe_tuples:
        chunk = max(tuples_per_block, max_probe_tuples // 20)
        n_chunks = max(2, max_probe_tuples // chunk)
        starts = np.linspace(0, dataset.n_tuples - chunk, n_chunks).astype(np.int64)
        indices = np.concatenate([np.arange(s, s + chunk) for s in starts])
        probe = dataset.subset(indices, suffix="probe")
    n_tuples = probe.n_tuples
    tuples_per_block = min(tuples_per_block, max(1, n_tuples // 2))
    layout = BlockLayout(n_tuples, tuples_per_block)
    hd = hd_factor(_probe_model(probe), probe, layout)
    strategy = "no_shuffle" if hd < threshold else "corgipile"
    return AccessPathChoice(
        strategy=strategy, hd=hd, threshold=threshold, n_blocks=layout.n_blocks
    )
