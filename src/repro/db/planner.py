"""Cost/statistics-based access-path selection (``strategy = auto``).

The paper's Table 1 implies a decision procedure: if the stored order is
already (close to) random, No Shuffle is unbeatable — sequential I/O, no
buffer; if the data is clustered, a shuffling access path is needed, and
*which* one depends on the device (an HDD pays dearly for random blocks, a
byte-addressable NVM barely notices random tuples) and the buffer budget.

Two planner entry points:

* :func:`choose_access_path` — the original two-way threshold rule
  (``no_shuffle`` vs ``corgipile`` on measured ``h_D``), kept as the
  simple, device-free statistic probe;
* :func:`plan_train` — the full cost-based advisor
  (:mod:`repro.db.advisor`): charges every registered strategy through the
  device's I/O curves plus a convergence penalty and returns the complete
  :class:`~repro.db.advisor.AdvisorDecision` with its evidence table.

Both probe the table's clustering with the theory's ``h_D`` factor via
:func:`repro.db.advisor.estimate_hd` — a cheap surrogate-model sample that
touches only the logical arrays (no simulated I/O is charged), analogous
to a planner consulting table statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from .advisor import AdvisorDecision, advise_strategy, estimate_hd
from .catalog import TableInfo

__all__ = [
    "AccessPathChoice",
    "choose_access_path",
    "plan_train",
    "HD_NO_SHUFFLE_THRESHOLD",
]

# Blocks whose h_D sits below this look statistically like a full shuffle;
# beyond it, the clustered-order convergence penalty of Figures 1/2 kicks in.
HD_NO_SHUFFLE_THRESHOLD = 1.5


@dataclass(frozen=True)
class AccessPathChoice:
    """The planner's decision and its evidence."""

    strategy: str
    hd: float
    threshold: float
    n_blocks: int

    def describe(self) -> str:
        relation = "<" if self.hd < self.threshold else ">="
        return (
            f"strategy={self.strategy} (h_D={self.hd:.2f} {relation} "
            f"{self.threshold} over {self.n_blocks} blocks)"
        )


def choose_access_path(
    table: TableInfo,
    block_bytes: int,
    threshold: float = HD_NO_SHUFFLE_THRESHOLD,
    max_probe_tuples: int = 20_000,
) -> AccessPathChoice:
    """Pick ``no_shuffle`` or ``corgipile`` from the table's measured h_D.

    The block granularity matches the query's ``block_size`` so the
    statistic reflects what CorgiPile's buffer would actually see.  See
    :func:`repro.db.advisor.estimate_hd` for how large tables are sampled.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1 (h_D >= 1 by definition)")
    estimate = estimate_hd(table, block_bytes, max_probe_tuples=max_probe_tuples)
    strategy = "no_shuffle" if estimate.hd < threshold else "corgipile"
    return AccessPathChoice(
        strategy=strategy,
        hd=estimate.hd,
        threshold=threshold,
        n_blocks=estimate.n_blocks,
    )


def plan_train(
    table: TableInfo,
    query,
    device,
    compute=None,
    max_probe_tuples: int = 20_000,
    history=None,
) -> AdvisorDecision:
    """Resolve ``strategy = auto`` for one TRAIN query via the cost advisor.

    ``query`` is a parsed :class:`~repro.db.query.TrainQuery`; its
    ``block_size``, ``buffer_fraction`` and ``max_epoch_num`` parameterise
    the cost model, and a ``WITH device = 'nvm'`` override re-targets the
    decision at plan time — the same statement plans differently on HDD
    and NVM.  ``history`` forwards earlier per-epoch wall observations for
    this table so the advisor can fit κ (see
    :func:`repro.db.advisor.learn_kappa`).
    """
    from ..storage.iomodel import device_by_name

    override = getattr(query, "device", None) or query.extra.get("device")
    if override:
        device = device_by_name(str(override))
    return advise_strategy(
        table,
        device,
        block_bytes=query.block_size,
        buffer_fraction=query.buffer_fraction,
        epochs=query.max_epoch_num,
        compute=compute,
        max_probe_tuples=max_probe_tuples,
        history=history,
    )
