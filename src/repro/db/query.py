"""The SQL-ish query interface (Section 6):

    SELECT * FROM table TRAIN BY model WITH param = value, ...
    SELECT * FROM table PREDICT BY model_id
    SELECT * FROM table [LIMIT n]

Supported model names: ``lr`` (logistic regression), ``svm``, ``linreg``
(linear regression), ``softmax``.  Parameters mirror the paper's examples
(``learning_rate = 0.1``, ``max_epoch_num = 20``, ``block_size = 10MB``)
plus the knobs the experiments sweep (``buffer_fraction``, ``batch_size``,
``strategy``, ``decay``, ``seed``, ``double_buffer``) and the Section 5
parallelism knobs (``workers``, ``aggregation``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..data.sparse import SparseMatrix, SparseRow
from .errors import ParseError

__all__ = [
    "Comparison",
    "Predicate",
    "TrainQuery",
    "PredictQuery",
    "EvaluateQuery",
    "ExplainQuery",
    "SelectQuery",
    "InsertQuery",
    "UpdateQuery",
    "DeleteQuery",
    "CreateIndexQuery",
    "DropIndexQuery",
    "column_value",
    "parse_predicate",
    "parse_query",
    "parse_size",
]

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)\s*(B|KB|MB|GB)$", re.IGNORECASE)
_TRAIN_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)(?:\s+WHERE\s+(.*?))?\s+TRAIN\s+BY\s+(\w+)"
    r"(?:\s+WITH\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PREDICT_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)\s+PREDICT\s+BY\s+(\w+)\s*$",
    re.IGNORECASE,
)
_EVALUATE_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)\s+EVALUATE\s+BY\s+(\w+)\s*$",
    re.IGNORECASE,
)
_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(\*|\w+(?:\s*,\s*\w+)*)\s+FROM\s+(\w+)"
    r"(?:\s+WHERE\s+(.*?))?\s*(?:LIMIT\s+(\d+))?\s*$",
    re.IGNORECASE,
)
_FEATURE_COL_RE = re.compile(r"^f(\d+)$")
_CREATE_INDEX_RE = re.compile(
    r"^\s*CREATE\s+INDEX\s+(\w+)\s+ON\s+(\w+)\s*\(\s*(\w+)\s*\)\s*$",
    re.IGNORECASE,
)
_DROP_INDEX_RE = re.compile(
    r"^\s*DROP\s+INDEX\s+(\w+)\s+ON\s+(\w+)\s*$",
    re.IGNORECASE,
)
_INSERT_RE = re.compile(
    r"^\s*INSERT\s+INTO\s+(\w+)\s+VALUES\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_DELETE_RE = re.compile(
    r"^\s*DELETE\s+FROM\s+(\w+)\s+WHERE\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_UPDATE_RE = re.compile(
    r"^\s*UPDATE\s+(\w+)\s+SET\s+(.*?)\s+WHERE\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_COMPARISON_RE = re.compile(
    r"^\s*(\w+)\s*(<=|>=|!=|=|<|>)\s*([-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*$"
)
_ROW_LITERAL_RE = re.compile(r"\(([^()]*)\)")

_COMPARE_FNS = {
    "=": lambda v, c: v == c,
    "!=": lambda v, c: v != c,
    "<": lambda v, c: v < c,
    "<=": lambda v, c: v <= c,
    ">": lambda v, c: v > c,
    ">=": lambda v, c: v >= c,
}

_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}

MODEL_NAMES = ("lr", "svm", "linreg", "softmax")


def parse_size(text: str) -> int:
    """``"10MB" -> 10 * 1024**2``; bare integers are bytes."""
    text = text.strip()
    match = _SIZE_RE.match(text)
    if match:
        return int(float(match.group(1)) * _UNITS[match.group(2).upper()])
    if text.isdigit():
        return int(text)
    raise ParseError(f"cannot parse size {text!r}")


@dataclass(frozen=True)
class Comparison:
    """One ``column op value`` term; columns are ``label`` or ``f<k>``."""

    column: str
    op: str
    value: float

    def __post_init__(self):
        if self.op not in _COMPARE_FNS:
            raise ParseError(f"unknown comparison operator {self.op!r}")
        if self.column != "label" and not _FEATURE_COL_RE.match(self.column):
            raise ParseError(
                f"unknown column {self.column!r} in predicate; "
                "expected label or f<k>"
            )

    def matches(self, value: float) -> bool:
        return _COMPARE_FNS[self.op](value, self.value)

    def render(self) -> str:
        return f"{self.column} {self.op} {self.value:g}"

    def to_doc(self) -> dict:
        return {"column": self.column, "op": self.op, "value": self.value}

    @classmethod
    def from_doc(cls, doc: dict) -> "Comparison":
        return cls(doc["column"], doc["op"], float(doc["value"]))


@dataclass(frozen=True)
class Predicate:
    """A conjunction of comparisons (``WHERE a AND b AND ...``)."""

    terms: tuple[Comparison, ...]

    def columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for term in self.terms:
            if term.column not in seen:
                seen.append(term.column)
        return tuple(seen)

    def render(self) -> str:
        return " AND ".join(term.render() for term in self.terms)

    def to_doc(self) -> dict:
        return {"terms": [term.to_doc() for term in self.terms]}

    @classmethod
    def from_doc(cls, doc: dict) -> "Predicate":
        return cls(tuple(Comparison.from_doc(t) for t in doc["terms"]))

    # ------------------------------------------------------------------
    def matches(self, label: float, features) -> bool:
        """Row-at-a-time evaluation (``features``: dense vector or SparseRow)."""
        return all(
            term.matches(column_value(term.column, label, features))
            for term in self.terms
        )

    def mask(self, X, y) -> np.ndarray:
        """Vectorized evaluation over a whole table → boolean row mask."""
        n = len(y)
        out = np.ones(n, dtype=bool)
        for term in self.terms:
            if term.column == "label":
                values = np.asarray(y, dtype=np.float64)
            else:
                k = int(term.column[1:])
                if isinstance(X, SparseMatrix):
                    values = np.zeros(n, dtype=np.float64)
                    rows = np.repeat(np.arange(n), np.diff(X.indptr))
                    hit = X.indices == k
                    values[rows[hit]] = X.data[hit]
                else:
                    values = np.asarray(X[:, k], dtype=np.float64)
            out &= _COMPARE_FNS[term.op](values, term.value)
        return out

    def interval_for(self, column: str):
        """The tightest ``(lo, hi, lo_incl, hi_incl)`` the terms on ``column``
        imply, or ``None`` when they give no usable bound (no terms, or only
        ``!=``).  The full predicate must still be re-applied as a residual
        filter — the interval only narrows an index scan.
        """
        lo = hi = None
        lo_incl = hi_incl = True
        bounded = False
        for term in self.terms:
            if term.column != column:
                continue
            if term.op == "=":
                if lo is None or term.value > lo or (term.value == lo and lo_incl):
                    lo, lo_incl = term.value, True
                if hi is None or term.value < hi or (term.value == hi and hi_incl):
                    hi, hi_incl = term.value, True
                bounded = True
            elif term.op in ("<", "<="):
                incl = term.op == "<="
                if hi is None or term.value < hi or (term.value == hi and not incl):
                    hi, hi_incl = term.value, incl
                bounded = True
            elif term.op in (">", ">="):
                incl = term.op == ">="
                if lo is None or term.value > lo or (term.value == lo and not incl):
                    lo, lo_incl = term.value, incl
                bounded = True
        if not bounded:
            return None
        return (lo, hi, lo_incl, hi_incl)


def column_value(column: str, label: float, features) -> float:
    if column == "label":
        return float(label)
    k = int(column[1:])
    if isinstance(features, SparseRow):
        pos = np.searchsorted(features.indices, k)
        if pos < features.indices.size and features.indices[pos] == k:
            return float(features.values[pos])
        return 0.0
    return float(features[k])


def parse_predicate(text: str) -> Predicate:
    """Parse ``col op value [AND ...]`` into a :class:`Predicate`."""
    terms = []
    for part in re.split(r"\s+AND\s+", text.strip(), flags=re.IGNORECASE):
        match = _COMPARISON_RE.match(part)
        if not match:
            raise ParseError(
                f"cannot parse predicate term {part.strip()!r}; "
                "expected <column> <op> <number>"
            )
        column, op, value = match.group(1).lower(), match.group(2), float(match.group(3))
        terms.append(Comparison(column, op, value))
    if not terms:
        raise ParseError("empty predicate")
    return Predicate(tuple(terms))


@dataclass
class TrainQuery:
    """A parsed ``TRAIN BY`` statement."""

    table: str
    model: str
    learning_rate: float = 0.1
    decay: float = 0.95
    max_epoch_num: int = 20
    block_size: int = 10 * 1024**2
    buffer_fraction: float = 0.1
    batch_size: int = 1
    strategy: str = "corgipile"
    seed: int = 0
    double_buffer: bool = True
    #: Route per-tuple SGD through the fused step_block kernels.
    fused: bool = False
    #: Train with this many real worker processes (Section 5).  ``1`` keeps
    #: the classic single-process Volcano pipeline; ``> 1`` routes the query
    #: through :class:`repro.parallel.ParallelTrainer` over a materialised
    #: block file, with ``aggregation`` picking the sync/epoch/async mode.
    workers: int = 1
    aggregation: str = "sync"
    #: ``WHERE`` pushdown: train over the qualifying subset only, with the
    #: planner choosing index-range scan vs full scan for the fetch.
    where: Predicate | None = None
    #: L2 regularisation override; ``None`` keeps each model's default.
    l2: float | None = None
    #: Device model name (``WITH device = 'nvm'``) the advisor costs against.
    device: str | None = None
    #: Start from a registered model id or ``.npz`` path instead of zeros.
    warm_start: str | None = None
    #: Hyperparameter sweep (``WITH grid = (lr = 0.1 | 0.01, ...)``) — a
    #: :class:`repro.db.spec.GridSpec`; routes the query through the
    #: model-hopper engine and returns a leaderboard.
    grid: object | None = None
    #: The engine's *output* channel (planner/advisor/where/parallel docs).
    #: Using it to pass inputs is deprecated — see ``repro.db.spec``.
    extra: dict = field(default_factory=dict)

    def spec(self):
        """The validated :class:`repro.db.spec.TrainSpec` for this query."""
        from .spec import TrainSpec

        return TrainSpec.from_query(self)


@dataclass(frozen=True)
class PredictQuery:
    """A parsed ``PREDICT BY`` statement."""

    table: str
    model_id: str


@dataclass(frozen=True)
class SelectQuery:
    """A ``SELECT <cols> FROM table [LIMIT n]`` row fetch.

    The serve layer runs these inline (no job queue); ``limit`` bounds how
    many tuples cross the wire (``None`` = the engine's default cap).
    ``columns`` is ``None`` for ``SELECT *``; otherwise the parsed
    projection — ``rid`` (alias ``id``), ``label``, ``features``, or
    ``f<k>`` for one feature.  On a columnar table a projection that skips
    the features reads only the requested column chunks (the lazy path).
    """

    table: str
    limit: int | None = None
    columns: tuple[str, ...] | None = None
    where: Predicate | None = None


@dataclass(frozen=True)
class EvaluateQuery:
    """A parsed ``EVALUATE BY`` statement (score a model on a table)."""

    table: str
    model_id: str


@dataclass(frozen=True)
class ExplainQuery:
    """An ``EXPLAIN`` wrapper around a training statement."""

    inner: TrainQuery


@dataclass(frozen=True)
class InsertQuery:
    """``INSERT INTO t VALUES (label, v0, v1, ...), ...`` — dense row
    literals; sparse tables drop the zero values on store."""

    table: str
    rows: tuple[tuple[float, ...], ...]


@dataclass(frozen=True)
class UpdateQuery:
    """``UPDATE t SET col = value[, ...] WHERE ...``."""

    table: str
    assignments: tuple[tuple[str, float], ...]
    where: Predicate


@dataclass(frozen=True)
class DeleteQuery:
    """``DELETE FROM t WHERE ...``."""

    table: str
    where: Predicate


@dataclass(frozen=True)
class CreateIndexQuery:
    """``CREATE INDEX name ON t(col)`` — single-column B+tree."""

    name: str
    table: str
    column: str


@dataclass(frozen=True)
class DropIndexQuery:
    """``DROP INDEX name ON t``."""

    name: str
    table: str


def _parse_value(raw: str):
    raw = raw.strip()
    if _SIZE_RE.match(raw):
        return parse_size(raw)
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw.strip("'\"")


def parse_query(
    sql: str,
) -> TrainQuery | PredictQuery | EvaluateQuery | ExplainQuery | SelectQuery:
    """Parse one statement; raises :class:`ParseError` on malformed input."""
    stripped = sql.lstrip()
    if stripped[:8].upper() == "EXPLAIN ":
        inner = parse_query(stripped[8:])
        if not isinstance(inner, TrainQuery):
            raise ParseError("EXPLAIN is only supported for TRAIN BY statements")
        return ExplainQuery(inner)
    match = _CREATE_INDEX_RE.match(sql)
    if match:
        name, table, column = match.group(1), match.group(2), match.group(3).lower()
        if column != "label" and not _FEATURE_COL_RE.match(column):
            raise ParseError(
                f"cannot index column {column!r}; expected label or f<k>"
            )
        return CreateIndexQuery(name=name, table=table, column=column)
    match = _DROP_INDEX_RE.match(sql)
    if match:
        return DropIndexQuery(name=match.group(1), table=match.group(2))
    match = _INSERT_RE.match(sql)
    if match:
        table, values_text = match.group(1), match.group(2).strip()
        rows = []
        consumed = 0
        for literal in _ROW_LITERAL_RE.finditer(values_text):
            consumed = literal.end()
            fields = [f for f in literal.group(1).split(",") if f.strip()]
            if not fields:
                raise ParseError("empty row literal in INSERT")
            try:
                rows.append(tuple(float(f) for f in fields))
            except ValueError as exc:
                raise ParseError(
                    f"bad numeric literal in INSERT row {literal.group(0)}"
                ) from exc
        trailing = values_text[consumed:].strip().strip(",").strip()
        if not rows or trailing:
            raise ParseError(
                "INSERT expects VALUES (label, v0, v1, ...)[, (...)] row literals"
            )
        return InsertQuery(table=table, rows=tuple(rows))
    match = _DELETE_RE.match(sql)
    if match:
        return DeleteQuery(table=match.group(1), where=parse_predicate(match.group(2)))
    match = _UPDATE_RE.match(sql)
    if match:
        table, set_text, where_text = match.group(1), match.group(2), match.group(3)
        assignments = []
        for part in set_text.split(","):
            if "=" not in part:
                raise ParseError(f"malformed SET assignment {part.strip()!r}")
            column, raw = part.split("=", 1)
            column = column.strip().lower()
            if column != "label" and not _FEATURE_COL_RE.match(column):
                raise ParseError(
                    f"cannot SET column {column!r}; expected label or f<k>"
                )
            try:
                assignments.append((column, float(raw)))
            except ValueError as exc:
                raise ParseError(f"bad value for SET {column}: {raw.strip()!r}") from exc
        if not assignments:
            raise ParseError("UPDATE needs at least one SET assignment")
        return UpdateQuery(
            table=table,
            assignments=tuple(assignments),
            where=parse_predicate(where_text),
        )
    match = _PREDICT_RE.match(sql)
    if match:
        return PredictQuery(table=match.group(1), model_id=match.group(2))
    match = _EVALUATE_RE.match(sql)
    if match:
        return EvaluateQuery(table=match.group(1), model_id=match.group(2))
    # TRAIN must be tried before the plain SELECT: a WHERE clause is free
    # text to the SELECT regex and would swallow the TRAIN BY suffix.
    match = _TRAIN_RE.match(sql)
    if match:
        return _parse_train(match)
    match = _SELECT_RE.match(sql)
    if match:
        collist, table, where_text, limit = (
            match.group(1),
            match.group(2),
            match.group(3),
            match.group(4),
        )
        columns: tuple[str, ...] | None = None
        if collist.strip() != "*":
            names = []
            for raw in collist.split(","):
                name = raw.strip().lower()
                if name == "id":
                    name = "rid"
                if name not in ("rid", "label", "features") and not _FEATURE_COL_RE.match(name):
                    raise ParseError(
                        f"unknown column {raw.strip()!r}; "
                        "expected rid, label, features, or f<k>"
                    )
                names.append(name)
            columns = tuple(names)
        return SelectQuery(
            table=table,
            limit=int(limit) if limit is not None else None,
            columns=columns,
            where=parse_predicate(where_text) if where_text else None,
        )
    raise ParseError(f"cannot parse query: {sql!r}")


_GRID_RE = re.compile(r"grid\s*=\s*\(([^()]*)\)\s*,?", re.IGNORECASE)

#: Typed TrainQuery fields whose default is ``None`` — the generic
#: ``type(default)(value)`` coercion below cannot handle them.
_OPTIONAL_FIELD_COERCE = {
    "l2": float,
    "device": str,
    "warm_start": str,
}


def _parse_grid(text: str):
    """Parse the body of ``grid = (lr = 0.1 | 0.01, l2 = 0 | 1e-4)``."""
    from .spec import GridSpec

    axes: dict[str, list[float]] = {}
    for part in text.split(","):
        if not part.strip():
            continue
        if "=" not in part:
            raise ParseError(
                f"malformed grid axis {part.strip()!r}; "
                "expected name = v1 | v2 | ..."
            )
        name, raw_values = part.split("=", 1)
        values = []
        for raw in raw_values.split("|"):
            try:
                values.append(float(raw))
            except ValueError as exc:
                raise ParseError(
                    f"bad grid value {raw.strip()!r} for axis {name.strip()!r}"
                ) from exc
        axes[name.strip().lower()] = values
    if not axes:
        raise ParseError("grid = (...) declared no axes")
    return GridSpec.from_axes(axes)


def _parse_train(match) -> TrainQuery:
    table, where_text, model, params_text = (
        match.group(1),
        match.group(2),
        match.group(3).lower(),
        match.group(4),
    )
    if model not in MODEL_NAMES:
        raise ParseError(f"unknown model {model!r}; supported: {', '.join(MODEL_NAMES)}")
    query = TrainQuery(table=table, model=model)
    if where_text:
        query.where = parse_predicate(where_text)
    if not params_text:
        return query
    # The grid's parenthesised value list contains commas and ``=``; lift
    # it out whole before the flat per-assignment comma split below.
    grid_match = _GRID_RE.search(params_text)
    if grid_match:
        query.grid = _parse_grid(grid_match.group(1))
        params_text = params_text[: grid_match.start()] + params_text[grid_match.end():]
    for assignment in params_text.split(","):
        if not assignment.strip():
            continue
        if "=" not in assignment:
            raise ParseError(f"malformed parameter {assignment.strip()!r}")
        key, raw = assignment.split("=", 1)
        key = key.strip().lower()
        if key == "grid":
            raise ParseError(
                "grid expects a parenthesised axis list: "
                "grid = (lr = 0.1 | 0.01, ...)"
            )
        value = _parse_value(raw)
        if key in _OPTIONAL_FIELD_COERCE:
            try:
                setattr(query, key, _OPTIONAL_FIELD_COERCE[key](value))
            except (TypeError, ValueError) as exc:
                raise ParseError(f"bad value for {key}: {raw.strip()!r}") from exc
        elif hasattr(query, key) and key not in ("table", "model", "extra", "where"):
            expected = type(getattr(query, key))
            try:
                setattr(query, key, expected(value))
            except (TypeError, ValueError) as exc:
                raise ParseError(f"bad value for {key}: {raw.strip()!r}") from exc
        else:
            # Unknown knob: collected for one more release so old scripts
            # keep running, but no longer silently — TrainSpec is the typed
            # surface and a typo should not vanish into the dict.
            import warnings

            warnings.warn(
                f"unknown TRAIN knob {key!r} collected into query.extra; "
                "this path is deprecated — see repro.db.spec.TrainSpec for "
                "the typed fields",
                DeprecationWarning,
                stacklevel=4,
            )
            query.extra[key] = value
    return query
