"""The SQL-ish query interface (Section 6):

    SELECT * FROM table TRAIN BY model WITH param = value, ...
    SELECT * FROM table PREDICT BY model_id
    SELECT * FROM table [LIMIT n]

Supported model names: ``lr`` (logistic regression), ``svm``, ``linreg``
(linear regression), ``softmax``.  Parameters mirror the paper's examples
(``learning_rate = 0.1``, ``max_epoch_num = 20``, ``block_size = 10MB``)
plus the knobs the experiments sweep (``buffer_fraction``, ``batch_size``,
``strategy``, ``decay``, ``seed``, ``double_buffer``) and the Section 5
parallelism knobs (``workers``, ``aggregation``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .errors import ParseError

__all__ = [
    "TrainQuery",
    "PredictQuery",
    "EvaluateQuery",
    "ExplainQuery",
    "SelectQuery",
    "parse_query",
    "parse_size",
]

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)\s*(B|KB|MB|GB)$", re.IGNORECASE)
_TRAIN_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)\s+TRAIN\s+BY\s+(\w+)(?:\s+WITH\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PREDICT_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)\s+PREDICT\s+BY\s+(\w+)\s*$",
    re.IGNORECASE,
)
_EVALUATE_RE = re.compile(
    r"^\s*SELECT\s+\*\s+FROM\s+(\w+)\s+EVALUATE\s+BY\s+(\w+)\s*$",
    re.IGNORECASE,
)
_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(\*|\w+(?:\s*,\s*\w+)*)\s+FROM\s+(\w+)\s*(?:LIMIT\s+(\d+))?\s*$",
    re.IGNORECASE,
)
_FEATURE_COL_RE = re.compile(r"^f(\d+)$")

_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}

MODEL_NAMES = ("lr", "svm", "linreg", "softmax")


def parse_size(text: str) -> int:
    """``"10MB" -> 10 * 1024**2``; bare integers are bytes."""
    text = text.strip()
    match = _SIZE_RE.match(text)
    if match:
        return int(float(match.group(1)) * _UNITS[match.group(2).upper()])
    if text.isdigit():
        return int(text)
    raise ParseError(f"cannot parse size {text!r}")


@dataclass
class TrainQuery:
    """A parsed ``TRAIN BY`` statement."""

    table: str
    model: str
    learning_rate: float = 0.1
    decay: float = 0.95
    max_epoch_num: int = 20
    block_size: int = 10 * 1024**2
    buffer_fraction: float = 0.1
    batch_size: int = 1
    strategy: str = "corgipile"
    seed: int = 0
    double_buffer: bool = True
    #: Route per-tuple SGD through the fused step_block kernels.
    fused: bool = False
    #: Train with this many real worker processes (Section 5).  ``1`` keeps
    #: the classic single-process Volcano pipeline; ``> 1`` routes the query
    #: through :class:`repro.parallel.ParallelTrainer` over a materialised
    #: block file, with ``aggregation`` picking the sync/epoch/async mode.
    workers: int = 1
    aggregation: str = "sync"
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PredictQuery:
    """A parsed ``PREDICT BY`` statement."""

    table: str
    model_id: str


@dataclass(frozen=True)
class SelectQuery:
    """A ``SELECT <cols> FROM table [LIMIT n]`` row fetch.

    The serve layer runs these inline (no job queue); ``limit`` bounds how
    many tuples cross the wire (``None`` = the engine's default cap).
    ``columns`` is ``None`` for ``SELECT *``; otherwise the parsed
    projection — ``rid`` (alias ``id``), ``label``, ``features``, or
    ``f<k>`` for one feature.  On a columnar table a projection that skips
    the features reads only the requested column chunks (the lazy path).
    """

    table: str
    limit: int | None = None
    columns: tuple[str, ...] | None = None


@dataclass(frozen=True)
class EvaluateQuery:
    """A parsed ``EVALUATE BY`` statement (score a model on a table)."""

    table: str
    model_id: str


@dataclass(frozen=True)
class ExplainQuery:
    """An ``EXPLAIN`` wrapper around a training statement."""

    inner: TrainQuery


def _parse_value(raw: str):
    raw = raw.strip()
    if _SIZE_RE.match(raw):
        return parse_size(raw)
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw.strip("'\"")


def parse_query(
    sql: str,
) -> TrainQuery | PredictQuery | EvaluateQuery | ExplainQuery | SelectQuery:
    """Parse one statement; raises :class:`ParseError` on malformed input."""
    stripped = sql.lstrip()
    if stripped[:8].upper() == "EXPLAIN ":
        inner = parse_query(stripped[8:])
        if not isinstance(inner, TrainQuery):
            raise ParseError("EXPLAIN is only supported for TRAIN BY statements")
        return ExplainQuery(inner)
    match = _PREDICT_RE.match(sql)
    if match:
        return PredictQuery(table=match.group(1), model_id=match.group(2))
    match = _EVALUATE_RE.match(sql)
    if match:
        return EvaluateQuery(table=match.group(1), model_id=match.group(2))
    match = _SELECT_RE.match(sql)
    if match:
        collist, table, limit = match.group(1), match.group(2), match.group(3)
        columns: tuple[str, ...] | None = None
        if collist.strip() != "*":
            names = []
            for raw in collist.split(","):
                name = raw.strip().lower()
                if name == "id":
                    name = "rid"
                if name not in ("rid", "label", "features") and not _FEATURE_COL_RE.match(name):
                    raise ParseError(
                        f"unknown column {raw.strip()!r}; "
                        "expected rid, label, features, or f<k>"
                    )
                names.append(name)
            columns = tuple(names)
        return SelectQuery(
            table=table,
            limit=int(limit) if limit is not None else None,
            columns=columns,
        )
    match = _TRAIN_RE.match(sql)
    if not match:
        raise ParseError(f"cannot parse query: {sql!r}")
    table, model, params_text = match.group(1), match.group(2).lower(), match.group(3)
    if model not in MODEL_NAMES:
        raise ParseError(f"unknown model {model!r}; supported: {', '.join(MODEL_NAMES)}")
    query = TrainQuery(table=table, model=model)
    if not params_text:
        return query
    for assignment in params_text.split(","):
        if not assignment.strip():
            continue
        if "=" not in assignment:
            raise ParseError(f"malformed parameter {assignment.strip()!r}")
        key, raw = assignment.split("=", 1)
        key = key.strip().lower()
        value = _parse_value(raw)
        if hasattr(query, key) and key not in ("table", "model", "extra"):
            expected = type(getattr(query, key))
            try:
                setattr(query, key, expected(value))
            except (TypeError, ValueError) as exc:
                raise ParseError(f"bad value for {key}: {raw.strip()!r}") from exc
        else:
            query.extra[key] = value
    return query
