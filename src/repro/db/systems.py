"""Comparator systems: MADlib, Bismarck, and the out-of-DB framework.

The end-to-end experiments compare CorgiPile-in-PostgreSQL against

* **Apache MADlib** — UDA-based SGD with extra per-tuple statistics work
  (and, for dense high-dimensional LR, an expensive standard-error matrix
  computation that the paper observed never finishing — Section 7.3.1);
  MADlib also lacks sparse LR/SVM support;
* **Bismarck** — UDA-based SGD, leaner than MADlib;
* **PyTorch outside the DB** — pays a Python↔C++ invocation per tuple in
  per-tuple SGD mode (the paper's Figure 15 explanation for being 2-16×
  slower than in-DB CorgiPile on many-tuple datasets).

Neither MADlib nor Bismarck shuffles data itself: they either scan in stored
order (``no_shuffle``) or assume/materialise a pre-shuffled copy
(``shuffle_once``).  We therefore run both through :class:`MiniDB` with the
corresponding access path and the system's compute profile — the same
substrate, so measured differences come only from the modelled cost
structure, exactly like the paper's apples-to-apples setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.dataset import Dataset
from ..ml.models.base import SupervisedModel
from ..ml.optim import Adam, Optimizer, SGD
from ..ml.schedules import ExponentialDecay
from ..ml.trainer import Trainer
from ..shuffle.base import ShuffleStrategy
from ..shuffle.registry import make_strategy
from ..storage.codec import TupleSchema
from ..storage.iomodel import MEMORY, DeviceModel
from .engine import ENGINE_PROFILE, MiniDB, TrainResult
from .query import TrainQuery
from .timeline import Timeline
from .timing import ComputeProfile

__all__ = [
    "MADLIB_PROFILE",
    "BISMARCK_PROFILE",
    "PYTORCH_PROFILE",
    "DL_FRAMEWORK_PROFILE",
    "SYSTEM_PROFILES",
    "run_in_db_system",
    "madlib_supports",
    "run_framework",
]

# UDA transition costs: Bismarck is the lean baseline, MADlib does extra
# per-tuple statistics bookkeeping ("more computation on some auxiliary
# statistical metrics and less efficient implementation", Section 7.3.1).
BISMARCK_PROFILE = ComputeProfile(
    "bismarck", per_tuple_s=3e-6, per_value_s=6e-9, decompress_per_byte_s=3e-8
)
MADLIB_PROFILE = ComputeProfile(
    "madlib", per_tuple_s=9e-6, per_value_s=1.5e-8, decompress_per_byte_s=3e-8
)
# Per-tuple Python↔C++ crossing of framework SGD on single tuples.
PYTORCH_PROFILE = ComputeProfile("pytorch", per_tuple_s=4e-5, per_value_s=2e-9)
# Deep-learning forward/backward dominates; per-value stands in for FLOPs.
DL_FRAMEWORK_PROFILE = ComputeProfile("dl-framework", per_tuple_s=2e-4, per_value_s=1e-7)

SYSTEM_PROFILES: dict[str, ComputeProfile] = {
    "corgipile": ENGINE_PROFILE,
    "bismarck": BISMARCK_PROFILE,
    "madlib": MADLIB_PROFILE,
}

# Extra per-value cost of MADlib's stderr matrix computation for dense LR;
# effectively quadratic in dimensionality, which is why MADlib LR never
# finished on epsilon/yfcc in the paper.
_MADLIB_LR_STDERR_PER_VALUE_PER_DIM = 1.2e-8


def madlib_supports(model_name: str, dataset: Dataset) -> bool:
    """MADlib's documented gaps: no sparse LR/SVM training."""
    if dataset.is_sparse and model_name in ("lr", "svm"):
        return False
    return True


def _madlib_profile_for(model_name: str, dataset: Dataset) -> ComputeProfile:
    if model_name == "lr" and not dataset.is_sparse:
        extra = _MADLIB_LR_STDERR_PER_VALUE_PER_DIM * dataset.n_features
        return ComputeProfile(
            "madlib-lr",
            per_tuple_s=MADLIB_PROFILE.per_tuple_s,
            per_value_s=MADLIB_PROFILE.per_value_s + extra,
            decompress_per_byte_s=MADLIB_PROFILE.decompress_per_byte_s,
        )
    return MADLIB_PROFILE


def run_in_db_system(
    system: str,
    strategy: str,
    train: Dataset,
    test: Dataset | None,
    model_name: str,
    device: DeviceModel,
    *,
    epochs: int = 20,
    learning_rate: float = 0.1,
    buffer_fraction: float = 0.1,
    block_size: int = 10 * 1024**2,
    batch_size: int = 1,
    compress: bool = False,
    seed: int = 0,
    page_bytes: int = 1024,
) -> TrainResult:
    """Run one (system, strategy) combination end-to-end on the mini engine.

    ``system`` selects the compute profile (``corgipile`` / ``bismarck`` /
    ``madlib``); ``strategy`` the access path.  Raises ``ValueError`` for
    combinations the real systems do not support (MADlib on sparse GLMs).
    """
    if system not in SYSTEM_PROFILES:
        raise ValueError(f"unknown system {system!r}; known: {', '.join(SYSTEM_PROFILES)}")
    if system == "madlib" and not madlib_supports(model_name, train):
        raise ValueError("MADlib does not support training LR/SVM on sparse datasets")
    profile = (
        _madlib_profile_for(model_name, train) if system == "madlib" else SYSTEM_PROFILES[system]
    )
    db = MiniDB(device=device, compute=profile, page_bytes=page_bytes)
    db.create_table("t", train, compress=compress)
    query = TrainQuery(
        table="t",
        model=model_name,
        learning_rate=learning_rate,
        max_epoch_num=epochs,
        block_size=block_size,
        buffer_fraction=buffer_fraction,
        batch_size=batch_size,
        strategy=strategy,
        seed=seed,
    )
    result = db.train(query, test=test)
    result.timeline.system = f"{system}/{strategy}"
    return result


# ----------------------------------------------------------------------
# The out-of-DB framework simulator (PyTorch-style execution).
# ----------------------------------------------------------------------
@dataclass
class FrameworkRun:
    """Training outcome + modelled timing of a framework (PyTorch) run."""

    timeline: Timeline
    history: object
    per_epoch_s: float
    model: SupervisedModel


def _average_tuple_bytes(dataset: Dataset) -> float:
    schema = TupleSchema(dataset.n_features, sparse=dataset.is_sparse)
    if dataset.is_sparse:
        nnz = dataset.X.nnz / max(1, dataset.n_tuples)
        return schema.sparse_tuple_bytes(int(round(nnz)))
    return schema.dense_tuple_bytes()


def run_framework(
    train: Dataset,
    test: Dataset | None,
    model: SupervisedModel,
    strategy: ShuffleStrategy | str,
    device: DeviceModel,
    *,
    epochs: int = 20,
    learning_rate: float = 0.1,
    decay: float = 0.95,
    batch_size: int = 1,
    buffer_fraction: float = 0.1,
    tuples_per_block: int | None = None,
    compute: ComputeProfile = PYTORCH_PROFILE,
    in_memory: bool = False,
    use_adam: bool = False,
    n_workers: int = 1,
    seed: int = 0,
    shuffle_once_epoch_equivalents: float | None = None,
) -> FrameworkRun:
    """Train ``model`` the PyTorch way and model its wall-clock.

    ``in_memory=True`` models the paper's practice of loading small datasets
    into RAM before training (I/O then charged at memory speed after a
    one-time sequential load).  ``n_workers > 1`` divides the per-epoch
    compute (data-parallel GPUs) but not the I/O.
    """
    if isinstance(strategy, str):
        per_block = tuples_per_block or max(1, train.n_tuples // 100)
        layout = train.layout(per_block)
        strategy = make_strategy(strategy, layout, buffer_fraction=buffer_fraction, seed=seed)

    optimizer: Optimizer | None
    if use_adam:
        optimizer = Adam(model)
    elif batch_size > 1:
        optimizer = SGD(model)
    else:
        optimizer = None

    trainer = Trainer(
        model,
        train,
        strategy,
        epochs=epochs,
        schedule=ExponentialDecay(learning_rate, decay),
        batch_size=batch_size,
        optimizer=optimizer,
        test=test,
    )
    history = trainer.run()

    tuple_bytes = _average_tuple_bytes(train)
    values = (
        train.X.nnz / max(1, train.n_tuples) if train.is_sparse else float(train.n_features)
    )
    compute_s = train.n_tuples * compute.tuple_compute_s(values) / max(1, n_workers)
    io_device = MEMORY if in_memory else device
    io_s = strategy.epoch_trace(tuple_bytes).time_on(io_device)
    per_epoch_s = max(io_s, compute_s) if io_s and compute_s else io_s + compute_s

    setup_s = strategy.setup_trace(tuple_bytes).time_on(device)
    if shuffle_once_epoch_equivalents is not None and strategy.name == "shuffle_once":
        # Framework-side full shuffles materialise millions of small records
        # with random file I/O, which the paper measured at ~8.5 hours for
        # ImageNet against ~0.37 h/epoch of training — about 23 epoch
        # equivalents.  The external-sort model used by the in-DB path does
        # not capture that small-file regime, so the DL benchmarks charge
        # the measured ratio instead (calibrated, and documented in
        # DESIGN.md/EXPERIMENTS.md).
        setup_s = shuffle_once_epoch_equivalents * per_epoch_s
    if in_memory:
        setup_s += device.sequential_time(train.n_tuples * tuple_bytes)  # initial load

    timeline = Timeline(
        system=f"framework/{strategy.name}", setup_s=setup_s, setup_note="framework setup"
    )
    for record in history.records:
        timeline.append(
            per_epoch_s, record.epoch, record.train_loss, record.train_score, record.test_score
        )
    return FrameworkRun(timeline=timeline, history=history, per_epoch_s=per_epoch_s, model=model)
