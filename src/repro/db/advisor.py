"""Physical-design advisor: block size and buffer size recommendations.

Section 7.3.4 ends with practical guidance: *"we recommend users to choose
the smallest block size that can achieve high-enough I/O throughput"* and
shows that a 2 % buffer already matches Shuffle Once.  This module turns
that guidance into code: given a device model and table statistics, it
computes

* the smallest block size whose random-access throughput reaches a target
  fraction of sequential bandwidth (the Figure 20 knee), and
* a buffer size that holds enough blocks for the tuple-level shuffle to mix
  well, subject to a memory budget.

The advisor is purely analytic — it reads no data — so it can run at
``CREATE TABLE`` time or inside a query planner.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.iomodel import DeviceModel

__all__ = ["PhysicalDesign", "recommend_block_size", "recommend_buffer", "advise"]

# Defaults mirroring the paper's setup: ~90 % of sequential bandwidth is
# "high-enough", buffers of ~10 % of the data with at least 8 blocks per
# fill mix clustered data well (Figures 14a and our ablations).
DEFAULT_THROUGHPUT_FRACTION = 0.9
DEFAULT_BUFFER_FRACTION = 0.1
MIN_BLOCKS_PER_BUFFER = 8


@dataclass(frozen=True)
class PhysicalDesign:
    """The advisor's output."""

    block_bytes: int
    buffer_bytes: int
    buffer_fraction: float
    blocks_per_buffer: int
    expected_random_throughput_fraction: float

    def describe(self) -> str:
        return (
            f"block={self.block_bytes / 1024:.0f}KB "
            f"({self.expected_random_throughput_fraction:.0%} of sequential bw), "
            f"buffer={self.buffer_bytes / 1024:.0f}KB "
            f"({self.buffer_fraction:.1%} of table, "
            f"{self.blocks_per_buffer} blocks/fill)"
        )


def recommend_block_size(
    device: DeviceModel,
    page_bytes: int,
    throughput_fraction: float = DEFAULT_THROUGHPUT_FRACTION,
    max_block_bytes: int = 1 << 30,
) -> int:
    """Smallest page-aligned block reaching the target random throughput.

    Solves ``block / (t_lat + block/bw) >= fraction * bw`` for the block
    size: ``block >= fraction/(1-fraction) * t_lat * bw``, rounded up to a
    whole number of pages.
    """
    if not 0.0 < throughput_fraction < 1.0:
        raise ValueError("throughput_fraction must be in (0, 1)")
    if page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    needed = (
        throughput_fraction
        / (1.0 - throughput_fraction)
        * device.access_latency_s
        * device.bandwidth_bytes_per_s
    )
    pages = max(1, -(-int(needed) // page_bytes))
    block = pages * page_bytes
    if block > max_block_bytes:
        raise ValueError(
            f"device needs {block} byte blocks to reach "
            f"{throughput_fraction:.0%} of bandwidth (cap {max_block_bytes})"
        )
    return block


def recommend_buffer(
    table_bytes: float,
    block_bytes: int,
    memory_budget_bytes: float | None = None,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> tuple[int, int]:
    """Buffer bytes and blocks-per-fill under the paper's sizing rules.

    Starts from ``buffer_fraction`` of the table, raises it to hold at
    least :data:`MIN_BLOCKS_PER_BUFFER` blocks (tuple-level mixing needs
    several blocks per fill — our block-size ablation), and caps it at the
    memory budget and the table size.  Returns ``(buffer_bytes, blocks)``.
    """
    if table_bytes <= 0 or block_bytes <= 0:
        raise ValueError("table_bytes and block_bytes must be positive")
    target = buffer_fraction * table_bytes
    target = max(target, MIN_BLOCKS_PER_BUFFER * block_bytes)
    target = min(target, table_bytes)
    if memory_budget_bytes is not None:
        if memory_budget_bytes < block_bytes:
            raise ValueError("memory budget smaller than a single block")
        target = min(target, memory_budget_bytes)
    blocks = max(1, int(target // block_bytes))
    return blocks * block_bytes, blocks


def advise(
    device: DeviceModel,
    table_bytes: float,
    page_bytes: int,
    memory_budget_bytes: float | None = None,
    throughput_fraction: float = DEFAULT_THROUGHPUT_FRACTION,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> PhysicalDesign:
    """Full physical-design recommendation for one table on one device."""
    block = recommend_block_size(device, page_bytes, throughput_fraction)
    if block > table_bytes:
        # Tiny table: a single block would swallow it; fall back to
        # table_bytes / MIN_BLOCKS so CorgiPile still has blocks to shuffle.
        pages = max(1, int(table_bytes / MIN_BLOCKS_PER_BUFFER) // page_bytes)
        block = max(page_bytes, pages * page_bytes)
    buffer_bytes, blocks = recommend_buffer(
        table_bytes, block, memory_budget_bytes, buffer_fraction
    )
    return PhysicalDesign(
        block_bytes=block,
        buffer_bytes=buffer_bytes,
        buffer_fraction=buffer_bytes / table_bytes,
        blocks_per_buffer=blocks,
        expected_random_throughput_fraction=(
            device.random_throughput(block) / device.bandwidth_bytes_per_s
        ),
    )
