"""Physical-design + access-path advisor.

Two layers live here:

1. **Physical design** (the original Section 7.3.4 guidance): given a device
   model and table statistics, recommend the smallest block size reaching a
   target fraction of sequential bandwidth and a buffer sized for good
   tuple-level mixing (:func:`recommend_block_size`, :func:`recommend_buffer`,
   :func:`advise`).  Purely analytic — runs at ``CREATE TABLE`` time.

2. **Plan-time strategy selection** (the cost-based advisor): per ``TRAIN``
   statement, estimate the clustering factor ``h_D`` from a cheap sample of
   the stored table (:func:`estimate_hd`), charge every registered shuffle
   strategy through the device's I/O curves, fold in a convergence penalty
   proportional to the clustering each strategy leaves behind, and pick the
   cheapest total (:func:`advise_strategy`).  The decision — chosen
   strategy, per-strategy cost table, measured ``h_D`` — is surfaced in
   ``EXPLAIN``, ``repro.obs``, and the serve job journal.

The convergence penalty model: Theorem 1's leading term scales with the
block-wise variance factor ``h_D``, so a strategy whose SGD stream still
looks clustered needs proportionally more epochs to reach the same loss.
Each strategy removes a fraction of the clustering —

* mixing ``k`` buffered blocks' tuples averages ``k`` block means, cutting
  the residual block variance to ``~1/k`` (CorgiPile);
* Corgi²'s offline re-grouping pre-mixes ``g`` blocks per new block, so the
  online buffer sees ``~1/(g·k)``;
* in-block schemes (reshuffle/reversal) perturb only within a block, so
  block means survive and most of the clustering remains;
* a full shuffle (offline copy or per-epoch random tuple access) removes it
  entirely.

We charge ``epochs · epoch_io · (1 + κ·(h_eff − 1))`` with
``κ = PENALTY_EPOCHS_PER_HD`` extra epochs per unit of residual ``h``:
an analytic stand-in for "epochs to target loss" that the statistical test
suite (``tests/test_shuffle_quality.py``) and ``benchmarks/bench_advisor.py``
validate end to end against real SGD runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..shuffle.base import EXTERNAL_SORT_PASSES
from ..storage.iomodel import DeviceModel

__all__ = [
    "PhysicalDesign",
    "recommend_block_size",
    "recommend_buffer",
    "advise",
    "HdEstimate",
    "StrategyCost",
    "AdvisorDecision",
    "estimate_hd",
    "advise_from_stats",
    "advise_strategy",
    "learn_kappa",
    "ADVISOR_CANDIDATES",
    "PENALTY_EPOCHS_PER_HD",
    "KAPPA_MAX",
    "MIN_KAPPA_EPOCHS",
]

# Defaults mirroring the paper's setup: ~90 % of sequential bandwidth is
# "high-enough", buffers of ~10 % of the data with at least 8 blocks per
# fill mix clustered data well (Figures 14a and our ablations).
DEFAULT_THROUGHPUT_FRACTION = 0.9
DEFAULT_BUFFER_FRACTION = 0.1
MIN_BLOCKS_PER_BUFFER = 8

# ---------------------------------------------------------------------------
# Strategy-selection constants
# ---------------------------------------------------------------------------

#: Every strategy the plan-time advisor charges, in tie-break order
#: (cheapest memory footprint first — a tie on estimated cost resolves to
#: the simplest plan).
ADVISOR_CANDIDATES = (
    "no_shuffle",
    "block_reversal",
    "block_reshuffle",
    "corgipile",
    "corgi2",
    "shuffle_once",
    "random_access",
)

#: κ — extra epochs (as a fraction of the requested epochs) charged per unit
#: of residual clustering ``h_eff − 1``.  Calibrated against the clustered
#: GLM convergence sweeps: one extra unit of h_D costs roughly a third of an
#: epoch of progress per epoch trained.
PENALTY_EPOCHS_PER_HD = 0.3

#: Sanity clamp on a learned κ — a fit outside [0, KAPPA_MAX] means the
#: observations do not look like the penalty model at all.
KAPPA_MAX = 2.0

#: Observed epochs required before the advisor trusts a learned κ over the
#: calibrated default.
MIN_KAPPA_EPOCHS = 2

#: Fraction of the clustering (``h_D − 1``) each strategy leaves in the SGD
#: stream.  See the module docstring for the derivations; buffered
#: strategies are computed from the buffer size at plan time.
_RESIDUAL_BLOCK_REVERSAL = 0.9
_RESIDUAL_BLOCK_RESHUFFLE = 0.8


@dataclass(frozen=True)
class PhysicalDesign:
    """The advisor's output."""

    block_bytes: int
    buffer_bytes: int
    buffer_fraction: float
    blocks_per_buffer: int
    expected_random_throughput_fraction: float

    def describe(self) -> str:
        return (
            f"block={self.block_bytes / 1024:.0f}KB "
            f"({self.expected_random_throughput_fraction:.0%} of sequential bw), "
            f"buffer={self.buffer_bytes / 1024:.0f}KB "
            f"({self.buffer_fraction:.1%} of table, "
            f"{self.blocks_per_buffer} blocks/fill)"
        )


def recommend_block_size(
    device: DeviceModel,
    page_bytes: int,
    throughput_fraction: float = DEFAULT_THROUGHPUT_FRACTION,
    max_block_bytes: int = 1 << 30,
) -> int:
    """Smallest page-aligned block reaching the target random throughput.

    Solves ``block / (t_lat + block/bw) >= fraction * bw`` for the block
    size: ``block >= fraction/(1-fraction) * t_lat * bw``, rounded up to a
    whole number of pages.  The ceiling is taken on the *float* requirement:
    truncating first would under-size the block by one page whenever the
    requirement is fractionally above a page multiple, silently missing the
    throughput target.
    """
    if not 0.0 < throughput_fraction < 1.0:
        raise ValueError("throughput_fraction must be in (0, 1)")
    if page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    needed = (
        throughput_fraction
        / (1.0 - throughput_fraction)
        * device.access_latency_s
        * device.bandwidth_bytes_per_s
    )
    pages = max(1, math.ceil(needed / page_bytes))
    block = pages * page_bytes
    if block > max_block_bytes:
        raise ValueError(
            f"device needs {block} byte blocks to reach "
            f"{throughput_fraction:.0%} of bandwidth (cap {max_block_bytes})"
        )
    return block


def recommend_buffer(
    table_bytes: float,
    block_bytes: int,
    memory_budget_bytes: float | None = None,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> tuple[int, int]:
    """Buffer bytes and blocks-per-fill under the paper's sizing rules.

    Starts from ``buffer_fraction`` of the table, raises it to hold at
    least :data:`MIN_BLOCKS_PER_BUFFER` blocks (tuple-level mixing needs
    several blocks per fill — our block-size ablation), and caps it at the
    memory budget and the table size.  Returns ``(buffer_bytes, blocks)``.
    """
    if table_bytes <= 0 or block_bytes <= 0:
        raise ValueError("table_bytes and block_bytes must be positive")
    target = buffer_fraction * table_bytes
    target = max(target, MIN_BLOCKS_PER_BUFFER * block_bytes)
    target = min(target, table_bytes)
    if memory_budget_bytes is not None:
        if memory_budget_bytes < block_bytes:
            raise ValueError("memory budget smaller than a single block")
        target = min(target, memory_budget_bytes)
    blocks = max(1, int(target // block_bytes))
    return blocks * block_bytes, blocks


def advise(
    device: DeviceModel,
    table_bytes: float,
    page_bytes: int,
    memory_budget_bytes: float | None = None,
    throughput_fraction: float = DEFAULT_THROUGHPUT_FRACTION,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> PhysicalDesign:
    """Full physical-design recommendation for one table on one device."""
    block = recommend_block_size(device, page_bytes, throughput_fraction)
    if block > table_bytes:
        # Tiny table: a single block would swallow it; fall back to
        # table_bytes / MIN_BLOCKS so CorgiPile still has blocks to shuffle.
        pages = max(1, int(table_bytes / MIN_BLOCKS_PER_BUFFER) // page_bytes)
        block = max(page_bytes, pages * page_bytes)
    buffer_bytes, blocks = recommend_buffer(
        table_bytes, block, memory_budget_bytes, buffer_fraction
    )
    return PhysicalDesign(
        block_bytes=block,
        buffer_bytes=buffer_bytes,
        buffer_fraction=buffer_bytes / table_bytes,
        blocks_per_buffer=blocks,
        expected_random_throughput_fraction=(
            device.random_throughput(block) / device.bandwidth_bytes_per_s
        ),
    )


# ---------------------------------------------------------------------------
# h_D estimation (the plan-time sample probe)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HdEstimate:
    """A sampled clustering-factor measurement.

    ``n_sampled == 0`` marks an estimate that was *given* rather than
    measured (the regression tests feed exact values through
    :func:`advise_from_stats`).
    """

    hd: float
    n_sampled: int
    n_tuples: int
    tuples_per_block: int
    n_blocks: int

    def describe(self) -> str:
        source = (
            f"sampled {self.n_sampled}/{self.n_tuples} tuples"
            if self.n_sampled
            else "given"
        )
        return (
            f"h_D={self.hd:.2f} over {self.n_blocks} blocks of "
            f"{self.tuples_per_block} tuples ({source})"
        )

    def to_doc(self) -> dict:
        return {
            "hd": round(float(self.hd), 4),
            "n_sampled": int(self.n_sampled),
            "n_tuples": int(self.n_tuples),
            "tuples_per_block": int(self.tuples_per_block),
            "n_blocks": int(self.n_blocks),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "HdEstimate":
        return cls(
            hd=float(doc["hd"]),
            n_sampled=int(doc["n_sampled"]),
            n_tuples=int(doc["n_tuples"]),
            tuples_per_block=int(doc["tuples_per_block"]),
            n_blocks=int(doc["n_blocks"]),
        )


def _probe_model(dataset):
    """A cheap surrogate whose gradients expose label/feature clustering.

    A freshly initialised GLM probe is enough: at the zero point the
    per-example gradients are label/feature-driven, which is exactly what
    block clustering skews.
    """
    from ..ml.models.linear import LinearRegression, LogisticRegression
    from ..ml.models.softmax import SoftmaxRegression

    if dataset.task == "binary":
        return LogisticRegression(dataset.n_features)
    if dataset.task == "multiclass":
        return SoftmaxRegression(dataset.n_features, dataset.n_classes)
    return LinearRegression(dataset.n_features)


def estimate_hd(table, block_bytes: int, max_probe_tuples: int = 20_000) -> HdEstimate:
    """Sample the table's clustering factor at the query's block granularity.

    Tables larger than ``max_probe_tuples`` are probed on evenly spaced
    *contiguous* chunks: each chunk preserves the within-block structure
    (a random tuple sample would destroy the clustering being measured),
    while spacing the chunks across the table captures its global label
    drift — a prefix alone would be single-class on clustered tables and
    look deceptively uniform.  On a columnar table this touches only the
    label/feature arrays already resident in the catalog — no simulated
    I/O is charged, exactly like a planner consulting table statistics.
    """
    from ..data.dataset import BlockLayout
    from ..theory.hd import hd_factor

    dataset = table.dataset
    tuples_per_block = max(1, round(block_bytes / max(1.0, table.tuple_bytes)))
    probe = dataset
    if dataset.n_tuples > max_probe_tuples:
        chunk = max(tuples_per_block, max_probe_tuples // 20)
        n_chunks = max(2, max_probe_tuples // chunk)
        starts = np.linspace(0, dataset.n_tuples - chunk, n_chunks).astype(np.int64)
        indices = np.concatenate([np.arange(s, s + chunk) for s in starts])
        probe = dataset.subset(indices, suffix="probe")
    n_probe = probe.n_tuples
    probe_block = min(tuples_per_block, max(1, n_probe // 2))
    layout = BlockLayout(n_probe, probe_block)
    hd = hd_factor(_probe_model(probe), probe, layout)
    return HdEstimate(
        hd=float(hd),
        n_sampled=n_probe,
        n_tuples=dataset.n_tuples,
        tuples_per_block=tuples_per_block,
        n_blocks=layout.n_blocks,
    )


# ---------------------------------------------------------------------------
# Cost-based strategy selection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StrategyCost:
    """One candidate's charged cost for a TRAIN statement."""

    strategy: str
    setup_s: float
    epoch_io_s: float
    effective_hd: float
    epoch_multiplier: float
    total_s: float

    def describe(self) -> str:
        return (
            f"{self.strategy:<16} total={self.total_s:.4g}s "
            f"(setup={self.setup_s:.4g}s + epoch-io={self.epoch_io_s:.4g}s "
            f"x{self.epoch_multiplier:.2f}, h_eff={self.effective_hd:.2f})"
        )

    def to_doc(self) -> dict:
        return {
            "strategy": self.strategy,
            "setup_s": float(self.setup_s),
            "epoch_io_s": float(self.epoch_io_s),
            "effective_hd": round(float(self.effective_hd), 4),
            "epoch_multiplier": round(float(self.epoch_multiplier), 4),
            "total_s": float(self.total_s),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "StrategyCost":
        return cls(
            strategy=str(doc["strategy"]),
            setup_s=float(doc["setup_s"]),
            epoch_io_s=float(doc["epoch_io_s"]),
            effective_hd=float(doc["effective_hd"]),
            epoch_multiplier=float(doc["epoch_multiplier"]),
            total_s=float(doc["total_s"]),
        )


@dataclass(frozen=True)
class AdvisorDecision:
    """The plan-time advisor's choice and its full evidence table."""

    strategy: str
    device: str
    epochs: int
    buffer_fraction: float
    block_bytes: int
    hd: HdEstimate
    costs: tuple[StrategyCost, ...]
    #: The clustering penalty used when costing the candidates, and where it
    #: came from: ``"default"`` (the calibrated constant) or ``"observed"``
    #: (least-squares fit over ``kappa_observations`` recorded epoch walls).
    kappa: float = PENALTY_EPOCHS_PER_HD
    kappa_source: str = "default"
    kappa_observations: int = 0

    @property
    def chosen(self) -> StrategyCost:
        for cost in self.costs:
            if cost.strategy == self.strategy:
                return cost
        raise ValueError(f"decision names unknown strategy {self.strategy!r}")

    def describe(self) -> str:
        best = self.chosen
        return (
            f"strategy={self.strategy} ({self.hd.describe()}, device={self.device}, "
            f"est {best.total_s:.4g}s vs next "
            f"{self._runner_up_total():.4g}s over {self.epochs} epochs)"
        )

    def _runner_up_total(self) -> float:
        others = [c.total_s for c in self.costs if c.strategy != self.strategy]
        return min(others) if others else float("nan")

    def render(self) -> str:
        """The EXPLAIN block: one line per candidate, chosen first-marked."""
        lines = [
            f"Advisor (device={self.device}, {self.hd.describe()}, "
            f"epochs={self.epochs}, buffer={self.buffer_fraction:.1%})"
        ]
        for cost in sorted(self.costs, key=lambda c: c.total_s):
            marker = "=> " if cost.strategy == self.strategy else "   "
            lines.append(f"  {marker}{cost.describe()}")
        return "\n".join(lines)

    def to_doc(self) -> dict:
        return {
            "strategy": self.strategy,
            "device": self.device,
            "epochs": int(self.epochs),
            "buffer_fraction": float(self.buffer_fraction),
            "block_bytes": int(self.block_bytes),
            "hd": self.hd.to_doc(),
            "costs": [c.to_doc() for c in self.costs],
            "kappa": {
                "value": round(float(self.kappa), 6),
                "source": self.kappa_source,
                "n_observations": int(self.kappa_observations),
            },
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "AdvisorDecision":
        return cls(
            strategy=str(doc["strategy"]),
            device=str(doc["device"]),
            epochs=int(doc["epochs"]),
            buffer_fraction=float(doc["buffer_fraction"]),
            block_bytes=int(doc["block_bytes"]),
            hd=HdEstimate.from_doc(doc["hd"]),
            costs=tuple(StrategyCost.from_doc(c) for c in doc["costs"]),
            kappa=float(doc.get("kappa", {}).get("value", PENALTY_EPOCHS_PER_HD)),
            kappa_source=str(doc.get("kappa", {}).get("source", "default")),
            kappa_observations=int(doc.get("kappa", {}).get("n_observations", 0)),
        )


def _residual_clustering(strategy: str, buffer_blocks: int, group_blocks: int) -> float:
    """Fraction of ``h_D − 1`` the strategy leaves in the SGD stream."""
    if strategy == "no_shuffle":
        return 1.0
    if strategy == "block_reversal":
        return _RESIDUAL_BLOCK_REVERSAL
    if strategy == "block_reshuffle":
        return _RESIDUAL_BLOCK_RESHUFFLE
    if strategy in ("corgipile", "corgipile_single_buffer"):
        return 1.0 / buffer_blocks
    if strategy == "corgi2":
        return 1.0 / (group_blocks * buffer_blocks)
    if strategy in ("shuffle_once", "epoch_shuffle", "random_access"):
        return 0.0
    raise KeyError(f"no residual-clustering model for strategy {strategy!r}")


def advise_from_stats(
    *,
    n_tuples: int,
    tuple_bytes: float,
    hd: float | HdEstimate,
    device: DeviceModel,
    block_bytes: int,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    epochs: int = 20,
    compute=None,
    candidates: tuple[str, ...] = ADVISOR_CANDIDATES,
    kappa: float = PENALTY_EPOCHS_PER_HD,
) -> AdvisorDecision:
    """Cost every candidate from pure table statistics and pick the cheapest.

    The numeric core of :func:`advise_strategy`, separated so decision
    tables can be regression-pinned on exact ``(h_D, device, buffer)``
    grid points without building datasets.  ``compute`` is an optional
    :class:`~repro.db.timing.ComputeProfile` used to charge the
    ``n·log n`` sort CPU of the Shuffle-Once external sort.
    """
    if n_tuples <= 0 or tuple_bytes <= 0 or block_bytes <= 0:
        raise ValueError("n_tuples, tuple_bytes and block_bytes must be positive")
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if not 0.0 < buffer_fraction <= 1.0:
        raise ValueError("buffer_fraction must be in (0, 1]")
    if not candidates:
        raise ValueError("candidates must not be empty")

    tuples_per_block = max(1, round(block_bytes / tuple_bytes))
    n_blocks = max(1, -(-n_tuples // tuples_per_block))
    eff_block_bytes = min(tuples_per_block, n_tuples) * tuple_bytes
    table_bytes = n_tuples * tuple_bytes
    buffer_blocks = max(1, round(buffer_fraction * n_blocks))
    group_blocks = buffer_blocks  # Corgi² default: offline group == buffer

    if isinstance(hd, HdEstimate):
        estimate = hd
    else:
        estimate = HdEstimate(
            hd=float(hd),
            n_sampled=0,
            n_tuples=n_tuples,
            tuples_per_block=tuples_per_block,
            n_blocks=n_blocks,
        )

    seq_epoch = device.sequential_time(table_bytes)
    rand_block_epoch = device.random_time(eff_block_bytes, n_blocks)
    rand_tuple_epoch = device.random_time(tuple_bytes, n_tuples)

    setup_by_strategy = {
        "no_shuffle": 0.0,
        "block_reversal": 0.0,
        "block_reshuffle": 0.0,
        "corgipile": 0.0,
        "corgipile_single_buffer": 0.0,
        # Offline pass: one random-block read of the table + one sequential
        # write of the re-grouped copy.
        "corgi2": rand_block_epoch + device.sequential_time(table_bytes),
        # External sort (alternating sequential passes) + the n·log2 n
        # comparison/copy CPU of ORDER BY RANDOM() when a profile is given.
        "shuffle_once": EXTERNAL_SORT_PASSES * seq_epoch
        + (
            0.25 * n_tuples * max(1.0, math.log2(n_tuples)) * compute.per_tuple_s
            if compute is not None
            else 0.0
        ),
        "random_access": 0.0,
    }
    epoch_io_by_strategy = {
        "no_shuffle": seq_epoch,
        "block_reversal": rand_block_epoch,
        "block_reshuffle": rand_block_epoch,
        "corgipile": rand_block_epoch,
        "corgipile_single_buffer": rand_block_epoch,
        "corgi2": rand_block_epoch,
        "shuffle_once": seq_epoch,
        "random_access": rand_tuple_epoch,
    }

    costs: list[StrategyCost] = []
    for name in candidates:
        if name not in epoch_io_by_strategy:
            raise KeyError(
                f"advisor has no cost model for strategy {name!r}; "
                f"known: {', '.join(sorted(epoch_io_by_strategy))}"
            )
        residual = _residual_clustering(name, buffer_blocks, group_blocks)
        h_eff = 1.0 + max(0.0, estimate.hd - 1.0) * residual
        multiplier = 1.0 + kappa * (h_eff - 1.0)
        setup = setup_by_strategy[name]
        epoch_io = epoch_io_by_strategy[name]
        costs.append(
            StrategyCost(
                strategy=name,
                setup_s=setup,
                epoch_io_s=epoch_io,
                effective_hd=h_eff,
                epoch_multiplier=multiplier,
                total_s=setup + epochs * epoch_io * multiplier,
            )
        )
    # Cheapest total wins; exact ties resolve to the earlier (simpler,
    # smaller-memory) candidate.
    best = min(enumerate(costs), key=lambda item: (item[1].total_s, item[0]))[1]
    return AdvisorDecision(
        strategy=best.strategy,
        device=device.name,
        epochs=int(epochs),
        buffer_fraction=float(buffer_fraction),
        block_bytes=int(block_bytes),
        hd=estimate,
        costs=tuple(costs),
    )


def learn_kappa(
    observations,
    costs: tuple[StrategyCost, ...],
    *,
    default: float = PENALTY_EPOCHS_PER_HD,
    min_epochs: int = MIN_KAPPA_EPOCHS,
) -> tuple[float, int, str]:
    """Fit the clustering penalty κ from recorded per-epoch walls.

    The cost model prices one epoch of strategy ``s`` as
    ``epoch_io_s · (1 + κ·(h_eff − 1))``, so each observed run with known
    ``(epoch_io_s, h_eff)`` and a mean epoch wall ``w`` gives one point on
    the line ``w − epoch_io_s = κ · epoch_io_s·(h_eff − 1)``.  We fit κ by
    least squares through the origin, weighting each run by its epoch
    count, and clamp to ``[0, KAPPA_MAX]`` — a fit outside that range means
    the walls do not follow the penalty model and the default is safer.

    ``observations`` is a list of ``{"strategy": str, "epoch_wall_s": [..]}``
    docs (the engine records the *simulated* walls, which share units with
    the device cost model).  ``costs`` is a prior decision's evidence table
    supplying ``epoch_io_s`` / ``effective_hd`` per strategy.

    Returns ``(kappa, n_epochs, source)`` where ``source`` is ``"observed"``
    when the fit was used and ``"default"`` otherwise.
    """
    by_strategy = {c.strategy: c for c in costs}
    sxx = 0.0
    sxy = 0.0
    n_epochs = 0
    for ob in observations or ():
        cost = by_strategy.get(ob.get("strategy"))
        walls = [float(w) for w in ob.get("epoch_wall_s") or () if float(w) > 0.0]
        if cost is None or not walls:
            continue
        x = cost.epoch_io_s * (cost.effective_hd - 1.0)
        if x <= 0.0:
            # An unclustered (or fully-shuffling) run carries no signal
            # about the penalty slope.
            continue
        y = sum(walls) / len(walls) - cost.epoch_io_s
        n = len(walls)
        sxx += n * x * x
        sxy += n * x * y
        n_epochs += n
    if n_epochs < min_epochs or sxx <= 0.0:
        return default, n_epochs, "default"
    kappa = min(KAPPA_MAX, max(0.0, sxy / sxx))
    return kappa, n_epochs, "observed"


def advise_strategy(
    table,
    device: DeviceModel,
    *,
    block_bytes: int,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    epochs: int = 20,
    compute=None,
    hd: float | None = None,
    max_probe_tuples: int = 20_000,
    candidates: tuple[str, ...] = ADVISOR_CANDIDATES,
    kappa: float = PENALTY_EPOCHS_PER_HD,
    history=None,
) -> AdvisorDecision:
    """The plan-time step: sample ``h_D``, cost the candidates, decide.

    ``table`` is a catalog :class:`~repro.db.catalog.TableInfo`.  Pass
    ``hd`` to skip the sample probe (tests, or a cached statistic).  The
    decision is also counted into ``repro.obs`` (``advisor.choice.*`` and
    the measured ``advisor.hd`` gauge) so the serve layer's live stats see
    every plan-time choice.

    ``history`` is an optional list of earlier per-epoch wall observations
    for this table (``{"strategy", "epoch_wall_s"}`` docs).  When it holds
    at least :data:`MIN_KAPPA_EPOCHS` epochs of usable signal the advisor
    re-costs the candidates with the :func:`learn_kappa` fit instead of the
    calibrated default, and records the provenance on the decision.
    """
    import dataclasses

    from .. import obs

    estimate = (
        estimate_hd(table, block_bytes, max_probe_tuples=max_probe_tuples)
        if hd is None
        else hd
    )
    decision = advise_from_stats(
        n_tuples=table.n_tuples,
        tuple_bytes=table.tuple_bytes,
        hd=estimate,
        device=device,
        block_bytes=block_bytes,
        buffer_fraction=buffer_fraction,
        epochs=epochs,
        compute=compute,
        candidates=candidates,
        kappa=kappa,
    )
    if history:
        learned, n_obs, source = learn_kappa(history, decision.costs, default=kappa)
        if source == "observed":
            decision = advise_from_stats(
                n_tuples=table.n_tuples,
                tuple_bytes=table.tuple_bytes,
                hd=estimate,
                device=device,
                block_bytes=block_bytes,
                buffer_fraction=buffer_fraction,
                epochs=epochs,
                compute=compute,
                candidates=candidates,
                kappa=learned,
            )
        decision = dataclasses.replace(
            decision, kappa=learned, kappa_source=source, kappa_observations=n_obs
        )
    obs.inc(f"advisor.choice.{decision.strategy}")
    obs.set_max("advisor.hd", decision.hd.hd)
    return decision
