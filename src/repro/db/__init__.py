"""The miniature in-DB ML engine: catalog, Volcano operators, query interface."""

from .advisor import PhysicalDesign, advise, recommend_block_size, recommend_buffer
from .catalog import Catalog, TableInfo
from .distributed import DistributedTrainResult, SegmentedMiniDB
from .engine import ENGINE_PROFILE, MiniDB, ResourceUsage, TrainResult
from .errors import (
    EngineError,
    ParseError,
    StorageError,
    UnknownModelError,
    UnknownTableError,
)
from .operators import (
    BlockShuffleOperator,
    MultiplexedReservoirOperator,
    PassThroughAccountingOperator,
    PermutedScanOperator,
    PhysicalOperator,
    SeqScanOperator,
    SGDOperator,
    SlidingWindowOperator,
    TupleShuffleOperator,
)
from .explain import explain_train_plan
from .planner import AccessPathChoice, choose_access_path
from .query import (
    EvaluateQuery,
    ExplainQuery,
    PredictQuery,
    SelectQuery,
    TrainQuery,
    parse_query,
    parse_size,
)
from .systems import (
    BISMARCK_PROFILE,
    DL_FRAMEWORK_PROFILE,
    MADLIB_PROFILE,
    PYTORCH_PROFILE,
    SYSTEM_PROFILES,
    madlib_supports,
    run_framework,
    run_in_db_system,
)
from .threaded import ThreadedTupleShuffleOperator
from .timeline import Timeline, TimelinePoint
from .timing import ComputeProfile, RuntimeContext, overlap_crosscheck, overlap_report

__all__ = [
    "Catalog",
    "TableInfo",
    "MiniDB",
    "SegmentedMiniDB",
    "DistributedTrainResult",
    "TrainResult",
    "ResourceUsage",
    "ENGINE_PROFILE",
    "EngineError",
    "StorageError",
    "ParseError",
    "UnknownTableError",
    "UnknownModelError",
    "PhysicalOperator",
    "SeqScanOperator",
    "BlockShuffleOperator",
    "TupleShuffleOperator",
    "PassThroughAccountingOperator",
    "SGDOperator",
    "PermutedScanOperator",
    "SlidingWindowOperator",
    "MultiplexedReservoirOperator",
    "ThreadedTupleShuffleOperator",
    "overlap_crosscheck",
    "overlap_report",
    "PhysicalDesign",
    "advise",
    "recommend_block_size",
    "recommend_buffer",
    "AccessPathChoice",
    "choose_access_path",
    "TrainQuery",
    "PredictQuery",
    "ExplainQuery",
    "EvaluateQuery",
    "SelectQuery",
    "explain_train_plan",
    "parse_query",
    "parse_size",
    "Timeline",
    "TimelinePoint",
    "ComputeProfile",
    "RuntimeContext",
    "MADLIB_PROFILE",
    "BISMARCK_PROFILE",
    "PYTORCH_PROFILE",
    "DL_FRAMEWORK_PROFILE",
    "SYSTEM_PROFILES",
    "run_in_db_system",
    "run_framework",
    "madlib_supports",
]
