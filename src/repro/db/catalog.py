"""Catalog: named tables backed by heap files, plus their secondary indexes.

``CREATE TABLE``-ing a dataset materialises it into a
:class:`~repro.storage.heapfile.HeapFile` (pages of encoded tuples) and
keeps the logical dataset alongside for end-of-epoch evaluation.  Average
tuple size and values-per-tuple are computed once at load time; the timing
model uses them for I/O and compute charging.

Tables are mutable: :meth:`TableInfo.insert_rows` / :meth:`delete_rids` /
:meth:`update_rids` go through the heap's slot-level DML, *synchronously*
maintain every B+tree index, invalidate the buffer pool's cached decoded
batches for each rewritten page (the PR-3 retry-invalidation contract — a
cached batch must never outlive the bytes it decoded), and refresh the
logical dataset so evaluation and planning see the post-DML table.  With a
``data_dir`` configured, every index rewrite lands durably in its ``.idx``
file before the statement returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix, SparseRow
from ..storage.bufferpool import BufferPool
from ..storage.heapfile import HeapFile
from ..storage.index import BPlusTree, save_index
from ..storage.page import DEFAULT_PAGE_BYTES
from ..storage.rid import RID
from .errors import UnknownIndexError, UnknownTableError, UnsupportedLayoutError
from .query import column_value

__all__ = ["TableIndex", "TableInfo", "Catalog"]


@dataclass
class TableIndex:
    """One secondary index: a B+tree over ``column``, optionally persisted."""

    name: str
    column: str
    tree: BPlusTree
    #: ``.idx`` location; ``None`` keeps the index memory-only.
    path: Path | None = None

    def persist(self) -> None:
        if self.path is not None:
            save_index(self.tree, self.column, self.path)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "column": self.column,
            "n_entries": self.tree.n_entries,
            "height": self.tree.height,
            "path": None if self.path is None else str(self.path),
        }


@dataclass
class TableInfo:
    """One catalog entry."""

    name: str
    dataset: Dataset
    heap: HeapFile
    pool: BufferPool
    indexes: dict[str, TableIndex] = field(default_factory=dict)
    #: Next tuple id to hand out on INSERT (ids are unique, never reused).
    next_tuple_id: int = 0

    @property
    def n_tuples(self) -> int:
        return self.dataset.n_tuples

    @property
    def tuple_bytes(self) -> float:
        """Average on-disk bytes per tuple (payload, not page padding)."""
        return self.heap.payload_bytes / max(1, self.heap.n_tuples)

    @property
    def values_per_tuple(self) -> float:
        """Average feature values per tuple (nnz for sparse, d for dense)."""
        if isinstance(self.dataset.X, SparseMatrix):
            return self.dataset.X.nnz / max(1, self.dataset.n_tuples)
        return float(self.dataset.n_features)

    @property
    def table_bytes(self) -> int:
        return self.heap.total_bytes

    # ------------------------------------------------------------------
    # DML
    def _require_row_layout(self, statement: str) -> None:
        if self.heap.layout != "row":
            raise UnsupportedLayoutError(
                f"{statement} on table {self.name!r}: the {self.heap.layout!r} "
                "layout is immutable; DML needs a row-layout table"
            )

    def insert_rows(self, rows) -> list[RID]:
        """Insert ``(label, features)`` rows; returns their RIDs.

        Features are dense arrays or :class:`SparseRow`\\ s matching the
        table schema.  Every index gains an entry per row before the call
        returns (synchronous maintenance), and the pages written are evicted
        from the buffer pool.
        """
        self._require_row_layout("INSERT")
        rids: list[RID] = []
        for label, features in rows:
            tuple_id = self.next_tuple_id
            self.next_tuple_id += 1
            rid = self.heap.insert(tuple_id, float(label), features)
            self.pool.invalidate(rid.page_id)
            for index in self.indexes.values():
                index.tree.insert(column_value(index.column, label, features), rid)
            rids.append(rid)
        self._after_dml()
        return rids

    def delete_rids(self, rids) -> int:
        """Delete the tuples at ``rids``; returns the count removed."""
        self._require_row_layout("DELETE")
        doomed = [
            (rid, self.heap.read_tuple(self.heap.position_of(rid))) for rid in rids
        ]
        for rid, tup in doomed:
            self.heap.delete(rid)
            self.pool.invalidate(rid.page_id)
            for index in self.indexes.values():
                index.tree.delete(
                    column_value(index.column, tup.label, tup.features), rid
                )
        self._after_dml()
        return len(doomed)

    def update_rids(self, rids, assignments) -> list[tuple[RID, RID]]:
        """Apply ``(column, value)`` assignments to the tuples at ``rids``.

        Returns ``(old_rid, new_rid)`` pairs — in-place updates keep the
        RID; a version too big for its page moves (delete + insert), and
        every index entry follows the key/location change.
        """
        self._require_row_layout("UPDATE")
        victims = [
            (rid, self.heap.read_tuple(self.heap.position_of(rid))) for rid in rids
        ]
        moved: list[tuple[RID, RID]] = []
        for rid, tup in victims:
            label, features = float(tup.label), tup.features
            for column, value in assignments:
                if column == "label":
                    label = float(value)
                else:
                    features = _assign_feature(features, int(column[1:]), float(value))
            new_rid = self.heap.update(rid, tup.tuple_id, label, features)
            self.pool.invalidate(rid.page_id)
            if new_rid.page_id != rid.page_id:
                self.pool.invalidate(new_rid.page_id)
            for index in self.indexes.values():
                old_key = column_value(index.column, tup.label, tup.features)
                new_key = column_value(index.column, label, features)
                if old_key != new_key or new_rid != rid:
                    index.tree.delete(old_key, rid)
                    index.tree.insert(new_key, new_rid)
            moved.append((rid, new_rid))
        self._after_dml()
        return moved

    def _after_dml(self) -> None:
        """Post-statement bookkeeping: dataset refresh + index durability."""
        self.dataset = _dataset_from_heap(self.heap, self.dataset)
        for index in self.indexes.values():
            index.persist()

    # ------------------------------------------------------------------
    def build_index(self, name: str, column: str, path: Path | None = None) -> TableIndex:
        """``CREATE INDEX``: bulk-load a B+tree from one heap scan."""
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists on table {self.name!r}")
        pairs = []
        for position, tup in enumerate(self.heap.scan()):
            pairs.append(
                (
                    column_value(column, tup.label, tup.features),
                    self.heap.rid_of(position),
                )
            )
        index = TableIndex(
            name=name, column=column, tree=BPlusTree.bulk_load(pairs), path=path
        )
        index.persist()
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise UnknownIndexError(f"no index {name!r} on table {self.name!r}")
        index = self.indexes.pop(name)
        if index.path is not None:
            Path(index.path).unlink(missing_ok=True)

    def index_on(self, column: str) -> TableIndex | None:
        """The (first) index whose key is ``column``, if any."""
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None

    def verify_indexes(self) -> None:
        """Audit every index against a fresh heap scan (tests + recovery)."""
        expected = {}
        for position, tup in enumerate(self.heap.scan()):
            rid = self.heap.rid_of(position)
            for index in self.indexes.values():
                expected.setdefault(index.name, set()).add(
                    (column_value(index.column, tup.label, tup.features), rid)
                )
        for index in self.indexes.values():
            index.tree.check_invariants()
            got = set(index.tree.items())
            want = expected.get(index.name, set())
            if got != want:
                missing = want - got
                stray = got - want
                raise AssertionError(
                    f"index {index.name!r} out of sync with heap: "
                    f"{len(missing)} missing, {len(stray)} stray entries"
                )


def _assign_feature(features, k: int, value: float):
    """A copy of ``features`` with feature ``k`` set to ``value``."""
    if isinstance(features, SparseRow):
        dense_positions = features.indices
        pos = int(np.searchsorted(dense_positions, k))
        present = pos < dense_positions.size and dense_positions[pos] == k
        if value == 0.0:
            if not present:
                return features
            return SparseRow(
                np.delete(features.indices, pos),
                np.delete(features.values, pos),
                features.n_features,
            )
        if present:
            values = features.values.copy()
            values[pos] = value
            return SparseRow(features.indices.copy(), values, features.n_features)
        return SparseRow(
            np.insert(features.indices, pos, k),
            np.insert(features.values, pos, value),
            features.n_features,
        )
    out = np.asarray(features, dtype=np.float64).copy()
    out[k] = value
    return out


def _dataset_from_heap(heap: HeapFile, template: Dataset) -> Dataset:
    """Rebuild the logical dataset from a heap scan (post-DML refresh)."""
    labels: list[float] = []
    if heap.schema.sparse:
        rows: list[SparseRow] = []
        for tup in heap.scan():
            labels.append(tup.label)
            rows.append(tup.features)
        X = SparseMatrix.from_rows(rows, heap.schema.n_features)
    else:
        dense: list[np.ndarray] = []
        for tup in heap.scan():
            labels.append(tup.label)
            dense.append(np.asarray(tup.features, dtype=np.float64))
        X = (
            np.stack(dense)
            if dense
            else np.empty((0, heap.schema.n_features), dtype=np.float64)
        )
    return Dataset(
        X=X,
        y=np.asarray(labels, dtype=np.float64),
        name=template.name,
        task=template.task,
        metadata=template.metadata,
    )


class Catalog:
    """Name → table mapping with heap materialisation."""

    def __init__(
        self,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        pool_pages: int = 4096,
        data_dir: str | Path | None = None,
    ):
        self.page_bytes = int(page_bytes)
        self.pool_pages = int(pool_pages)
        self.data_dir = None if data_dir is None else Path(data_dir)
        self._tables: dict[str, TableInfo] = {}

    def create_table(
        self, name: str, dataset: Dataset, compress: bool = False, layout: str = "row"
    ) -> TableInfo:
        """Materialise ``dataset`` as a heap table named ``name``.

        ``layout="columnar"`` stores pages as per-column chunks; reads come
        back lazy, so projections decode only the columns they touch.
        """
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        heap = HeapFile.from_dataset(
            dataset, page_bytes=self.page_bytes, compress=compress, layout=layout
        )
        info = TableInfo(
            name=name,
            dataset=dataset,
            heap=heap,
            pool=BufferPool(heap, capacity_pages=self.pool_pages),
            next_tuple_id=dataset.n_tuples,
        )
        self._tables[name] = info
        return info

    def create_index(self, table: str, name: str, column: str) -> TableIndex:
        """``CREATE INDEX name ON table(column)`` with optional persistence."""
        info = self.get(table)
        path = None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            path = self.data_dir / f"{table}.{name}.idx"
        return info.build_index(name, column, path=path)

    def replace_table(self, name: str, info: TableInfo) -> None:
        """Swap an existing entry (e.g. for fault-injecting storage wrappers)."""
        if name not in self._tables:
            raise UnknownTableError(name)
        self._tables[name] = info

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]

    def get(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        return list(self._tables)

    def labels(self, name: str) -> np.ndarray:
        return np.asarray(self.get(name).dataset.y)
