"""Catalog: named tables backed by heap files.

``CREATE TABLE``-ing a dataset materialises it into a
:class:`~repro.storage.heapfile.HeapFile` (pages of encoded tuples) and
keeps the logical dataset alongside for end-of-epoch evaluation.  Average
tuple size and values-per-tuple are computed once at load time; the timing
model uses them for I/O and compute charging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from ..storage.bufferpool import BufferPool
from ..storage.heapfile import HeapFile
from ..storage.page import DEFAULT_PAGE_BYTES
from .errors import UnknownTableError

__all__ = ["TableInfo", "Catalog"]


@dataclass
class TableInfo:
    """One catalog entry."""

    name: str
    dataset: Dataset
    heap: HeapFile
    pool: BufferPool

    @property
    def n_tuples(self) -> int:
        return self.dataset.n_tuples

    @property
    def tuple_bytes(self) -> float:
        """Average on-disk bytes per tuple (payload, not page padding)."""
        return self.heap.payload_bytes / max(1, self.heap.n_tuples)

    @property
    def values_per_tuple(self) -> float:
        """Average feature values per tuple (nnz for sparse, d for dense)."""
        if isinstance(self.dataset.X, SparseMatrix):
            return self.dataset.X.nnz / max(1, self.dataset.n_tuples)
        return float(self.dataset.n_features)

    @property
    def table_bytes(self) -> int:
        return self.heap.total_bytes


class Catalog:
    """Name → table mapping with heap materialisation."""

    def __init__(self, page_bytes: int = DEFAULT_PAGE_BYTES, pool_pages: int = 4096):
        self.page_bytes = int(page_bytes)
        self.pool_pages = int(pool_pages)
        self._tables: dict[str, TableInfo] = {}

    def create_table(
        self, name: str, dataset: Dataset, compress: bool = False, layout: str = "row"
    ) -> TableInfo:
        """Materialise ``dataset`` as a heap table named ``name``.

        ``layout="columnar"`` stores pages as per-column chunks; reads come
        back lazy, so projections decode only the columns they touch.
        """
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        heap = HeapFile.from_dataset(
            dataset, page_bytes=self.page_bytes, compress=compress, layout=layout
        )
        info = TableInfo(
            name=name,
            dataset=dataset,
            heap=heap,
            pool=BufferPool(heap, capacity_pages=self.pool_pages),
        )
        self._tables[name] = info
        return info

    def replace_table(self, name: str, info: TableInfo) -> None:
        """Swap an existing entry (e.g. for fault-injecting storage wrappers)."""
        if name not in self._tables:
            raise UnknownTableError(name)
        self._tables[name] = info

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]

    def get(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        return list(self._tables)

    def labels(self, name: str) -> np.ndarray:
        return np.asarray(self.get(name).dataset.y)
