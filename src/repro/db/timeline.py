"""End-to-end timelines: accuracy as a function of simulated wall-clock.

The paper's end-to-end figures (11, 16, 18) plot test accuracy against
elapsed time, including any pre-training shuffle.  A :class:`Timeline` is
the corresponding data structure: a setup segment (possibly zero) followed
by one point per epoch at its cumulative finish time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs

__all__ = ["TimelinePoint", "Timeline"]


@dataclass(frozen=True)
class TimelinePoint:
    """One epoch-end observation."""

    time_s: float
    epoch: int
    train_loss: float
    train_score: float
    test_score: float | None


@dataclass
class Timeline:
    """A labelled accuracy-over-time series."""

    system: str
    setup_s: float = 0.0
    setup_note: str = ""
    points: list[TimelinePoint] = field(default_factory=list)

    def append(
        self,
        epoch_wall_s: float,
        epoch: int,
        train_loss: float,
        train_score: float,
        test_score: float | None,
    ) -> None:
        last = self.points[-1].time_s if self.points else self.setup_s
        self.points.append(
            TimelinePoint(last + epoch_wall_s, epoch, train_loss, train_score, test_score)
        )
        # Simulated-clock span: start/end are modelled seconds on the
        # timeline's own axis, not perf_counter time — marked so exporters
        # and reports can keep the two clocks apart.
        obs.add_span(
            "timeline.epoch",
            last,
            last + epoch_wall_s,
            clock="simulated",
            system=self.system,
            epoch=epoch,
        )

    @property
    def total_time_s(self) -> float:
        return self.points[-1].time_s if self.points else self.setup_s

    @property
    def final_test_score(self) -> float | None:
        return self.points[-1].test_score if self.points else None

    def time_to_reach(self, test_score: float) -> float | None:
        """Earliest wall-clock at which the test score reaches the target."""
        for point in self.points:
            if point.test_score is not None and point.test_score >= test_score:
                return point.time_s
        return None

    def speedup_over(self, other: "Timeline", test_score: float) -> float | None:
        """``other``'s time-to-target divided by ours (>1 ⇒ we are faster)."""
        mine = self.time_to_reach(test_score)
        theirs = other.time_to_reach(test_score)
        if mine is None or theirs is None or mine == 0:
            return None
        return theirs / mine

    def to_registry(self, registry=None, prefix: str | None = None) -> None:
        """Project this timeline's aggregates into an obs registry.

        Publishes total simulated wall-clock and setup time as gauges and
        the epoch count as a counter, under ``timeline.<system>`` (or
        ``prefix``), so end-to-end runs land in the same metrics snapshot
        as the live counters.
        """
        reg = registry if registry is not None else obs.get_registry()
        base = prefix if prefix is not None else f"timeline.{self.system}"
        reg.set_max(f"{base}.total_time_s", self.total_time_s)
        reg.set_max(f"{base}.setup_s", self.setup_s)
        reg.inc(f"{base}.epochs", len(self.points))
        if self.final_test_score is not None:
            reg.set_max(f"{base}.final_test_score", float(self.final_test_score))
