"""Volcano-style physical operators (Section 6.2).

The paper adds three operators to PostgreSQL and chains them into a
pull-based pipeline::

    SGDOperator  ←pull←  TupleShuffleOperator  ←pull←  BlockShuffleOperator

Each operator implements ``open() / next() / close() / rescan()``.
``rescan`` is the re-scan mechanism the SGD operator invokes between epochs
(resetting buffers and re-shuffling block ids, like PostgreSQL's
NestedLoopJoin re-scans its inner).

Operators log their physical reads into a
:class:`~repro.db.timing.RuntimeContext`: the BlockShuffle operator charges
page reads (device-speed on buffer-pool misses, memory-speed on hits) and
the TupleShuffle operator marks buffer-fill boundaries so double buffering
can overlap fill I/O with SGD compute.

``SeqScanOperator`` is the No-Shuffle access path (MADlib/Bismarck without a
pre-shuffled copy) and is also used to scan a pre-shuffled table.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from .. import obs
from ..core.buffer import ShuffleBuffer
from ..core.seeding import (
    BLOCK_RESHUFFLE_STREAM,
    MRS_STREAM,
    SLIDING_WINDOW_STREAM,
    TUPLE_SHUFFLE_STREAM,
    derive_rng,
    epoch_rng,
    stream_rng,
)
from ..ml.models.base import SupervisedModel
from ..ml.trainer import ConvergenceHistory
from ..storage.codec import TrainingTuple
from ..storage.retry import ReadExhaustedError
from .catalog import TableInfo
from .errors import StorageError
from .timing import RuntimeContext

__all__ = [
    "PhysicalOperator",
    "SeqScanOperator",
    "FilteredSeqScanOperator",
    "BlockShuffleOperator",
    "RidBlockShuffleOperator",
    "TupleShuffleOperator",
    "PassThroughAccountingOperator",
    "PermutedScanOperator",
    "SlidingWindowOperator",
    "MultiplexedReservoirOperator",
    "SGDOperator",
]


class PhysicalOperator(ABC):
    """The Volcano iterator interface."""

    def open(self) -> None:  # noqa: B027 - optional hook
        """Initialise operator state (ExecInit)."""

    @abstractmethod
    def next(self) -> TrainingTuple | None:
        """Return the next tuple, or ``None`` at end of stream (getNext)."""

    def rescan(self) -> None:  # noqa: B027 - optional hook
        """Reset for another pass (ExecReScan)."""

    def close(self) -> None:  # noqa: B027 - optional hook
        """Release resources."""

    def __iter__(self):
        while True:
            record = self.next()
            if record is None:
                return
            yield record


class SeqScanOperator(PhysicalOperator):
    """Sequential heap scan in page order (the No Shuffle access path)."""

    def __init__(self, table: TableInfo, ctx: RuntimeContext):
        self.table = table
        self.ctx = ctx
        self._page = 0
        self._slot = 0
        self._current: list[TrainingTuple] = []

    def open(self) -> None:
        self._page = 0
        self._slot = 0
        self._current = []

    def next(self) -> TrainingTuple | None:
        while self._slot >= len(self._current):
            if self._page >= self.table.heap.n_pages:
                return None
            try:
                tuples, hit = self.table.pool.get_page_traced(self._page)
            except ReadExhaustedError as exc:
                raise StorageError(
                    f"seq scan of table {self.table.name!r}: {exc}"
                ) from exc
            page_bytes = self.table.heap.pages[self._page].used_bytes
            if hit:
                self.ctx.charge_memory_read(page_bytes)
            else:
                # Sequential page reads: no per-page positioning cost beyond
                # the stream itself; charge as sequential transfer.
                self.ctx.charge_device_read(page_bytes, random=False)
            self._current = tuples
            self._slot = 0
            self._page += 1
        record = self._current[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self.open()


class FilteredSeqScanOperator(PhysicalOperator):
    """Sequential heap scan that emits only the qualifying tuples.

    The No-Shuffle access path under a ``WHERE``: every page is still
    streamed (and charged) in order — a scan cannot skip pages it has not
    read — but only the tuples at the qualifying positions flow upstream.
    The emitted sequence equals a plain :class:`SeqScanOperator` over a
    materialised copy of the filtered subset.
    """

    def __init__(self, table: TableInfo, ctx: RuntimeContext, positions):
        self.table = table
        self.ctx = ctx
        # page_id -> qualifying slots, ascending (heap order is page-major,
        # slot-ascending, so sorted positions land here already ordered).
        self._slots_by_page: dict[int, list[int]] = {}
        for position in positions:
            rid = table.heap.rid_of(int(position))
            self._slots_by_page.setdefault(rid.page_id, []).append(rid.slot)
        self._page = 0
        self._pending: list[TrainingTuple] = []
        self._slot = 0

    def open(self) -> None:
        self._page = 0
        self._pending = []
        self._slot = 0

    def next(self) -> TrainingTuple | None:
        while self._slot >= len(self._pending):
            if self._page >= self.table.heap.n_pages:
                return None
            page_id = self._page
            self._page += 1
            try:
                tuples, hit = self.table.pool.get_page_traced(page_id)
            except ReadExhaustedError as exc:
                raise StorageError(
                    f"filtered seq scan of table {self.table.name!r}: {exc}"
                ) from exc
            page_bytes = self.table.heap.pages[page_id].used_bytes
            if hit:
                self.ctx.charge_memory_read(page_bytes)
            else:
                self.ctx.charge_device_read(page_bytes, random=False)
            wanted = self._slots_by_page.get(page_id)
            if not wanted:
                continue
            row_of = self.table.heap.slot_row_map(page_id)
            self._pending = [tuples[row_of[slot]] for slot in wanted]
            self._slot = 0
        record = self._pending[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self.open()


class BlockShuffleOperator(PhysicalOperator):
    """Random block-order scan (Section 6.2 operator 1).

    Computes ``BN = page_num · page_size / block_size``, shuffles the block
    ids, and streams the tuples of each block's pages.  A fresh shuffle is
    drawn on every ``rescan`` (one per epoch).

    ``within`` selects the in-block traversal (the Learning-to-Shuffle
    refinements): ``"keep"`` streams page order (plain block shuffle),
    ``"shuffle"`` permutes each loaded block's tuples in memory
    (Block-Reshuffle — no extra I/O, one block resident at a time), and
    ``"reverse"`` flips the block's tuple order on odd epochs
    (Block-Reversal).
    """

    def __init__(
        self,
        table: TableInfo,
        ctx: RuntimeContext,
        block_bytes: int,
        seed: int = 0,
        within: str = "keep",
    ):
        if within not in ("keep", "shuffle", "reverse"):
            raise ValueError(f"unknown within-block mode {within!r}")
        self.table = table
        self.ctx = ctx
        self.block_bytes = int(block_bytes)
        self.seed = int(seed)
        self.within = within
        self._epoch = 0
        self._block_order: np.ndarray = np.empty(0, dtype=np.int64)
        self._block_pos = 0
        self._pending: list[TrainingTuple] = []
        self._slot = 0

    @property
    def n_blocks(self) -> int:
        return self.table.heap.n_blocks(self.block_bytes)

    def open(self) -> None:
        rng = epoch_rng(self.seed, self._epoch)
        self._block_order = rng.permutation(self.n_blocks)
        self._block_pos = 0
        self._pending = []
        self._slot = 0

    def _load_next_block(self) -> bool:
        if self._block_pos >= self._block_order.size:
            return False
        block_id = int(self._block_order[self._block_pos])
        self._block_pos += 1
        tuples: list[TrainingTuple] = []
        device_bytes = 0.0
        memory_bytes = 0.0
        with obs.span("db.block", block_id=block_id) as sp:
            for page_id in self.table.heap.block_pages(block_id, self.block_bytes):
                try:
                    page_tuples, hit = self.table.pool.get_page_traced(page_id)
                except ReadExhaustedError as exc:
                    raise StorageError(
                        f"block shuffle scan of table {self.table.name!r}, "
                        f"block {block_id}: {exc}"
                    ) from exc
                page_bytes = self.table.heap.pages[page_id].used_bytes
                if hit:
                    memory_bytes += page_bytes
                else:
                    device_bytes += page_bytes
                tuples.extend(page_tuples)
            sp.set(n_tuples=len(tuples), device_bytes=device_bytes)
        # One random positioning per block; the pages inside a block are
        # contiguous, so they transfer at sequential bandwidth.
        if device_bytes:
            self.ctx.charge_device_read(device_bytes, random=True)
        if memory_bytes:
            self.ctx.charge_memory_read(memory_bytes)
        obs.inc("db.blocks_loaded")
        if self.within == "shuffle":
            rng = derive_rng(self.seed, self._epoch, BLOCK_RESHUFFLE_STREAM, block_id)
            tuples = [tuples[i] for i in rng.permutation(len(tuples))]
        elif self.within == "reverse" and self._epoch % 2:
            tuples.reverse()
        self._pending = tuples
        self._slot = 0
        return True

    def next(self) -> TrainingTuple | None:
        while self._slot >= len(self._pending):
            if not self._load_next_block():
                return None
        record = self._pending[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self._epoch += 1
        self.open()


class RidBlockShuffleOperator(PhysicalOperator):
    """Random block-order scan of a *filtered subset* addressed by RIDs.

    The ``TRAIN ... WHERE`` access path.  ``partition`` is a
    :class:`~repro.db.where.SubsetPartition` — the virtual page/block
    layout a materialised copy of the subset would have — so the epoch
    permutation (same ``epoch_rng`` stream as :class:`BlockShuffleOperator`)
    and the within-block visit order are *bit-identical* to running plain
    CorgiPile over that copy.  Only the physical fetch differs:

    * ``fetch="index"`` — resolve each virtual block's tuples through the
      buffer pool page by page; a pool miss charges one random positioning
      per contiguous run of missed heap pages (index-ordered block fetch);
    * ``fetch="scan"`` — stream the *whole* heap once per epoch at
      sequential speed (the fallback when selectivity is too high for the
      index to win), after which every fetch is memory-resident.
    """

    def __init__(
        self,
        table: TableInfo,
        ctx: RuntimeContext,
        partition,
        seed: int = 0,
        fetch: str = "index",
    ):
        if fetch not in ("index", "scan"):
            raise ValueError(f"unknown fetch mode {fetch!r}")
        self.table = table
        self.ctx = ctx
        self.partition = partition
        self.seed = int(seed)
        self.fetch = fetch
        self._epoch = 0
        self._block_order: np.ndarray = np.empty(0, dtype=np.int64)
        self._block_pos = 0
        self._pending: list[TrainingTuple] = []
        self._slot = 0
        # Epoch-local decoded-page cache: many virtual blocks can touch the
        # same heap page; fetch (and charge) it once per epoch.
        self._page_cache: dict[int, tuple[TrainingTuple, ...]] = {}
        self._row_maps: dict[int, dict[int, int]] = {}
        # Physical counters for the bench gate: blocks/pages actually
        # touched, and pages that went to the device.
        self.blocks_loaded = 0
        self.pages_fetched = 0
        self.device_page_reads = 0

    @property
    def n_blocks(self) -> int:
        return self.partition.n_blocks

    def open(self) -> None:
        rng = epoch_rng(self.seed, self._epoch)
        self._block_order = rng.permutation(self.n_blocks)
        self._block_pos = 0
        self._pending = []
        self._slot = 0
        self._page_cache = {}
        if self.fetch == "scan":
            self._scan_whole_heap()

    def _scan_whole_heap(self) -> None:
        heap = self.table.heap
        for page_id in range(heap.n_pages):
            try:
                tuples, hit = self.table.pool.get_page_traced(page_id)
            except ReadExhaustedError as exc:
                raise StorageError(
                    f"filtered block scan of table {self.table.name!r}: {exc}"
                ) from exc
            page_bytes = heap.pages[page_id].used_bytes
            if hit:
                self.ctx.charge_memory_read(page_bytes)
            else:
                self.ctx.charge_device_read(page_bytes, random=False)
            self._page_cache[page_id] = tuples
            self.pages_fetched += 1
            if not hit:
                self.device_page_reads += 1

    def _fetch_pages(self, block) -> None:
        """Index path: pull the block's heap pages through the pool."""
        heap = self.table.heap
        missed: list[int] = []
        device_bytes = 0.0
        memory_bytes = 0.0
        for page_id in block.page_ids:
            if page_id in self._page_cache:
                continue
            try:
                tuples, hit = self.table.pool.get_page_traced(page_id)
            except ReadExhaustedError as exc:
                raise StorageError(
                    f"index block fetch of table {self.table.name!r}, "
                    f"block {block.block_id}: {exc}"
                ) from exc
            self._page_cache[page_id] = tuples
            self.pages_fetched += 1
            page_bytes = heap.pages[page_id].used_bytes
            if hit:
                memory_bytes += page_bytes
            else:
                missed.append(page_id)
                device_bytes += page_bytes
                self.device_page_reads += 1
        if missed:
            # One random positioning per contiguous run of missed pages;
            # within a run the transfer is sequential.
            runs = 1 + sum(
                1 for a, b in zip(missed, missed[1:]) if b != a + 1
            )
            self.ctx.charge_device_read(device_bytes / runs, random=True, count=runs)
        if memory_bytes:
            self.ctx.charge_memory_read(memory_bytes)

    def _load_next_block(self) -> bool:
        if self._block_pos >= self._block_order.size:
            return False
        block = self.partition.blocks[int(self._block_order[self._block_pos])]
        self._block_pos += 1
        with obs.span("db.rid_block", block_id=block.block_id) as sp:
            if self.fetch == "index":
                self._fetch_pages(block)
            tuples: list[TrainingTuple] = []
            for _position, rid in block.entries:
                row_of = self._row_maps.get(rid.page_id)
                if row_of is None:
                    row_of = self.table.heap.slot_row_map(rid.page_id)
                    self._row_maps[rid.page_id] = row_of
                tuples.append(self._page_cache[rid.page_id][row_of[rid.slot]])
            sp.set(n_tuples=len(tuples), n_pages=len(block.page_ids))
        obs.inc("db.blocks_loaded")
        self.blocks_loaded += 1
        self._pending = tuples
        self._slot = 0
        return True

    def next(self) -> TrainingTuple | None:
        while self._slot >= len(self._pending):
            if not self._load_next_block():
                return None
        record = self._pending[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self._epoch += 1
        self.open()


class TupleShuffleOperator(PhysicalOperator):
    """Buffer a batch of blocks' tuples and shuffle them (operator 2).

    Pulls from its child until the buffer holds ``buffer_tuples`` tuples,
    shuffles the buffer, then emits the shuffled tuples one by one.  Each
    completed fill is reported to the runtime context so the executor can
    overlap the next fill with SGD compute (double buffering, Section 6.3).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        ctx: RuntimeContext,
        buffer_tuples: int,
        seed: int = 0,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        self.child = child
        self.ctx = ctx
        self.buffer_tuples = int(buffer_tuples)
        self.seed = int(seed)
        self._epoch = 0
        self._rng = stream_rng(seed, 0, TUPLE_SHUFFLE_STREAM)
        self._drained: list[TrainingTuple] = []
        self._slot = 0
        self._exhausted = False

    def open(self) -> None:
        self.child.open()
        self._drained = []
        self._slot = 0
        self._exhausted = False

    def _refill(self) -> bool:
        if self._exhausted:
            return False
        buffer: ShuffleBuffer[TrainingTuple] = ShuffleBuffer(self.buffer_tuples, self._rng)
        with obs.span("db.fill") as sp:
            while not buffer.full:
                record = self.child.next()
                if record is None:
                    self._exhausted = True
                    break
                buffer.add(record)
            n = len(buffer)
            sp.set(n_tuples=n)
        if n == 0:
            return False
        self._drained = buffer.shuffle_and_drain()
        self._slot = 0
        self.ctx.end_fill(n)
        return True

    def next(self) -> TrainingTuple | None:
        while self._slot >= len(self._drained):
            if not self._refill():
                return None
        record = self._drained[self._slot]
        self._slot += 1
        return record

    def rescan(self) -> None:
        self._epoch += 1
        self._rng = stream_rng(self.seed, self._epoch, TUPLE_SHUFFLE_STREAM)
        self.child.rescan()
        self._drained = []
        self._slot = 0
        self._exhausted = False


class PassThroughAccountingOperator(PhysicalOperator):
    """Counts tuples into fills without shuffling (for No-Shuffle plans).

    No-Shuffle pipelines have no TupleShuffle, but the timing model still
    needs fill boundaries to pair I/O with compute; this wraps the scan and
    closes a "fill" every ``chunk_tuples`` tuples.
    """

    def __init__(self, child: PhysicalOperator, ctx: RuntimeContext, chunk_tuples: int):
        if chunk_tuples <= 0:
            raise ValueError("chunk_tuples must be positive")
        self.child = child
        self.ctx = ctx
        self.chunk_tuples = int(chunk_tuples)
        self._since_fill = 0

    def open(self) -> None:
        self.child.open()
        self._since_fill = 0

    def next(self) -> TrainingTuple | None:
        record = self.child.next()
        if record is None:
            if self._since_fill:
                self.ctx.end_fill(self._since_fill)
                self._since_fill = 0
            return None
        self._since_fill += 1
        if self._since_fill >= self.chunk_tuples:
            self.ctx.end_fill(self._since_fill)
            self._since_fill = 0
        return record

    def rescan(self) -> None:
        self.child.rescan()
        self._since_fill = 0


class SGDOperator:
    """The root operator: runs SGD epochs by pulling tuples (operator 3).

    Not a tuple-producing iterator — like the paper's SGD operator it drives
    the pipeline, updates the model per tuple (or per mini-batch), and uses
    ``rescan`` on its child between epochs.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        ctx: RuntimeContext,
        model: SupervisedModel,
        schedule,
        epochs: int,
        batch_size: int = 1,
        optimizer=None,
        fused: bool = False,
        fuse_chunk: int = 256,
    ):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if fuse_chunk <= 0:
            raise ValueError("fuse_chunk must be positive")
        self.child = child
        self.ctx = ctx
        self.model = model
        self.schedule = schedule
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.optimizer = optimizer
        # Fused mode collates pulled tuples into runs of ``fuse_chunk`` and
        # applies the models' vectorised ``step_block`` kernel — still one
        # model update per tuple in pipeline order, so the visit-order
        # semantics of the Volcano plan are unchanged.
        self.fused = bool(fused)
        self.fuse_chunk = int(fuse_chunk)
        self.epoch_wall_times: list[float] = []
        # Measured (real) per-epoch walls, alongside the simulated ones —
        # the advisor's "observed" feedback channel.
        self.measured_wall_times: list[float] = []

    def _run_epoch(self, lr: float) -> int:
        from ..core.dataloader import collate

        count = 0
        if self.batch_size == 1 and self.optimizer is None:
            if self.fused:
                pending: list[TrainingTuple] = []
                for record in self.child:
                    pending.append(record)
                    count += 1
                    if len(pending) >= self.fuse_chunk:
                        run = collate(pending)
                        self.model.step_block(run.X, run.y, lr)
                        pending = []
                if pending:
                    run = collate(pending)
                    self.model.step_block(run.X, run.y, lr)
                return count
            for record in self.child:
                self.model.step_example(record.features, record.label, lr)
                count += 1
            return count
        pending: list[TrainingTuple] = []
        for record in self.child:
            pending.append(record)
            count += 1
            if len(pending) == self.batch_size:
                batch = collate(pending)
                grads = self.model.gradient(batch.X, batch.y)
                self.optimizer.step(grads, lr)
                pending = []
        if pending:
            batch = collate(pending)
            grads = self.model.gradient(batch.X, batch.y)
            self.optimizer.step(grads, lr)
        return count

    def execute(self, evaluate) -> ConvergenceHistory:
        """Run all epochs; ``evaluate(epoch, lr, tuples_seen)`` records metrics.

        An unrecoverable storage fault surfaces as
        :class:`~repro.db.errors.StorageError` with partial progress
        attached (completed epochs' history, tuples applied); the pipeline
        is always closed, even on that path.
        """
        history = ConvergenceHistory(strategy="in-db", model=type(self.model).__name__)
        self.child.open()
        tuples_seen = 0
        try:
            for epoch in range(self.epochs):
                lr = float(self.schedule(epoch))
                with obs.span("db.epoch", epoch=epoch, lr=lr) as sp:
                    t0 = time.perf_counter()
                    tuples_seen += self._run_epoch(lr)
                    measured_wall = time.perf_counter() - t0
                    simulated_wall = self.ctx.epoch_wall_time()
                    sp.set(tuples_seen=tuples_seen, simulated_wall_s=simulated_wall)
                self.epoch_wall_times.append(simulated_wall)
                self.measured_wall_times.append(measured_wall)
                obs.inc("db.epochs")
                history.append(evaluate(epoch, lr, tuples_seen))
                if epoch + 1 < self.epochs:
                    self.child.rescan()
        except StorageError as exc:
            exc.epochs_completed = history.epochs
            exc.tuples_seen = tuples_seen
            exc.partial = history
            raise
        finally:
            self.child.close()
        return history


class PermutedScanOperator(PhysicalOperator):
    """Scan tuples in a fresh random permutation per pass.

    Two uses, selected by ``charge``:

    * ``"sort"`` — the Epoch Shuffle access path: the realistic
      implementation re-sorts the table before each epoch, so the operator
      charges an external-sort pass (sequential read + write passes over
      the whole table) at the start of every pass and then emits tuples at
      the buffer pool's speed;
    * ``"random_tuple"`` — the vanilla-SGD access path of Section 4.2: one
      random device access per tuple on a buffer-pool miss, the
      catastrophic left end of Figure 20.
    """

    SORT_PASSES = 4

    def __init__(self, table, ctx, seed: int = 0, charge: str = "sort"):
        if charge not in ("sort", "random_tuple"):
            raise ValueError(f"unknown charge mode {charge!r}")
        self.table = table
        self.ctx = ctx
        self.seed = int(seed)
        self.charge = charge
        self._epoch = 0
        self._perm = np.empty(0, dtype=np.int64)
        self._pos = 0
        # position -> (page_id, slot) resolved once from the heap layout.
        self._page_of: list[int] = []
        self._slot_of: list[int] = []
        for page in table.heap.pages:
            for slot in range(page.n_tuples):
                self._page_of.append(page.page_id)
                self._slot_of.append(slot)

    def open(self) -> None:
        rng = epoch_rng(self.seed, self._epoch)
        self._perm = rng.permutation(self.table.n_tuples)
        self._pos = 0
        if self.charge == "sort":
            total = float(self.table.heap.payload_bytes)
            for p in range(self.SORT_PASSES):
                self.ctx.charge_device_read(total, random=False)

    def next(self) -> TrainingTuple | None:
        if self._pos >= self._perm.size:
            return None
        position = int(self._perm[self._pos])
        self._pos += 1
        page_id = self._page_of[position]
        try:
            tuples, hit = self.table.pool.get_page_traced(page_id)
        except ReadExhaustedError as exc:
            raise StorageError(
                f"permuted scan of table {self.table.name!r}: {exc}"
            ) from exc
        page_bytes = self.table.heap.pages[page_id].used_bytes
        if self.charge == "random_tuple":
            if hit:
                self.ctx.charge_memory_read(self.table.tuple_bytes)
            else:
                self.ctx.charge_device_read(page_bytes, random=True)
        else:
            self.ctx.charge_memory_read(self.table.tuple_bytes)
        return tuples[self._slot_of[position]]

    def rescan(self) -> None:
        self._epoch += 1
        self.open()


class SlidingWindowOperator(PhysicalOperator):
    """TensorFlow's sliding-window sampling as a Volcano operator.

    Keeps a window of tuples pulled from the child; each ``next()`` returns
    a uniformly random window slot and refills the slot from the child;
    when the child is exhausted the window drains in random order.  Pure
    sequential I/O underneath — and, exactly as in Section 3.3, a clustered
    child stream stays essentially clustered.
    """

    def __init__(self, child: PhysicalOperator, window_tuples: int, seed: int = 0):
        if window_tuples <= 0:
            raise ValueError("window_tuples must be positive")
        self.child = child
        self.window_tuples = int(window_tuples)
        self.seed = int(seed)
        self._epoch = 0
        self._rng = stream_rng(seed, 0, SLIDING_WINDOW_STREAM)
        self._window: list[TrainingTuple] = []
        self._primed = False

    def open(self) -> None:
        self.child.open()
        self._window = []
        self._primed = False

    def _prime(self) -> None:
        while len(self._window) < self.window_tuples:
            record = self.child.next()
            if record is None:
                break
            self._window.append(record)
        self._primed = True

    def next(self) -> TrainingTuple | None:
        if not self._primed:
            self._prime()
        if not self._window:
            return None
        slot = int(self._rng.integers(len(self._window)))
        record = self._window[slot]
        incoming = self.child.next()
        if incoming is None:
            # Drain phase: remove the emitted slot.
            self._window[slot] = self._window[-1]
            self._window.pop()
        else:
            self._window[slot] = incoming
        return record

    def rescan(self) -> None:
        self._epoch += 1
        self._rng = stream_rng(self.seed, self._epoch, SLIDING_WINDOW_STREAM)
        self.child.rescan()
        self._window = []
        self._primed = False


class MultiplexedReservoirOperator(PhysicalOperator):
    """Bismarck's MRS shuffle as a Volcano operator (Section 3.4).

    One logical thread scans the child with reservoir sampling (selected
    tuples enter buffer B1, dropped tuples flow to SGD); the other loops
    over a snapshot buffer B2, interleaved every ``mix_interval`` dropped
    tuples.  The epoch emits exactly one tuple per child tuple, so buffered
    tuples can repeat — the data-skew caveat the paper notes.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        buffer_tuples: int,
        seed: int = 0,
        mix_interval: int = 2,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        if mix_interval <= 0:
            raise ValueError("mix_interval must be positive")
        self.child = child
        self.buffer_tuples = int(buffer_tuples)
        self.mix_interval = int(mix_interval)
        self.seed = int(seed)
        self._epoch = 0
        self._reset_state()

    def _reset_state(self) -> None:
        self._rng = stream_rng(self.seed, self._epoch, MRS_STREAM)
        self._reservoir: list[TrainingTuple] = []
        self._loop_buffer: list[TrainingTuple] = []
        self._scanned = 0
        self._emitted = 0
        self._dropped_since_mix = 0
        self._scan_done = False

    def open(self) -> None:
        self.child.open()
        self._reset_state()

    def _emit_from_loop(self) -> TrainingTuple:
        if not self._loop_buffer:
            self._loop_buffer = list(self._reservoir)
        self._emitted += 1
        return self._loop_buffer[int(self._rng.integers(len(self._loop_buffer)))]

    def next(self) -> TrainingTuple | None:
        while True:
            if self._scan_done:
                if self._emitted >= self._scanned:
                    return None
                return self._emit_from_loop()
            if self._dropped_since_mix >= self.mix_interval:
                self._dropped_since_mix = 0
                # One SGD step per scanned tuple: thread 2 only fills the
                # quota the scan has earned so far.
                if self._reservoir and self._emitted < self._scanned:
                    return self._emit_from_loop()
            record = self.child.next()
            if record is None:
                self._scan_done = True
                continue
            self._scanned += 1
            if len(self._reservoir) < self.buffer_tuples:
                self._reservoir.append(record)
                continue
            j = int(self._rng.integers(self._scanned))
            if j < self.buffer_tuples:
                dropped = self._reservoir[j]
                self._reservoir[j] = record
            else:
                dropped = record
            self._dropped_since_mix += 1
            self._emitted += 1
            return dropped

    def rescan(self) -> None:
        self._epoch += 1
        self.child.rescan()
        self._reset_state()
