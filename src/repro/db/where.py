"""``WHERE`` pushdown for TRAIN/SELECT/DML: positions, paths, partitions.

Three pieces live here:

* :func:`qualifying_positions` / :func:`index_qualifying_positions` —
  resolve a :class:`~repro.db.query.Predicate` to the heap positions that
  satisfy it, either by a vectorised scan of the logical arrays or by a
  B+tree range probe plus residual filter.  Both return the same set, in
  heap order — the physical path only changes what I/O gets *charged*.

* :func:`choose_where_path` — the planner rule.  An index-ordered block
  fetch pays one random positioning per qualifying-page run; a full scan
  pays one sequential pass over the whole heap.  The cheaper estimate (on
  the query's device) wins, so high selectivity flips the plan to the
  scan exactly as in a real optimiser.

* :func:`subset_partition` — the bit-exactness keystone.  ``TRAIN ...
  WHERE`` must visit tuples in the same order CorgiPile would visit a
  *materialised* copy of the filtered subset (``HeapFile.from_dataset``
  over ``dataset.subset(positions)``).  Instead of copying, we replay the
  heap's page-packing rule over the qualifying tuples' payload lengths,
  producing *virtual* pages and blocks that partition the RID list exactly
  as the copy's real pages would.  The block-shuffle permutation then acts
  on virtual block ids, and every fetch resolves through the original
  heap's buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.heapfile import HeapFile
from ..storage.rid import RID
from .catalog import TableIndex, TableInfo
from .errors import UnsupportedPredicateError
from .query import Predicate

__all__ = [
    "VirtualBlock",
    "SubsetPartition",
    "qualifying_positions",
    "index_qualifying_positions",
    "index_candidates",
    "usable_indexes",
    "check_supported_shape",
    "plan_where_access",
    "subset_partition",
    "choose_where_path",
]


def qualifying_positions(table: TableInfo, predicate: Predicate) -> np.ndarray:
    """Heap positions satisfying ``predicate``, by vectorised evaluation.

    Position ``i`` of the heap is row ``i`` of the logical dataset (the
    heap is built from it in order and rebuilt in heap order after DML),
    so a mask over the arrays *is* the answer.  Like the advisor's ``h_D``
    probe, this touches only in-memory statistics — no simulated I/O.
    """
    dataset = table.dataset
    mask = predicate.mask(dataset.X, dataset.y)
    return np.flatnonzero(mask)


def index_qualifying_positions(
    table: TableInfo, index: TableIndex, predicate: Predicate
) -> np.ndarray:
    """Heap positions satisfying ``predicate``, via a B+tree range probe.

    The index bounds the candidates with ``predicate.interval_for`` on its
    key column; the remaining terms are applied as a residual filter.  The
    result is sorted into heap order so downstream block partitioning sees
    the same sequence as a filtered scan.
    """
    interval = predicate.interval_for(index.column)
    if interval is None:
        return qualifying_positions(table, predicate)
    lo, hi, lo_incl, hi_incl = interval
    candidates = sorted(
        table.heap.position_of(rid)
        for _key, rid in index.tree.range(
            lo, hi, lo_inclusive=lo_incl, hi_inclusive=hi_incl
        )
    )
    if not candidates:
        return np.empty(0, dtype=np.int64)
    # Residual: the interval covered only the key column; re-check the full
    # predicate (extra terms, != terms) over the candidate rows.
    dataset = table.dataset
    mask = predicate.mask(dataset.X, dataset.y)
    return np.asarray([p for p in candidates if mask[p]], dtype=np.int64)


def index_candidates(table: TableInfo, index: TableIndex, predicate: Predicate) -> np.ndarray:
    """Sorted heap positions inside the index's usable interval (pre-residual)."""
    interval = predicate.interval_for(index.column)
    if interval is None:
        raise ValueError(f"index {index.name!r} has no usable interval for this predicate")
    lo, hi, lo_incl, hi_incl = interval
    return np.asarray(
        sorted(
            table.heap.position_of(rid)
            for _key, rid in index.tree.range(
                lo, hi, lo_inclusive=lo_incl, hi_inclusive=hi_incl
            )
        ),
        dtype=np.int64,
    )


def usable_indexes(table: TableInfo, predicate: Predicate) -> list[TableIndex]:
    """Every index whose key column carries a usable range in the predicate."""
    out = []
    for column in predicate.columns():
        index = table.index_on(column)
        if index is not None and predicate.interval_for(column) is not None:
            out.append(index)
    return out


def check_supported_shape(predicate: Predicate) -> None:
    """Reject predicate shapes the costed TRAIN planner cannot serve.

    The supported shape is an AND of per-column ranges.  A ``!=`` term has
    no range form; it used to fall through to a silent full scan, which
    made the plan surface lie about what would execute — now it fails
    loudly with a typed error.
    """
    for term in predicate.terms:
        if term.op == "!=":
            raise UnsupportedPredicateError(
                f"WHERE {predicate.render()}: '!=' has no range form; the "
                "costed TRAIN ... WHERE planner serves AND-of-ranges "
                "predicates only (<, <=, =, >=, >)"
            )


def _page_fetch_estimate(heap: HeapFile, positions, device) -> tuple[float, int, int]:
    """``(est_s, n_pages, runs)`` of an index-ordered fetch of ``positions``."""
    qual_pages = sorted({heap.rid_of(int(p)).page_id for p in positions})
    runs = 0
    prev = None
    for page_id in qual_pages:
        if prev is None or page_id != prev + 1:
            runs += 1
        prev = page_id
    avg_page_bytes = heap.payload_bytes / max(1, heap.n_pages)
    est = device.random_time(avg_page_bytes * len(qual_pages) / max(1, runs), runs)
    return est, len(qual_pages), runs


def plan_where_access(
    table: TableInfo, predicate: Predicate, device
) -> tuple[np.ndarray, TableIndex | None, dict]:
    """Costed candidate-enumeration choice for a composite predicate.

    Enumerates every access path — full scan, one range probe per usable
    index, and (with two or more usable indexes) their *intersection* —
    charges each by the pages its candidate set touches, and resolves the
    qualifying positions through the cheapest.  All paths return the same
    positions (the full predicate is always re-applied as a residual
    filter); only the charged I/O differs.

    Returns ``(positions, index, doc)``: ``index`` is the probe index when
    a single-index path won (``None`` for scan/intersect) and ``doc`` is
    the costed path table merged into ``extra["where"]`` / EXPLAIN.
    """
    check_supported_shape(predicate)
    heap = table.heap
    indexes = usable_indexes(table, predicate)
    candidates = {ix.name: index_candidates(table, ix, predicate) for ix in indexes}
    paths: dict[str, dict] = {
        "scan": {
            "est_s": device.sequential_time(float(heap.payload_bytes)),
            "n_candidates": int(table.n_tuples),
        }
    }
    for ix in indexes:
        cand = candidates[ix.name]
        est, n_pages, runs = _page_fetch_estimate(heap, cand, device)
        paths[f"index:{ix.name}"] = {
            "est_s": est,
            "n_candidates": int(cand.size),
            "n_pages": n_pages,
            "page_runs": runs,
        }
    inter = None
    if len(indexes) >= 2:
        inter = candidates[indexes[0].name]
        for ix in indexes[1:]:
            inter = np.intersect1d(inter, candidates[ix.name], assume_unique=True)
        est, n_pages, runs = _page_fetch_estimate(heap, inter, device)
        paths["intersect"] = {
            "est_s": est,
            "n_candidates": int(inter.size),
            "n_pages": n_pages,
            "page_runs": runs,
            "indexes": [ix.name for ix in indexes],
        }
    # Cheapest wins; an exact tie resolves to the scan (simplest plan, and
    # a tied "random" fetch degenerated into a sequential pass anyway).
    access = min(paths, key=lambda name: (paths[name]["est_s"], name != "scan"))
    index = None
    if access == "scan":
        positions = qualifying_positions(table, predicate)
    elif access == "intersect":
        dataset = table.dataset
        mask = predicate.mask(dataset.X, dataset.y)
        positions = inter[mask[inter]] if inter.size else inter
    else:
        index = next(ix for ix in indexes if f"index:{ix.name}" == access)
        positions = index_qualifying_positions(table, index, predicate)
    doc = {
        "access": access,
        "paths": {
            name: {k: (round(v, 9) if isinstance(v, float) else v) for k, v in p.items()}
            for name, p in paths.items()
        },
    }
    return positions, index, doc


@dataclass(frozen=True)
class VirtualBlock:
    """One virtual block: the qualifying tuples a materialised copy's
    block would hold, addressed by their *original* heap locations."""

    block_id: int
    #: ``(position, rid)`` in visit order (virtual page, then slot order).
    entries: tuple[tuple[int, RID], ...]
    #: Distinct real heap pages the entries live on, in first-touch order.
    page_ids: tuple[int, ...]


@dataclass(frozen=True)
class SubsetPartition:
    """The virtual page/block layout of a filtered subset."""

    blocks: tuple[VirtualBlock, ...]
    n_tuples: int
    n_virtual_pages: int
    pages_per_block: int
    page_bytes: int
    block_bytes: int
    #: Distinct real heap pages holding any qualifying tuple.
    n_heap_pages: int = field(default=0)
    #: Total payload bytes the materialised copy would hold.
    payload_bytes: int = field(default=0)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def subset_partition(
    heap: HeapFile, positions: np.ndarray, block_bytes: int
) -> SubsetPartition:
    """Replay ``HeapFile.from_dataset`` packing over the filtered subset.

    A materialised copy would re-encode tuple ``positions[i]`` with the new
    id ``i`` and append it; a page closes when the next payload no longer
    fits.  Uncompressed payloads have id-independent length (fixed-width
    header), so the stored slot length is the copy's length; compressed
    payloads are re-encoded with the new id to get the exact zlib size.
    Blocks then group virtual pages by the heap's page-run rule.
    """
    if block_bytes < heap.page_bytes:
        raise ValueError("block_bytes must be at least one page")
    pages: list[list[tuple[int, RID]]] = []
    used = 0
    capacity = 0
    total_payload = 0
    for new_id, position in enumerate(positions):
        position = int(position)
        rid = heap.rid_of(position)
        if heap.compress:
            tup = heap.read_tuple(position)
            length = len(heap.encode_payload(new_id, tup.label, tup.features))
        else:
            length = heap.pages[rid.page_id].payload_length(rid.slot)
        if not pages or used + length > capacity:
            pages.append([])
            used = 0
            capacity = max(heap.page_bytes, length)
        pages[-1].append((position, rid))
        used += length
        total_payload += length

    per = max(1, int(block_bytes) // heap.page_bytes)
    blocks: list[VirtualBlock] = []
    for block_id in range(0, -(-len(pages) // per) if pages else 0):
        entries: list[tuple[int, RID]] = []
        for vpage in pages[block_id * per : (block_id + 1) * per]:
            entries.extend(vpage)
        page_ids: list[int] = []
        seen: set[int] = set()
        for _position, rid in entries:
            if rid.page_id not in seen:
                seen.add(rid.page_id)
                page_ids.append(rid.page_id)
        blocks.append(
            VirtualBlock(
                block_id=block_id, entries=tuple(entries), page_ids=tuple(page_ids)
            )
        )
    all_pages = {rid.page_id for block in blocks for _p, rid in block.entries}
    return SubsetPartition(
        blocks=tuple(blocks),
        n_tuples=int(len(positions)),
        n_virtual_pages=len(pages),
        pages_per_block=per,
        page_bytes=heap.page_bytes,
        block_bytes=int(block_bytes),
        n_heap_pages=len(all_pages),
        payload_bytes=total_payload,
    )


def choose_where_path(
    table: TableInfo,
    predicate: Predicate,
    positions: np.ndarray,
    device,
    index: TableIndex | None = None,
    access: str | None = None,
) -> dict:
    """Pick ``index`` vs ``scan`` fetch for a filtered query; returns the
    decision document stored in ``query.extra["where"]`` and rendered by
    EXPLAIN.

    The index path touches only the pages holding qualifying tuples — one
    random positioning per contiguous page run — so its cost tracks
    *selectivity*; the scan path streams the whole heap once regardless.
    """
    heap = table.heap
    n_qual = int(len(positions))
    qual_pages = sorted({heap.rid_of(int(p)).page_id for p in positions})
    runs = 0
    prev = None
    for page_id in qual_pages:
        if prev is None or page_id != prev + 1:
            runs += 1
        prev = page_id
    avg_page_bytes = heap.payload_bytes / max(1, heap.n_pages)
    est_index_s = device.random_time(
        avg_page_bytes * len(qual_pages) / max(1, runs), runs
    )
    est_scan_s = device.sequential_time(float(heap.payload_bytes))
    # With a plan_where_access decision the candidate enumeration is
    # settled: any non-scan access knows the qualifying pages up front, so
    # the physical fetch may position into them directly.
    if access is not None:
        usable_index = access != "scan"
    else:
        usable_index = (
            index is not None and predicate.interval_for(index.column) is not None
        )
    # Strict <: a tie means the "random" fetch degenerated into one
    # sequential pass anyway, so take the plain scan.
    fetch = "index" if usable_index and est_index_s < est_scan_s else "scan"
    interval = None
    if index is not None and predicate.interval_for(index.column) is not None:
        lo, hi, lo_incl, hi_incl = predicate.interval_for(index.column)
        interval = {
            "lo": lo,
            "hi": hi,
            "lo_inclusive": lo_incl,
            "hi_inclusive": hi_incl,
        }
    return {
        "predicate": predicate.render(),
        "index": index.name if index is not None else None,
        "index_column": index.column if index is not None else None,
        "interval": interval,
        "n_matching": n_qual,
        "n_tuples": int(table.n_tuples),
        "selectivity": n_qual / max(1, table.n_tuples),
        "n_qualifying_pages": len(qual_pages),
        "n_heap_pages": int(heap.n_pages),
        "page_runs": runs,
        "est_index_s": est_index_s,
        "est_scan_s": est_scan_s,
        "fetch": fetch,
    }
