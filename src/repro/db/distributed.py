"""A segmented (Greenplum-style) parallel in-DB training engine.

Section 8 of the paper points at distributed data systems — MADlib on
Greenplum, Vertica-ML, BigQuery ML — as the natural next hosts for
CorgiPile.  This module builds that extension: a coordinator plus
``n_segments`` segment engines, each owning a horizontal slice of the
table.  Training runs the Section 5 recipe *inside* the database:

1. blocks are distributed across segments at load time (block-granular
   round-robin — each segment's slice is itself block-addressable);
2. every segment runs its own BlockShuffle → TupleShuffle pipeline with a
   ``1/PN``-sized buffer and a shared per-epoch seed;
3. mini-batch steps take ``batch/PN`` tuples from every segment and the
   coordinator averages the gradients (the AllReduce of Section 5.1),
   so the effective global order matches single-engine CorgiPile with a
   ``PN``-times-larger buffer (Section 5.2).

Wall-clock: segments work in parallel, so an epoch costs the *slowest*
segment's pipeline time plus a per-batch synchronisation charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataloader import collate
from ..data.dataset import Dataset
from ..ml.optim import SGD, Optimizer
from ..ml.schedules import ExponentialDecay
from ..ml.trainer import ConvergenceHistory, EpochRecord
from ..storage.codec import TrainingTuple
from ..storage.iomodel import SSD, DeviceModel
from .catalog import Catalog, TableInfo
from .engine import ENGINE_PROFILE
from .errors import EngineError, UnknownTableError
from .operators import BlockShuffleOperator, TupleShuffleOperator
from .query import TrainQuery
from .timeline import Timeline
from .timing import ComputeProfile, RuntimeContext

__all__ = ["SegmentedMiniDB", "DistributedTrainResult"]

# Coordinator-side cost of one gradient synchronisation (AllReduce over a
# rack-local interconnect; scaled consistently with the device models).
ALLREDUCE_LATENCY_S = 2e-6


@dataclass
class DistributedTrainResult:
    """Outcome of one distributed TRAIN query."""

    model: object
    history: ConvergenceHistory
    timeline: Timeline
    per_segment_tuples: list[int]
    n_segments: int


class SegmentedMiniDB:
    """Coordinator over ``n_segments`` independent segment catalogs."""

    def __init__(
        self,
        n_segments: int,
        device: DeviceModel = SSD,
        compute: ComputeProfile = ENGINE_PROFILE,
        page_bytes: int = 1024,
    ):
        if n_segments <= 0:
            raise ValueError("n_segments must be positive")
        self.n_segments = int(n_segments)
        self.device = device
        self.compute = compute
        self.page_bytes = int(page_bytes)
        self._segments: dict[str, list[TableInfo]] = {}
        self._datasets: dict[str, Dataset] = {}

    # ------------------------------------------------------------------
    def create_table(
        self, name: str, dataset: Dataset, distribution_block: int = 40
    ) -> list[TableInfo]:
        """Distribute ``dataset`` across segments, block-granular round-robin.

        Blocks (runs of ``distribution_block`` contiguous tuples) go to
        segments in round-robin order, preserving each block's internal
        order — the same physical layout a Greenplum distribution policy
        would produce for a bulk load.
        """
        if name in self._segments:
            raise ValueError(f"table {name!r} already exists")
        if distribution_block <= 0:
            raise ValueError("distribution_block must be positive")
        slices: list[list[np.ndarray]] = [[] for _ in range(self.n_segments)]
        block_id = 0
        for lo in range(0, dataset.n_tuples, distribution_block):
            hi = min(lo + distribution_block, dataset.n_tuples)
            slices[block_id % self.n_segments].append(np.arange(lo, hi))
            block_id += 1
        infos = []
        for seg, parts in enumerate(slices):
            if not parts:
                raise ValueError(
                    f"segment {seg} received no data; reduce n_segments or "
                    "distribution_block"
                )
            indices = np.concatenate(parts)
            segment_dataset = dataset.subset(indices, suffix=f"seg{seg}")
            catalog = Catalog(page_bytes=self.page_bytes, pool_pages=1 << 30)
            infos.append(catalog.create_table(name, segment_dataset))
        self._segments[name] = infos
        self._datasets[name] = dataset
        return infos

    def segment_tables(self, name: str) -> list[TableInfo]:
        try:
            return self._segments[name]
        except KeyError:
            raise UnknownTableError(name) from None

    # ------------------------------------------------------------------
    def train(self, query: TrainQuery, test: Dataset | None = None) -> DistributedTrainResult:
        """Run a distributed TRAIN query with gradient-synchronised SGD."""
        if query.strategy != "corgipile":
            raise EngineError(
                "the distributed engine implements the corgipile access path"
            )
        if query.batch_size % self.n_segments != 0:
            raise EngineError(
                f"batch_size ({query.batch_size}) must be divisible by "
                f"n_segments ({self.n_segments}) for gradient synchronisation"
            )
        tables = self.segment_tables(query.table)
        full_dataset = self._datasets[query.table]

        from .engine import MiniDB  # reuse the model factory

        model = MiniDB()._build_model(query, tables[0])
        optimizer: Optimizer = SGD(model)
        schedule = ExponentialDecay(query.learning_rate, query.decay)
        per_segment_batch = max(1, query.batch_size // self.n_segments)

        contexts = [
            RuntimeContext(
                device=self.device,
                compute=self.compute,
                double_buffer=query.double_buffer,
                values_per_tuple=table.values_per_tuple,
            )
            for table in tables
        ]
        pipelines = []
        for table, ctx in zip(tables, contexts):
            scan = BlockShuffleOperator(table, ctx, query.block_size, seed=query.seed)
            buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
            pipelines.append(TupleShuffleOperator(scan, ctx, buffer_tuples, seed=query.seed))
        for pipeline in pipelines:
            pipeline.open()

        history = ConvergenceHistory(
            strategy=f"distributed-corgipile x{self.n_segments}",
            model=type(model).__name__,
        )
        timeline = Timeline(system=f"segmented/{self.n_segments}")
        tuples_seen = 0
        per_segment_tuples = [0] * self.n_segments
        for epoch in range(query.max_epoch_num):
            lr = float(schedule(epoch))
            sync_steps = 0
            while True:
                # Pull batch/PN tuples from every segment; stop the epoch
                # when any segment is exhausted (ragged remainders are
                # dropped, like DistributedSampler's even division).
                slices: list[list[TrainingTuple]] = []
                exhausted = False
                for seg, pipeline in enumerate(pipelines):
                    chunk: list[TrainingTuple] = []
                    while len(chunk) < per_segment_batch:
                        record = pipeline.next()
                        if record is None:
                            exhausted = True
                            break
                        chunk.append(record)
                    if exhausted:
                        break
                    per_segment_tuples[seg] += len(chunk)
                    slices.append(chunk)
                if exhausted:
                    break
                batch = collate([record for chunk in slices for record in chunk])
                grads = model.gradient(batch.X, batch.y)
                optimizer.step(grads, lr)
                tuples_seen += len(batch)
                sync_steps += 1
            # Parallel epoch time: slowest segment + AllReduce charges.
            segment_walls = [ctx.epoch_wall_time() for ctx in contexts]
            epoch_wall = max(segment_walls) + sync_steps * ALLREDUCE_LATENCY_S
            record = EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=model.loss(full_dataset.X, full_dataset.y),
                train_score=model.score(full_dataset.X, full_dataset.y),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
            history.append(record)
            timeline.append(
                epoch_wall, epoch, record.train_loss, record.train_score, record.test_score
            )
            if epoch + 1 < query.max_epoch_num:
                for pipeline in pipelines:
                    pipeline.rescan()
        for pipeline in pipelines:
            pipeline.close()
        return DistributedTrainResult(
            model=model,
            history=history,
            timeline=timeline,
            per_segment_tuples=per_segment_tuples,
            n_segments=self.n_segments,
        )
