"""MiniDB — the in-database ML engine (Section 6).

Glues the catalog, the Volcano operators, the timing model, and the query
interface together::

    db = MiniDB(device=SSD)
    db.create_table("higgs", clustered_train)
    result = db.execute(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.1, "
        "max_epoch_num = 5, block_size = 10MB, buffer_fraction = 0.1",
        test=test_set,
    )
    result.timeline  # accuracy vs simulated seconds
    db.execute(f"SELECT * FROM higgs PREDICT BY {result.model_id}")

Access-path selection by ``strategy``:

* ``corgipile`` — BlockShuffle → TupleShuffle → SGD (double-buffered);
* ``corgipile_single_buffer`` — same plan, single-buffered TupleShuffle;
* ``block_only`` — BlockShuffle → SGD (the Section 7.3 ablation);
* ``no_shuffle`` — SeqScan → SGD;
* ``shuffle_once`` — an offline full shuffle materialises a second copy
  (charged as an external sort and 2× disk), then SeqScan → SGD over it.

Trained models are kept in the engine's model store as in-memory objects
with ids, as the paper describes (a C struct with an ID in the kernel).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace

import numpy as np

from ..data.dataset import Dataset
from ..ml.models.base import SupervisedModel
from ..ml.models.linear import LinearRegression, LinearSVM, LogisticRegression
from ..ml.models.softmax import SoftmaxRegression
from ..ml.optim import SGD
from ..ml.schedules import ExponentialDecay
from ..ml.trainer import ConvergenceHistory, EpochRecord
from ..shuffle.base import EXTERNAL_SORT_PASSES
from ..storage.iomodel import SSD, DeviceModel
from ..storage.page import DEFAULT_PAGE_BYTES
from .catalog import Catalog, TableInfo
from .errors import EngineError, StorageError, UnknownModelError
from .operators import (
    BlockShuffleOperator,
    FilteredSeqScanOperator,
    MultiplexedReservoirOperator,
    PassThroughAccountingOperator,
    PermutedScanOperator,
    RidBlockShuffleOperator,
    SeqScanOperator,
    SGDOperator,
    SlidingWindowOperator,
    TupleShuffleOperator,
)
from .explain import explain_train_plan
from .query import (
    CreateIndexQuery,
    DeleteQuery,
    DropIndexQuery,
    EvaluateQuery,
    ExplainQuery,
    InsertQuery,
    PredictQuery,
    SelectQuery,
    TrainQuery,
    UpdateQuery,
    parse_query,
)
from .spec import TrainSpec
from .timeline import Timeline
from .timing import ComputeProfile, RuntimeContext

__all__ = [
    "MiniDB",
    "TrainResult",
    "GridTrainResult",
    "ResourceUsage",
    "ENGINE_PROFILE",
]

# Per-tuple SGD cost of the native (C-level) CorgiPile operators: a slot
# extraction plus a dot product / axpy over the feature values.
ENGINE_PROFILE = ComputeProfile(
    "corgipile-engine",
    per_tuple_s=1.5e-6,
    per_value_s=4e-9,
    decompress_per_byte_s=3e-8,
)

STRATEGIES = (
    "corgipile",
    "corgipile_single_buffer",
    "corgi2",
    "block_only",
    "block_reshuffle",
    "block_reversal",
    "no_shuffle",
    "shuffle_once",
    "epoch_shuffle",
    "random_access",
    "sliding_window",
    "mrs",
)

# Strategies whose access path can run over a filtered RID subset.
WHERE_STRATEGIES = (
    "corgipile",
    "corgipile_single_buffer",
    "block_only",
    "no_shuffle",
)


@dataclass
class ResourceUsage:
    """Appendix B resource accounting for one training query."""

    buffer_memory_bytes: float
    extra_disk_bytes: float
    io_seconds: float
    compute_seconds: float
    wall_seconds: float

    @property
    def cpu_utilisation(self) -> float:
        """Compute seconds per wall second (can exceed 1 with two threads)."""
        if self.wall_seconds == 0:
            return 0.0
        return self.compute_seconds / self.wall_seconds


@dataclass
class TrainResult:
    """Everything a ``TRAIN BY`` query produces."""

    model_id: str
    model: SupervisedModel
    history: ConvergenceHistory
    timeline: Timeline
    resources: ResourceUsage
    query: TrainQuery


@dataclass
class GridTrainResult(TrainResult):
    """A ``TRAIN ... WITH grid`` result: the winner plus the leaderboard.

    The base fields describe the *best* configuration (its model is also
    registered under the plain ``model_id``); every grid configuration's
    final model is registered as ``grid_<index>`` and ranked in
    ``leaderboard`` (see :meth:`repro.parallel.HopperResult.leaderboard`).
    """

    leaderboard: list[dict] = None
    histories: list[ConvergenceHistory] = None
    schedule: dict = None


class MiniDB:
    """A miniature database engine with in-DB SGD."""

    def __init__(
        self,
        device: DeviceModel = SSD,
        compute: ComputeProfile = ENGINE_PROFILE,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        pool_pages: int = 1 << 30,
        cold_cache_per_query: bool = True,
    ):
        self.device = device
        self.compute = compute
        self.catalog = Catalog(page_bytes=page_bytes, pool_pages=pool_pages)
        self.cold_cache_per_query = cold_cache_per_query
        self._models: dict[str, SupervisedModel] = {}
        self._model_counter = 0
        # Per-table per-epoch wall observations from finished TRAINs; the
        # auto planner fits the clustering penalty κ from these
        # (see repro.db.advisor.learn_kappa).
        self._kappa_history: dict[str, list[dict]] = {}
        # Model-store mutations are the only cross-thread shared state in
        # one MiniDB; the lock makes the engine re-entrant from worker
        # threads (the serve daemon registers job-trained models into a
        # session's engine while its connection thread runs PREDICTs).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def create_table(
        self, name: str, dataset: Dataset, compress: bool = False, layout: str = "row"
    ) -> TableInfo:
        return self.catalog.create_table(name, dataset, compress=compress, layout=layout)

    def inject_faults(self, name: str, plan, retry=None, stats=None):
        """Swap table ``name``'s storage for fault-injecting wrappers.

        ``plan`` is a :class:`repro.faults.FaultPlan`; subsequent queries on
        the table read through checksum-verified, bounded-retry wrappers
        that inject the plan's faults.  Returns the
        :class:`~repro.obs.StorageMetrics` that will accumulate the
        fault/retry counters.  The logical data is untouched — drop and
        re-create (or re-inject a null plan) to restore clean storage.
        """
        from ..faults import faulty_table

        table = self.catalog.get(name)
        new_table, stats = faulty_table(table, plan, stats=stats, retry=retry)
        self.catalog.replace_table(name, new_table)
        return stats

    def execute(self, sql: str, test: Dataset | None = None):
        """Run one statement.

        ``TRAIN BY`` returns a :class:`TrainResult`, ``PREDICT BY`` a
        prediction array, and ``EXPLAIN`` the plan text without training.
        """
        query = parse_query(sql)
        if isinstance(query, ExplainQuery):
            return self.explain(query.inner)
        if isinstance(query, PredictQuery):
            return self.predict(query)
        if isinstance(query, EvaluateQuery):
            return self.evaluate(query)
        if isinstance(query, SelectQuery):
            return self.select(query)
        if isinstance(query, InsertQuery):
            return self.insert(query)
        if isinstance(query, DeleteQuery):
            return self.delete(query)
        if isinstance(query, UpdateQuery):
            return self.update(query)
        if isinstance(query, CreateIndexQuery):
            return self.create_index(query)
        if isinstance(query, DropIndexQuery):
            return self.drop_index(query)
        return self.train(query, test=test)

    def explain(self, query: TrainQuery) -> str:
        """Render the physical plan a TRAIN query would execute."""
        return explain_train_plan(
            query,
            self.catalog.get(query.table),
            device=self._query_device(query),
            compute=self.compute,
        )

    # ------------------------------------------------------------------
    def _build_model(
        self, query: TrainQuery, table: TableInfo, l2: float | None = None
    ) -> SupervisedModel:
        d = table.dataset.n_features
        task = table.dataset.task
        if query.model in ("lr", "svm") and task != "binary":
            raise EngineError(
                f"model {query.model!r} needs a binary table; "
                f"{table.name!r} is {task}"
            )
        if query.model == "linreg" and task != "regression":
            raise EngineError(
                f"model 'linreg' needs a regression table; {table.name!r} is {task}"
            )
        if query.model == "softmax" and task != "multiclass":
            raise EngineError(
                f"model 'softmax' needs a multiclass table; {table.name!r} is {task}"
            )
        if l2 is None:
            l2 = getattr(query, "l2", None)
        kwargs = {} if l2 is None else {"l2": float(l2)}
        if query.model == "lr":
            return LogisticRegression(d, **kwargs)
        if query.model == "svm":
            return LinearSVM(d, **kwargs)
        if query.model == "linreg":
            return LinearRegression(d, **kwargs)
        if query.model == "softmax":
            return SoftmaxRegression(d, table.dataset.n_classes, **kwargs)
        raise EngineError(f"unknown model {query.model!r}")

    def _build_pipeline(self, query: TrainQuery, table: TableInfo, ctx: RuntimeContext):
        buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
        strategy = query.strategy
        if strategy in ("corgipile", "corgipile_single_buffer", "corgi2"):
            # corgi2's table is already the re-grouped copy (made in train());
            # its online half is the plain CorgiPile pipeline over it.
            scan = BlockShuffleOperator(table, ctx, query.block_size, seed=query.seed)
            return TupleShuffleOperator(scan, ctx, buffer_tuples, seed=query.seed)
        if strategy == "block_only":
            scan = BlockShuffleOperator(table, ctx, query.block_size, seed=query.seed)
            return PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        if strategy in ("block_reshuffle", "block_reversal"):
            within = "shuffle" if strategy == "block_reshuffle" else "reverse"
            scan = BlockShuffleOperator(
                table, ctx, query.block_size, seed=query.seed, within=within
            )
            return PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        if strategy in ("no_shuffle", "shuffle_once"):
            scan = SeqScanOperator(table, ctx)
            return PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        if strategy == "epoch_shuffle":
            scan = PermutedScanOperator(table, ctx, seed=query.seed, charge="sort")
            return PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        if strategy == "random_access":
            scan = PermutedScanOperator(table, ctx, seed=query.seed, charge="random_tuple")
            return PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        if strategy == "sliding_window":
            scan = SeqScanOperator(table, ctx)
            window = SlidingWindowOperator(scan, buffer_tuples, seed=query.seed)
            return PassThroughAccountingOperator(window, ctx, buffer_tuples)
        if strategy == "mrs":
            scan = SeqScanOperator(table, ctx)
            mrs = MultiplexedReservoirOperator(scan, buffer_tuples, seed=query.seed)
            return PassThroughAccountingOperator(mrs, ctx, buffer_tuples)
        raise EngineError(
            f"unknown strategy {strategy!r}; supported: {', '.join(STRATEGIES)}"
        )

    def _shuffled_copy(self, table: TableInfo, seed: int) -> TableInfo:
        """Materialise the Shuffle-Once copy (ORDER BY RANDOM equivalent)."""
        rng = np.random.default_rng(seed)
        shuffled = table.dataset.reorder(rng.permutation(table.n_tuples), suffix="so")
        copy_name = f"{table.name}__shuffled_{seed}"
        if copy_name in self.catalog:
            self.catalog.drop_table(copy_name)
        return self.catalog.create_table(
            copy_name, shuffled, compress=table.heap.compress, layout=table.heap.layout
        )

    def _regrouped_copy(self, table: TableInfo, query: TrainQuery) -> TableInfo:
        """Materialise the Corgi² offline partially re-grouped copy."""
        from ..data.dataset import BlockLayout
        from ..shuffle.corgi2 import corgi2_offline_order

        tuples_per_block = max(
            1, round(query.block_size / max(1.0, table.tuple_bytes))
        )
        layout = BlockLayout(table.n_tuples, tuples_per_block)
        group_blocks = max(1, round(query.buffer_fraction * layout.n_blocks))
        order = corgi2_offline_order(layout, group_blocks, query.seed)
        regrouped = table.dataset.reorder(order, suffix="corgi2")
        copy_name = f"{table.name}__corgi2_{query.seed}"
        if copy_name in self.catalog:
            self.catalog.drop_table(copy_name)
        return self.catalog.create_table(
            copy_name, regrouped, compress=table.heap.compress, layout=table.heap.layout
        )

    def _query_device(self, query: TrainQuery) -> DeviceModel:
        """The device charged for this query (``WITH device = '...'`` override)."""
        name = getattr(query, "device", None) or query.extra.get("device")
        if not name:
            return self.device
        from ..storage.iomodel import device_by_name

        try:
            return device_by_name(str(name))
        except KeyError as exc:
            raise EngineError(str(exc)) from None

    def _warm_start(self, query: TrainQuery, model: SupervisedModel) -> SupervisedModel:
        """Resolve ``WITH warm_start = '...'`` into initial parameters.

        The value names either a registered model id (``model_3``) or a
        model/checkpoint file saved by :mod:`repro.ml.persistence` (the
        serve layer maps ``job_N`` to the job's model file before the
        statement reaches the engine).  The source is *cloned* — training
        never mutates the registered original.
        """
        ws = getattr(query, "warm_start", None) or query.extra.get("warm_start")
        if not ws:
            return model
        from pathlib import Path

        from ..ml.persistence import load_model, model_from_bytes, model_to_bytes

        ws = str(ws)
        try:
            source = self.get_model(ws)
        except UnknownModelError:
            if Path(ws).is_file():
                source = load_model(ws)
            else:
                raise EngineError(
                    f"warm_start {ws!r}: no registered model and no such file"
                ) from None
        clone = model_from_bytes(model_to_bytes(source))
        if type(clone).__name__ != type(model).__name__:
            raise EngineError(
                f"warm_start {ws!r} is a {type(clone).__name__}; the query "
                f"trains a {type(model).__name__}"
            )
        if getattr(clone, "n_features", None) != getattr(model, "n_features", None):
            raise EngineError(
                f"warm_start {ws!r} has {getattr(clone, 'n_features', '?')} "
                f"features; the table has {model.n_features}"
            )
        return clone

    @staticmethod
    def _observed_doc(sgd: SGDOperator) -> dict:
        """Measured per-epoch walls (the advisor's feedback channel)."""
        return {
            "epoch_wall_s": [round(w, 6) for w in sgd.measured_wall_times],
            "total_wall_s": round(sum(sgd.measured_wall_times), 6),
            "simulated_epoch_wall_s": [round(w, 6) for w in sgd.epoch_wall_times],
        }

    def train(self, query: TrainQuery, test: Dataset | None = None) -> TrainResult:
        # Every entry point funnels through the typed spec: legacy
        # extra-dict knobs are converted (with a DeprecationWarning) and
        # written back onto the query's first-class fields, so everything
        # downstream reads one canonical surface.
        spec = TrainSpec.from_query(query)
        spec.apply_to_query(query)
        table = self.catalog.get(query.table)
        device = self._query_device(query)
        if spec.grid is not None:
            return self._train_grid(query, spec, table, test)
        if query.workers > 1:
            if query.where is not None:
                raise EngineError("TRAIN ... WHERE does not support workers > 1")
            return self._train_parallel(query, table, test)
        if query.where is not None:
            return self._train_where(query, table, device, test)
        if query.strategy == "auto":
            from .planner import plan_train

            decision = plan_train(
                table,
                query,
                device,
                compute=self.compute,
                history=self._kappa_history.get(query.table),
            )
            query = replace(query, strategy=decision.strategy)
            query.extra["planner"] = decision.describe()
            query.extra["advisor"] = decision.to_doc()
        if self.cold_cache_per_query:
            table.pool.clear()

        setup_s = 0.0
        setup_note = ""
        extra_disk = 0.0
        train_table = table
        if query.strategy == "shuffle_once":
            train_table = self._shuffled_copy(table, query.seed)
            bytes_total = float(table.heap.payload_bytes)
            # External sort: alternating sequential read/write passes plus
            # the n·log2(n) comparison/copy CPU of ORDER BY RANDOM().
            setup_s = EXTERNAL_SORT_PASSES * device.sequential_time(bytes_total)
            comparisons = table.n_tuples * max(1.0, math.log2(table.n_tuples))
            setup_s += 0.25 * comparisons * self.compute.per_tuple_s
            setup_note = f"offline full shuffle ({EXTERNAL_SORT_PASSES} passes)"
            extra_disk = float(train_table.heap.total_bytes)
        elif query.strategy == "corgi2":
            train_table = self._regrouped_copy(table, query)
            bytes_total = float(table.heap.payload_bytes)
            n_blocks = max(1, table.heap.n_blocks(query.block_size))
            # Offline pass: one random-block read of the table plus one
            # sequential write of the re-grouped copy.
            setup_s = device.random_time(bytes_total / n_blocks, n_blocks)
            setup_s += device.sequential_time(bytes_total)
            setup_note = "corgi2 offline partial re-group (1 random-block pass)"
            extra_disk = float(train_table.heap.total_bytes)

        ctx = RuntimeContext(
            device=device,
            compute=self.compute,
            double_buffer=query.strategy != "corgipile_single_buffer"
            and bool(query.double_buffer),
            values_per_tuple=train_table.values_per_tuple,
            compressed_bytes_per_tuple=(
                train_table.tuple_bytes if train_table.heap.compress else 0.0
            ),
        )
        model = self._warm_start(query, self._build_model(query, train_table))
        pipeline = self._build_pipeline(query, train_table, ctx)
        optimizer = SGD(model) if query.batch_size > 1 else None
        sgd = SGDOperator(
            pipeline,
            ctx,
            model,
            ExponentialDecay(query.learning_rate, query.decay),
            epochs=query.max_epoch_num,
            batch_size=query.batch_size,
            optimizer=optimizer,
            fused=query.fused,
        )

        timeline = Timeline(
            system=f"minidb/{query.strategy}", setup_s=setup_s, setup_note=setup_note
        )
        eval_set = train_table.dataset

        def evaluate(epoch: int, lr: float, tuples_seen: int) -> EpochRecord:
            record = EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=model.loss(eval_set.X, eval_set.y),
                train_score=model.score(eval_set.X, eval_set.y),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
            timeline.append(
                sgd.epoch_wall_times[-1],
                epoch,
                record.train_loss,
                record.train_score,
                record.test_score,
            )
            return record

        try:
            history = sgd.execute(evaluate)
        except StorageError as exc:
            # Graceful degradation: the query layer reports which query hit
            # the fault and how far it got, not a raw storage traceback.
            raise StorageError(
                f"TRAIN BY {query.model!r} on table {query.table!r} "
                f"(strategy {query.strategy!r}) aborted: {exc.detail}",
                epochs_completed=exc.epochs_completed,
                tuples_seen=exc.tuples_seen,
                partial=exc.partial,
            ) from exc

        buffer_tuples = max(1, round(query.buffer_fraction * train_table.n_tuples))
        needs_buffer = query.strategy.startswith("corgipile") or query.strategy == "corgi2"
        buffer_copies = 2 if ctx.double_buffer and needs_buffer else 1
        resources = ResourceUsage(
            buffer_memory_bytes=(
                buffer_copies * buffer_tuples * train_table.tuple_bytes if needs_buffer else 0.0
            ),
            extra_disk_bytes=extra_disk,
            io_seconds=ctx.total_io_s,
            compute_seconds=ctx.total_compute_s,
            wall_seconds=timeline.total_time_s,
        )

        query.extra.setdefault("advisor", {})["observed"] = self._observed_doc(sgd)
        self._record_epoch_walls(query.table, query.strategy, sgd)
        model_id = self.register_model(model)
        return TrainResult(model_id, model, history, timeline, resources, query)

    def _record_epoch_walls(self, table_name: str, strategy: str, sgd) -> None:
        """Feed a finished run's *simulated* epoch walls to the κ learner.

        Simulated (not measured) walls share units with the device cost
        model the advisor prices candidates in, so the fit is
        apples-to-apples; see :func:`repro.db.advisor.learn_kappa`.
        """
        walls = [float(w) for w in sgd.epoch_wall_times]
        if walls:
            self._kappa_history.setdefault(table_name, []).append(
                {"strategy": strategy, "epoch_wall_s": walls}
            )

    def _train_where(
        self,
        query: TrainQuery,
        table: TableInfo,
        device: DeviceModel,
        test: Dataset | None,
    ) -> TrainResult:
        """``TRAIN ... WHERE``: incremental training over a filtered subset.

        Qualifying RIDs (via an index range probe when one covers the
        predicate) are packed into *virtual* blocks that replicate the page
        layout of a materialised copy of the subset, so the block/buffer
        shuffle visits tuples bit-identically to plain CorgiPile over that
        copy — without writing it.  The planner picks the physical fetch
        (index-ordered block fetch vs full scan) by device cost.
        """
        from .where import choose_where_path, plan_where_access, subset_partition

        strategy = query.strategy
        if strategy == "auto":
            # A filtered subset inherits the base table's clustering; take
            # the shuffle-safe default rather than probing the subset.
            strategy = "corgipile"
            query = replace(query, strategy=strategy)
        if strategy not in WHERE_STRATEGIES:
            raise EngineError(
                f"strategy {strategy!r} does not support TRAIN ... WHERE; "
                f"one of {', '.join(WHERE_STRATEGIES)}"
            )
        # Costed candidate enumeration: full scan vs every usable index
        # range vs their intersection; '!=' shapes fail loudly here.
        positions, index, access_doc = plan_where_access(table, query.where, device)
        decision = choose_where_path(
            table, query.where, positions, device, index=index,
            access=access_doc["access"],
        )
        decision.update(access_doc)
        query.extra["where"] = decision
        if len(positions) == 0:
            raise EngineError(
                f"TRAIN ... WHERE {query.where.render()} on table "
                f"{query.table!r} matches no tuples"
            )
        if self.cold_cache_per_query:
            table.pool.clear()

        subset = table.dataset.subset(positions, suffix="where")
        buffer_tuples = max(1, round(query.buffer_fraction * subset.n_tuples))
        from ..data.sparse import SparseMatrix

        values_per_tuple = (
            subset.X.nnz / max(1, subset.n_tuples)
            if isinstance(subset.X, SparseMatrix)
            else float(subset.n_features)
        )
        partition = None
        if strategy != "no_shuffle":
            partition = subset_partition(table.heap, positions, query.block_size)
            decision["n_virtual_blocks"] = partition.n_blocks
            decision["n_virtual_pages"] = partition.n_virtual_pages
        ctx = RuntimeContext(
            device=device,
            compute=self.compute,
            double_buffer=strategy == "corgipile" and bool(query.double_buffer),
            values_per_tuple=values_per_tuple,
            compressed_bytes_per_tuple=(
                (partition.payload_bytes / max(1, partition.n_tuples))
                if (table.heap.compress and partition is not None)
                else (table.tuple_bytes if table.heap.compress else 0.0)
            ),
        )
        model = self._warm_start(query, self._build_model(query, table))
        if strategy in ("corgipile", "corgipile_single_buffer"):
            scan = RidBlockShuffleOperator(
                table, ctx, partition, seed=query.seed, fetch=decision["fetch"]
            )
            pipeline = TupleShuffleOperator(scan, ctx, buffer_tuples, seed=query.seed)
        elif strategy == "block_only":
            scan = RidBlockShuffleOperator(
                table, ctx, partition, seed=query.seed, fetch=decision["fetch"]
            )
            pipeline = PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        else:  # no_shuffle
            scan = FilteredSeqScanOperator(table, ctx, positions)
            pipeline = PassThroughAccountingOperator(scan, ctx, buffer_tuples)
        optimizer = SGD(model) if query.batch_size > 1 else None
        sgd = SGDOperator(
            pipeline,
            ctx,
            model,
            ExponentialDecay(query.learning_rate, query.decay),
            epochs=query.max_epoch_num,
            batch_size=query.batch_size,
            optimizer=optimizer,
            fused=query.fused,
        )

        timeline = Timeline(system=f"minidb/{strategy}+where")
        eval_set = subset

        def evaluate(epoch: int, lr: float, tuples_seen: int) -> EpochRecord:
            record = EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=model.loss(eval_set.X, eval_set.y),
                train_score=model.score(eval_set.X, eval_set.y),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
            timeline.append(
                sgd.epoch_wall_times[-1],
                epoch,
                record.train_loss,
                record.train_score,
                record.test_score,
            )
            return record

        try:
            history = sgd.execute(evaluate)
        except StorageError as exc:
            raise StorageError(
                f"TRAIN BY {query.model!r} on table {query.table!r} "
                f"WHERE {query.where.render()} (strategy {strategy!r}) "
                f"aborted: {exc.detail}",
                epochs_completed=exc.epochs_completed,
                tuples_seen=exc.tuples_seen,
                partial=exc.partial,
            ) from exc

        if isinstance(scan, RidBlockShuffleOperator):
            decision["physical"] = {
                "blocks_loaded": scan.blocks_loaded,
                "pages_fetched": scan.pages_fetched,
                "device_page_reads": scan.device_page_reads,
            }
        needs_buffer = strategy.startswith("corgipile")
        resources = ResourceUsage(
            buffer_memory_bytes=(
                (2 if ctx.double_buffer else 1) * buffer_tuples * table.tuple_bytes
                if needs_buffer
                else 0.0
            ),
            extra_disk_bytes=0.0,
            io_seconds=ctx.total_io_s,
            compute_seconds=ctx.total_compute_s,
            wall_seconds=timeline.total_time_s,
        )
        query.extra.setdefault("advisor", {})["observed"] = self._observed_doc(sgd)
        self._record_epoch_walls(query.table, strategy, sgd)
        model_id = self.register_model(model)
        return TrainResult(model_id, model, history, timeline, resources, query)

    # ------------------------------------------------------------------
    def _train_parallel(self, query: TrainQuery, table: TableInfo, test: Dataset | None) -> TrainResult:
        """``WITH workers = PN``: real multi-process data-parallel training.

        The table is materialised once as an on-disk block file (charged to
        the timeline as setup, like the Shuffle-Once copy) and trained by
        :class:`repro.parallel.ParallelTrainer`.  Unlike the single-process
        path, every number here is *measured* wall-clock from the spawned
        processes, not the device timing model — so the resource report sets
        ``io_seconds`` to zero and folds everything into compute/wall.
        """
        import tempfile
        import time as time_mod
        from pathlib import Path

        from ..parallel import AGGREGATION_MODES, ParallelTrainer
        from ..storage import write_block_file

        if query.aggregation not in AGGREGATION_MODES:
            raise EngineError(
                f"unknown aggregation {query.aggregation!r}; "
                f"one of {AGGREGATION_MODES}"
            )
        if not query.strategy.startswith("corgipile"):
            raise EngineError(
                f"workers = {query.workers} requires a corgipile strategy; "
                f"the parallel engine executes sharded CorgiPile only"
            )
        dataset = table.dataset
        tuples_per_block = max(
            1, min(dataset.n_tuples, round(query.block_size / max(1.0, table.tuple_bytes)))
        )
        # A block_size large enough to pack a small table into fewer blocks
        # than there are workers would leave some shard empty — and sync mode
        # silently trains nothing when the smallest shard is empty.  Cap the
        # block so every worker owns at least four.
        fair_share = max(1, dataset.n_tuples // (4 * query.workers))
        tuples_per_block = min(tuples_per_block, fair_share)
        buffer_tuples = max(1, round(query.buffer_fraction * dataset.n_tuples))
        # Section 5: each worker holds a 1/PN share of the tuple buffer.
        buffer_blocks = max(1, round(buffer_tuples / (query.workers * tuples_per_block)))
        per_worker = max(1, math.ceil(query.batch_size / query.workers))
        global_batch_size = per_worker * query.workers

        model = self._build_model(query, table)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{table.name}.blocks"
            t0 = time_mod.perf_counter()
            write_block_file(dataset, path, tuples_per_block)
            setup_s = time_mod.perf_counter() - t0
            result = ParallelTrainer(
                path,
                model,
                n_workers=query.workers,
                mode=query.aggregation,
                epochs=query.max_epoch_num,
                global_batch_size=global_batch_size,
                buffer_blocks=buffer_blocks,
                seed=query.seed,
                schedule=ExponentialDecay(query.learning_rate, query.decay),
                test=test,
                task=dataset.task,
            ).run()
        if query.aggregation == "sync" and result.sync_steps == 0:
            raise EngineError(
                f"batch_size = {query.batch_size} needs {global_batch_size} tuples "
                f"per sync step, but the smallest of the {query.workers} shards "
                "never holds that many; lower batch_size or workers"
            )

        timeline = Timeline(
            system=f"minidb/parallel-{query.aggregation}x{query.workers}",
            setup_s=setup_s,
            setup_note=f"materialise block file ({tuples_per_block} tuples/block)",
        )
        for record, wall in zip(result.history.records, result.epoch_walls):
            timeline.append(
                wall, record.epoch, record.train_loss, record.train_score, record.test_score
            )
        resources = ResourceUsage(
            buffer_memory_bytes=float(
                query.workers * buffer_blocks * tuples_per_block * table.tuple_bytes
            ),
            extra_disk_bytes=float(dataset.n_tuples * table.tuple_bytes),
            io_seconds=0.0,
            compute_seconds=result.wall_seconds,
            wall_seconds=timeline.total_time_s,
        )
        query.extra["parallel"] = {
            "n_workers": result.n_workers,
            "mode": result.mode,
            "sync_steps": result.sync_steps,
            "tuples_processed": result.tuples_processed,
            "tuples_per_second": result.tuples_per_second,
            "plan": result.plan,
        }
        model_id = self.register_model(model)
        return TrainResult(model_id, model, result.history, timeline, resources, query)

    # ------------------------------------------------------------------
    def _train_grid(
        self,
        query: TrainQuery,
        spec: TrainSpec,
        table: TableInfo,
        test: Dataset | None,
    ) -> GridTrainResult:
        """``TRAIN ... WITH grid``: model-hopper parallelism over S configs.

        One data pass serves every grid point: the table is materialised as
        a block file once, S models hop across the P shard workers on a
        staggered schedule (:class:`repro.parallel.HopperSchedule`), and
        each model consumes the identical CorgiPile tuple stream it would
        see training alone — so every leaderboard entry is bit-identical
        to a solo run with the same seed, at roughly one data-pass cost
        instead of S sequential passes.
        """
        import tempfile
        import time as time_mod
        from pathlib import Path

        from ..parallel import HopperEngine
        from ..storage import write_block_file

        if not query.strategy.startswith("corgipile") and query.strategy != "auto":
            raise EngineError(
                f"grid = (...) requires a corgipile strategy (got "
                f"{query.strategy!r}); the hopper executes sharded CorgiPile only"
            )
        configs = spec.grid.configs()
        n_models = len(configs)
        n_workers = max(query.workers, n_models)
        dataset = table.dataset
        tuples_per_block = max(
            1,
            min(dataset.n_tuples, round(query.block_size / max(1.0, table.tuple_bytes))),
        )
        # Same fair-share cap as _train_parallel: every worker owns >= 4 blocks.
        fair_share = max(1, dataset.n_tuples // (4 * n_workers))
        tuples_per_block = min(tuples_per_block, fair_share)
        buffer_tuples = max(1, round(query.buffer_fraction * dataset.n_tuples))
        buffer_blocks = max(1, round(buffer_tuples / (n_workers * tuples_per_block)))

        resolved = [c.resolve(spec) for c in configs]
        models = [self._build_model(query, table, l2=r["l2"]) for r in resolved]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{table.name}.blocks"
            t0 = time_mod.perf_counter()
            write_block_file(dataset, path, tuples_per_block)
            setup_s = time_mod.perf_counter() - t0
            result = HopperEngine(
                path,
                models,
                lrs=[r["lr"] for r in resolved],
                decays=[r["decay"] for r in resolved],
                epochs=query.max_epoch_num,
                n_workers=n_workers,
                buffer_blocks=buffer_blocks,
                seed=query.seed,
                labels=[c.label() for c in configs],
                task=dataset.task,
            ).run()

        leaderboard = result.leaderboard()
        for row in leaderboard:
            row["values"] = resolved[row["config"]]
            row["model_id"] = self.register_model(
                result.models[row["config"]], model_id=f"grid_{row['config']}"
            )
        best = leaderboard[0]
        best_i = best["config"]
        best_model = result.models[best_i]
        P = result.schedule.n_workers

        timeline = Timeline(
            system=f"minidb/hopper-{n_models}x{P}",
            setup_s=setup_s,
            setup_note=f"materialise block file ({tuples_per_block} tuples/block)",
        )
        history = result.histories[best_i]
        for e, record in enumerate(history.records):
            # Model m trains in slots m+e*P .. m+(e+1)*P-1; the wall it
            # experiences per epoch is those coordinator slot walls.
            wall = sum(result.slot_walls[best_i + e * P : best_i + (e + 1) * P])
            timeline.append(
                wall, record.epoch, record.train_loss, record.train_score,
                record.test_score,
            )
        resources = ResourceUsage(
            buffer_memory_bytes=float(
                n_workers * buffer_blocks * tuples_per_block * table.tuple_bytes
                + n_models * best_model.parameter_vector().size * 8
            ),
            extra_disk_bytes=float(dataset.n_tuples * table.tuple_bytes),
            io_seconds=0.0,
            compute_seconds=result.wall_seconds,
            wall_seconds=timeline.total_time_s,
        )
        query.extra["hopper"] = {
            "schedule": result.schedule.to_doc(),
            "tuples_processed": result.tuples_processed,
            "wall_seconds": round(result.wall_seconds, 6),
            "plan": result.plan,
        }
        query.extra["grid"] = {
            "n_configs": n_models,
            "axes": {name: list(values) for name, values in spec.grid.axes},
            "leaderboard": [
                {k: v for k, v in row.items() if k != "curve"} for row in leaderboard
            ],
        }
        model_id = self.register_model(best_model)
        return GridTrainResult(
            model_id,
            best_model,
            history,
            timeline,
            resources,
            query,
            leaderboard=leaderboard,
            histories=result.histories,
            schedule=result.schedule.to_doc(),
        )

    # ------------------------------------------------------------------
    def register_model(self, model: SupervisedModel, model_id: str | None = None) -> str:
        """Store ``model`` under a fresh (or explicit) id; thread-safe.

        Worker threads (the serve job runner) register models they trained
        out-of-engine so the session's ``PREDICT BY`` / ``EVALUATE BY``
        statements can address them.
        """
        with self._lock:
            if model_id is None:
                self._model_counter += 1
                model_id = f"model_{self._model_counter}"
            self._models[model_id] = model
            return model_id

    def predict(self, query: PredictQuery) -> np.ndarray:
        table = self.catalog.get(query.table)
        model = self.get_model(query.model_id)
        return model.predict(table.dataset.X)

    def select(self, query: SelectQuery, max_rows: int = 20) -> dict:
        """Inline row fetch: the first ``LIMIT n`` tuples of a table.

        Rows are JSON-ready (plain floats), so the serve layer can put the
        result straight on the wire.  ``max_rows`` caps an un-LIMITed
        SELECT — this engine exists to train, not to dump tables.

        Rows come from the table's buffer pool, so on a columnar table a
        projection like ``SELECT label FROM t`` materialises only the
        chunks it names — the feature columns are never decoded.
        """
        table = self.catalog.get(query.table)
        dataset = table.dataset
        limit = max_rows if query.limit is None else min(query.limit, max_rows)
        columns = query.columns
        want_features = columns is None or any(
            c == "features" or (c.startswith("f") and c[1:].isdigit()) for c in columns
        )

        def build_row(batch, j: int, position: int) -> dict:
            row: dict = {}
            keys = columns if columns is not None else ("rid", "label", "features")
            for key in keys:
                if key == "rid":
                    row["rid"] = position
                elif key == "label":
                    row["label"] = float(batch.labels[j])
                elif key == "features":
                    feats = batch.row(j)
                    if hasattr(feats, "to_dense"):
                        feats = feats.to_dense()
                    row["features"] = [float(v) for v in np.asarray(feats)[:8]]
                else:  # f<k>
                    k = int(key[1:])
                    if k >= dataset.n_features:
                        raise EngineError(
                            f"column {key!r} out of range: table has "
                            f"{dataset.n_features} features"
                        )
                    feats = batch.row(j)
                    if hasattr(feats, "to_dense"):
                        feats = feats.to_dense()
                    row[key] = float(np.asarray(feats)[k])
            return row

        rows: list[dict] = []
        via_index = None
        if query.where is not None:
            positions, index = self._where_positions(table, query.where)
            via_index = None if index is None else index.name
            n = min(limit, len(positions))
            for position in positions[:n]:
                rid = table.heap.rid_of(int(position))
                batch = table.pool.get_batch(rid.page_id)
                j = table.heap.slot_row_map(rid.page_id)[rid.slot]
                rows.append(build_row(batch, j, int(position)))
        else:
            n = min(limit, dataset.n_tuples)
            position = 0
            page_id = 0
            while len(rows) < n and page_id < table.heap.n_pages:
                batch = table.pool.get_batch(page_id)
                for j in range(min(len(batch), n - len(rows))):
                    rows.append(build_row(batch, j, position + j))
                position += len(batch)
                page_id += 1
        result = {
            "table": query.table,
            "n_tuples": dataset.n_tuples,
            "n_features": dataset.n_features,
            "task": dataset.task,
            "columns": list(columns) if columns is not None else ["rid", "label", "features"],
            "returned": len(rows),
            "truncated_features": want_features and dataset.n_features > 8,
            "rows": rows,
        }
        if query.where is not None:
            result["where"] = query.where.render()
            result["via_index"] = via_index
        return result

    # ------------------------------------------------------------------
    # DML + index DDL
    def _where_positions(self, table: TableInfo, predicate):
        """Qualifying heap positions, preferring an index range probe."""
        from .where import index_qualifying_positions, qualifying_positions

        for column in predicate.columns():
            index = table.index_on(column)
            if index is not None and predicate.interval_for(column) is not None:
                return index_qualifying_positions(table, index, predicate), index
        return qualifying_positions(table, predicate), None

    def _literal_features(self, table: TableInfo, values):
        """An INSERT row literal's feature values as the table's row type."""
        from ..data.sparse import SparseRow

        d = table.dataset.n_features
        if len(values) != d:
            raise EngineError(
                f"INSERT row has {len(values)} feature values; table "
                f"{table.name!r} has {d} features"
            )
        dense = np.asarray(values, dtype=np.float64)
        if table.dataset.is_sparse:
            nz = np.flatnonzero(dense)
            return SparseRow(nz.astype(np.int64), dense[nz], d)
        return dense

    def insert(self, query: InsertQuery) -> dict:
        """``INSERT INTO t VALUES (label, f0, ...), ...``."""
        table = self.catalog.get(query.table)
        rows = [
            (float(row[0]), self._literal_features(table, row[1:]))
            for row in query.rows
        ]
        rids = table.insert_rows(rows)
        return {
            "table": query.table,
            "inserted": len(rids),
            "rids": [[rid.page_id, rid.slot] for rid in rids],
            "n_tuples": table.n_tuples,
        }

    def delete(self, query: DeleteQuery) -> dict:
        """``DELETE FROM t WHERE ...`` — positions resolve via an index
        range when one covers a predicate column."""
        table = self.catalog.get(query.table)
        positions, index = self._where_positions(table, query.where)
        rids = [table.heap.rid_of(int(p)) for p in positions]
        deleted = table.delete_rids(rids) if rids else 0
        return {
            "table": query.table,
            "deleted": deleted,
            "via_index": None if index is None else index.name,
            "n_tuples": table.n_tuples,
        }

    def update(self, query: UpdateQuery) -> dict:
        """``UPDATE t SET col = v, ... WHERE ...``."""
        table = self.catalog.get(query.table)
        positions, index = self._where_positions(table, query.where)
        rids = [table.heap.rid_of(int(p)) for p in positions]
        moved = table.update_rids(rids, query.assignments) if rids else []
        return {
            "table": query.table,
            "updated": len(moved),
            "moved": sum(1 for old, new in moved if old != new),
            "via_index": None if index is None else index.name,
        }

    def create_index(self, query: CreateIndexQuery) -> dict:
        self.catalog.get(query.table)  # surface UnknownTableError first
        index = self.catalog.create_index(query.table, query.name, query.column)
        return {"table": query.table, **index.describe()}

    def drop_index(self, query: DropIndexQuery) -> dict:
        self.catalog.get(query.table).drop_index(query.name)
        return {"table": query.table, "dropped": query.name}

    def evaluate(self, query: EvaluateQuery) -> dict:
        """Score a stored model against a table's labels."""
        table = self.catalog.get(query.table)
        model = self.get_model(query.model_id)
        dataset = table.dataset
        metric = "r2" if dataset.task == "regression" else "accuracy"
        return {
            "model_id": query.model_id,
            "table": query.table,
            "metric": metric,
            "value": model.score(dataset.X, dataset.y),
            "n_tuples": dataset.n_tuples,
        }

    def get_model(self, model_id: str) -> SupervisedModel:
        with self._lock:
            try:
                return self._models[model_id]
            except KeyError:
                raise UnknownModelError(model_id) from None

    def model_ids(self) -> list[str]:
        with self._lock:
            return list(self._models)
