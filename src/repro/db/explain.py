"""EXPLAIN for TRAIN queries: render the physical operator tree.

Mirrors PostgreSQL's ``EXPLAIN``: given a parsed :class:`TrainQuery` and
the catalog entry it targets, produce the pipeline the executor would run,
with the physical parameters (block count, buffer tuples, double
buffering) resolved against the actual table.

``strategy = auto`` additionally renders the cost-based advisor's evidence
— the measured ``h_D``, the per-candidate cost table, and the chosen
strategy — before the operator tree of the plan it picked, so an EXPLAIN
shows *why* the executor will run what it runs.
"""

from __future__ import annotations

from .catalog import TableInfo
from .errors import EngineError
from .query import TrainQuery

__all__ = ["explain_train_plan"]

# Keep in sync with repro.db.engine.WHERE_STRATEGIES (imported lazily there
# to avoid a cycle; the executor enforces the same set).
_WHERE_STRATEGIES = ("corgipile", "corgipile_single_buffer", "block_only", "no_shuffle")


def _filtered_plan_lines(query, table: TableInfo, strategy: str, decision: dict) -> list[str]:
    """The operator tree of a ``TRAIN ... WHERE`` plan."""
    if strategy not in _WHERE_STRATEGIES:
        raise EngineError(
            f"strategy {strategy!r} does not support TRAIN ... WHERE; "
            f"one of {', '.join(_WHERE_STRATEGIES)}"
        )
    from .where import subset_partition

    heap = table.heap
    n_matching = decision["n_matching"]
    buffer_tuples = max(1, round(query.buffer_fraction * max(1, n_matching)))
    heap_line = (
        f"Heap {table.name!r}  ({table.n_tuples} tuples, {heap.n_pages} pages, "
        f"{_fmt_bytes(heap.total_bytes)}"
        + (", TOAST-compressed" if heap.compress else "")
        + ")"
    )
    lines = [
        f"SGD  (model={query.model}, epochs={query.max_epoch_num}, "
        f"batch_size={query.batch_size}, lr={query.learning_rate}, "
        f"decay={query.decay})"
    ]
    if strategy == "no_shuffle":
        lines.append(f"  -> FilteredSeqScan  ({n_matching} qualifying tuples)")
        lines.append(f"    -> {heap_line}")
        return lines
    import numpy as np

    positions = np.empty(0, dtype=np.int64)  # partition geometry only
    if n_matching:
        from .where import index_qualifying_positions, qualifying_positions

        index = table.indexes.get(decision["index"]) if decision["index"] else None
        positions = (
            index_qualifying_positions(table, index, query.where)
            if index is not None
            else qualifying_positions(table, query.where)
        )
    partition = subset_partition(heap, positions, query.block_size)
    fetch_note = (
        "index-ordered page fetch"
        if decision["fetch"] == "index"
        else "full-scan prefetch per epoch"
    )
    if strategy in ("corgipile", "corgipile_single_buffer"):
        buffering = (
            "double-buffered"
            if strategy == "corgipile" and query.double_buffer
            else "single-buffered"
        )
        lines.append(f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})")
        indent = "    "
    else:
        indent = "  "
    lines.append(
        f"{indent}-> RidBlockShuffle  (blocks={partition.n_blocks}, "
        f"block_size={_fmt_bytes(query.block_size)}, "
        f"{n_matching} qualifying tuples over {partition.n_virtual_pages} "
        f"virtual pages, {fetch_note})"
    )
    lines.append(f"{indent}  -> {heap_line}")
    return lines


def _grid_plan_lines(query, table: TableInfo, grid) -> list[str]:
    """The ``TRAIN ... WITH grid`` plan: the model-hopper schedule and its
    S×P-vs-S-sequential costing, then the per-shard pipeline it executes."""
    from ..parallel import HopperSchedule

    S = grid.n_configs
    P = max(query.workers, S)
    E = query.max_epoch_num
    schedule = HopperSchedule(S, P, E)
    # S solo runs would each traverse all P shards per epoch; the hopper
    # overlaps them into E*P + S - 1 sub-epoch slots.
    seq_slots = S * E * P
    tuples_per_block = max(
        1, min(table.n_tuples, round(query.block_size / max(1.0, table.tuple_bytes)))
    )
    fair_share = max(1, table.n_tuples // (4 * P))
    tuples_per_block = min(tuples_per_block, fair_share)
    buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
    buffer_blocks = max(1, round(buffer_tuples / (P * tuples_per_block)))
    lines = [
        f"Grid  ({grid.render()}; {S} configs -> models grid_0..grid_{S - 1})",
        f"  -> ModelHopper  ({S} models x {P} shard workers, "
        f"{schedule.total_slots} sub-epoch slots)",
        f"       cost: {schedule.total_slots} slots vs {seq_slots} for "
        f"{S} sequential solo runs; bubble x{schedule.bubble_ratio:.2f}, "
        f"speedup x{seq_slots / schedule.total_slots:.2f}",
    ]
    lines += ["       " + line for line in schedule.render()]
    lines += [
        f"    -> SGD  (model={query.model}, epochs={E}, per-config lr/decay/l2)",
        f"      -> TupleShuffle  ({buffer_blocks} blocks/fill per worker)",
        f"        -> ShardBlockFile  ({table.n_tuples} tuples, "
        f"{tuples_per_block} tuples/block, {P} shards; materialised copy "
        f"of heap {table.name!r})",
    ]
    return lines


def _fmt_bytes(n: float) -> str:
    if n >= 1024**2:
        return f"{n / 1024**2:.1f}MB"
    if n >= 1024:
        return f"{n / 1024:.1f}KB"
    return f"{n:.0f}B"


def explain_train_plan(
    query: TrainQuery,
    table: TableInfo,
    device=None,
    compute=None,
) -> str:
    """The operator tree for ``query`` over ``table``, as EXPLAIN text.

    ``device``/``compute`` are the engine's execution context; they matter
    only for ``strategy = auto``, where the advisor's cost table depends on
    them (the same query EXPLAINs to different plans on HDD vs NVM).
    """
    strategy = query.strategy
    advisor_lines: list[str] = []
    where_lines: list[str] = []
    grid_lines: list[str] = []
    where_decision = None
    grid = getattr(query, "grid", None)
    if grid is not None:
        return "\n".join(_grid_plan_lines(query, table, grid))
    if query.where is not None:
        from ..storage.iomodel import SSD as _SSD
        from .where import choose_where_path, plan_where_access

        if strategy == "auto":
            # Mirror the executor: a filtered subset trains with the
            # shuffle-safe default instead of probing the subset's h_D.
            strategy = "corgipile"
        _device = device if device is not None else _SSD
        positions, index, access_doc = plan_where_access(table, query.where, _device)
        where_decision = choose_where_path(
            table, query.where, positions, _device, index=index,
            access=access_doc["access"],
        )
        where_decision.update(access_doc)
        d = where_decision
        where_lines = [f"WHERE {d['predicate']}"]
        for name in sorted(
            d["paths"], key=lambda n: (d["paths"][n]["est_s"], n != "scan")
        ):
            p = d["paths"][name]
            marker = "=> " if name == d["access"] else "   "
            detail = f"{p['n_candidates']} candidate tuples"
            if "n_pages" in p:
                detail += f", {p['n_pages']} pages in {p['page_runs']} run(s)"
            where_lines.append(
                f"  {marker}{name:<16} est {p['est_s'] * 1e3:.2f}ms  ({detail})"
            )
        if d["index"] is not None:
            iv = d["interval"]
            lo = "-inf" if iv["lo"] is None else f"{iv['lo']:g}"
            hi = "+inf" if iv["hi"] is None else f"{iv['hi']:g}"
            lob = "[" if iv["lo_inclusive"] else "("
            hib = "]" if iv["hi_inclusive"] else ")"
            where_lines.append(
                f"  index: {d['index']} on {d['index_column']}  "
                f"(range {lob}{lo}, {hi}{hib})"
            )
        else:
            where_lines.append("  index: none (no usable range on an indexed column)")
        where_lines.append(
            f"  matched: {d['n_matching']} / {d['n_tuples']} tuples "
            f"({100 * d['selectivity']:.1f}% selectivity), "
            f"{d['n_qualifying_pages']} of {d['n_heap_pages']} pages "
            f"in {d['page_runs']} run(s)"
        )
        where_lines.append(
            f"  fetch path: index-ordered block fetch {d['est_index_s'] * 1e3:.2f}ms "
            f"vs full scan {d['est_scan_s'] * 1e3:.2f}ms per epoch "
            f"-> {d['fetch']}"
        )
    if strategy == "auto":
        from ..storage.iomodel import SSD, device_by_name
        from .advisor import advise_strategy

        override = getattr(query, "device", None) or query.extra.get("device")
        if override:
            device = device_by_name(str(override))
        decision = advise_strategy(
            table,
            device if device is not None else SSD,
            block_bytes=query.block_size,
            buffer_fraction=query.buffer_fraction,
            epochs=query.max_epoch_num,
            compute=compute,
        )
        strategy = decision.strategy
        advisor_lines = decision.render().split("\n")

    if where_decision is not None:
        return "\n".join(
            where_lines
            + advisor_lines
            + _filtered_plan_lines(query, table, strategy, where_decision)
        )

    buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
    heap = table.heap
    n_blocks = heap.n_blocks(query.block_size) if query.block_size >= heap.page_bytes else None

    heap_line = (
        f"Heap {table.name!r}  ({table.n_tuples} tuples, {heap.n_pages} pages, "
        f"{_fmt_bytes(heap.total_bytes)}"
        + (", TOAST-compressed" if heap.compress else "")
        + ")"
    )

    lines = [
        f"SGD  (model={query.model}, epochs={query.max_epoch_num}, "
        f"batch_size={query.batch_size}, lr={query.learning_rate}, "
        f"decay={query.decay})"
    ]
    if strategy in ("corgipile", "corgipile_single_buffer"):
        buffering = (
            "double-buffered"
            if strategy == "corgipile" and query.double_buffer
            else "single-buffered"
        )
        lines.append(
            f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})"
        )
        lines.append(
            f"    -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, "
            f"{heap.pages_per_block(query.block_size)} pages/block)"
        )
        lines.append(f"      -> {heap_line}")
    elif strategy == "corgi2":
        buffering = "double-buffered" if query.double_buffer else "single-buffered"
        lines.append(
            f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})"
        )
        lines.append(
            f"    -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, over re-grouped copy)"
        )
        lines.append(f"      -> {heap_line}")
        lines.append(
            "  [setup: Corgi² offline partial re-group — one random-block "
            f"read pass, writes a {_fmt_bytes(heap.total_bytes)} second copy]"
        )
    elif strategy == "block_only":
        lines.append(
            f"  -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)})"
        )
        lines.append(f"    -> {heap_line}")
    elif strategy in ("block_reshuffle", "block_reversal"):
        within = (
            "tuples reshuffled in memory per block"
            if strategy == "block_reshuffle"
            else "within-block order reversed on odd epochs"
        )
        lines.append(
            f"  -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, {within})"
        )
        lines.append(f"    -> {heap_line}")
    elif strategy == "no_shuffle":
        lines.append("  -> SeqScan")
        lines.append(f"    -> {heap_line}")
    elif strategy == "epoch_shuffle":
        lines.append("  -> PermutedScan  (fresh permutation per epoch; re-sort charged per epoch)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "random_access":
        lines.append("  -> PermutedScan  (random tuple access — vanilla SGD path)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "sliding_window":
        lines.append(f"  -> SlidingWindow  (window={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "mrs":
        lines.append(f"  -> MultiplexedReservoir  (reservoir={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "shuffle_once":
        lines.append("  -> SeqScan  (over pre-shuffled copy)")
        lines.append(f"    -> {heap_line}")
        lines.append(
            "  [setup: offline full shuffle — external sort, "
            f"writes a {_fmt_bytes(heap.total_bytes)} second copy]"
        )
    else:
        raise EngineError(f"cannot explain unknown strategy {strategy!r}")
    return "\n".join(grid_lines + advisor_lines + lines)
