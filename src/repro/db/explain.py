"""EXPLAIN for TRAIN queries: render the physical operator tree.

Mirrors PostgreSQL's ``EXPLAIN``: given a parsed :class:`TrainQuery` and
the catalog entry it targets, produce the pipeline the executor would run,
with the physical parameters (block count, buffer tuples, double
buffering) resolved against the actual table.

``strategy = auto`` additionally renders the cost-based advisor's evidence
— the measured ``h_D``, the per-candidate cost table, and the chosen
strategy — before the operator tree of the plan it picked, so an EXPLAIN
shows *why* the executor will run what it runs.
"""

from __future__ import annotations

from .catalog import TableInfo
from .errors import EngineError
from .query import TrainQuery

__all__ = ["explain_train_plan"]


def _fmt_bytes(n: float) -> str:
    if n >= 1024**2:
        return f"{n / 1024**2:.1f}MB"
    if n >= 1024:
        return f"{n / 1024:.1f}KB"
    return f"{n:.0f}B"


def explain_train_plan(
    query: TrainQuery,
    table: TableInfo,
    device=None,
    compute=None,
) -> str:
    """The operator tree for ``query`` over ``table``, as EXPLAIN text.

    ``device``/``compute`` are the engine's execution context; they matter
    only for ``strategy = auto``, where the advisor's cost table depends on
    them (the same query EXPLAINs to different plans on HDD vs NVM).
    """
    strategy = query.strategy
    advisor_lines: list[str] = []
    if strategy == "auto":
        from ..storage.iomodel import SSD, device_by_name
        from .advisor import advise_strategy

        if query.extra.get("device"):
            device = device_by_name(str(query.extra["device"]))
        decision = advise_strategy(
            table,
            device if device is not None else SSD,
            block_bytes=query.block_size,
            buffer_fraction=query.buffer_fraction,
            epochs=query.max_epoch_num,
            compute=compute,
        )
        strategy = decision.strategy
        advisor_lines = decision.render().split("\n")

    buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
    heap = table.heap
    n_blocks = heap.n_blocks(query.block_size) if query.block_size >= heap.page_bytes else None

    heap_line = (
        f"Heap {table.name!r}  ({table.n_tuples} tuples, {heap.n_pages} pages, "
        f"{_fmt_bytes(heap.total_bytes)}"
        + (", TOAST-compressed" if heap.compress else "")
        + ")"
    )

    lines = [
        f"SGD  (model={query.model}, epochs={query.max_epoch_num}, "
        f"batch_size={query.batch_size}, lr={query.learning_rate}, "
        f"decay={query.decay})"
    ]
    if strategy in ("corgipile", "corgipile_single_buffer"):
        buffering = (
            "double-buffered"
            if strategy == "corgipile" and query.double_buffer
            else "single-buffered"
        )
        lines.append(
            f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})"
        )
        lines.append(
            f"    -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, "
            f"{heap.pages_per_block(query.block_size)} pages/block)"
        )
        lines.append(f"      -> {heap_line}")
    elif strategy == "corgi2":
        buffering = "double-buffered" if query.double_buffer else "single-buffered"
        lines.append(
            f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})"
        )
        lines.append(
            f"    -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, over re-grouped copy)"
        )
        lines.append(f"      -> {heap_line}")
        lines.append(
            "  [setup: Corgi² offline partial re-group — one random-block "
            f"read pass, writes a {_fmt_bytes(heap.total_bytes)} second copy]"
        )
    elif strategy == "block_only":
        lines.append(
            f"  -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)})"
        )
        lines.append(f"    -> {heap_line}")
    elif strategy in ("block_reshuffle", "block_reversal"):
        within = (
            "tuples reshuffled in memory per block"
            if strategy == "block_reshuffle"
            else "within-block order reversed on odd epochs"
        )
        lines.append(
            f"  -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, {within})"
        )
        lines.append(f"    -> {heap_line}")
    elif strategy == "no_shuffle":
        lines.append("  -> SeqScan")
        lines.append(f"    -> {heap_line}")
    elif strategy == "epoch_shuffle":
        lines.append("  -> PermutedScan  (fresh permutation per epoch; re-sort charged per epoch)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "random_access":
        lines.append("  -> PermutedScan  (random tuple access — vanilla SGD path)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "sliding_window":
        lines.append(f"  -> SlidingWindow  (window={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "mrs":
        lines.append(f"  -> MultiplexedReservoir  (reservoir={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "shuffle_once":
        lines.append("  -> SeqScan  (over pre-shuffled copy)")
        lines.append(f"    -> {heap_line}")
        lines.append(
            "  [setup: offline full shuffle — external sort, "
            f"writes a {_fmt_bytes(heap.total_bytes)} second copy]"
        )
    else:
        raise EngineError(f"cannot explain unknown strategy {strategy!r}")
    return "\n".join(advisor_lines + lines)
