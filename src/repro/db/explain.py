"""EXPLAIN for TRAIN queries: render the physical operator tree.

Mirrors PostgreSQL's ``EXPLAIN``: given a parsed :class:`TrainQuery` and
the catalog entry it targets, produce the pipeline the executor would run,
with the physical parameters (block count, buffer tuples, double
buffering) resolved against the actual table.
"""

from __future__ import annotations

from .catalog import TableInfo
from .errors import EngineError
from .query import TrainQuery

__all__ = ["explain_train_plan"]


def _fmt_bytes(n: float) -> str:
    if n >= 1024**2:
        return f"{n / 1024**2:.1f}MB"
    if n >= 1024:
        return f"{n / 1024:.1f}KB"
    return f"{n:.0f}B"


def explain_train_plan(query: TrainQuery, table: TableInfo) -> str:
    """The operator tree for ``query`` over ``table``, as EXPLAIN text."""
    buffer_tuples = max(1, round(query.buffer_fraction * table.n_tuples))
    heap = table.heap
    n_blocks = heap.n_blocks(query.block_size) if query.block_size >= heap.page_bytes else None

    heap_line = (
        f"Heap {table.name!r}  ({table.n_tuples} tuples, {heap.n_pages} pages, "
        f"{_fmt_bytes(heap.total_bytes)}"
        + (", TOAST-compressed" if heap.compress else "")
        + ")"
    )

    lines = [
        f"SGD  (model={query.model}, epochs={query.max_epoch_num}, "
        f"batch_size={query.batch_size}, lr={query.learning_rate}, "
        f"decay={query.decay})"
    ]
    strategy = query.strategy
    if strategy in ("corgipile", "corgipile_single_buffer"):
        buffering = (
            "double-buffered"
            if strategy == "corgipile" and query.double_buffer
            else "single-buffered"
        )
        lines.append(
            f"  -> TupleShuffle  (buffer={buffer_tuples} tuples, {buffering})"
        )
        lines.append(
            f"    -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)}, "
            f"{heap.pages_per_block(query.block_size)} pages/block)"
        )
        lines.append(f"      -> {heap_line}")
    elif strategy == "block_only":
        lines.append(
            f"  -> BlockShuffle  (blocks={n_blocks}, "
            f"block_size={_fmt_bytes(query.block_size)})"
        )
        lines.append(f"    -> {heap_line}")
    elif strategy == "no_shuffle":
        lines.append("  -> SeqScan")
        lines.append(f"    -> {heap_line}")
    elif strategy == "epoch_shuffle":
        lines.append("  -> PermutedScan  (fresh permutation per epoch; re-sort charged per epoch)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "random_access":
        lines.append("  -> PermutedScan  (random tuple access — vanilla SGD path)")
        lines.append(f"    -> {heap_line}")
    elif strategy == "sliding_window":
        lines.append(f"  -> SlidingWindow  (window={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "mrs":
        lines.append(f"  -> MultiplexedReservoir  (reservoir={buffer_tuples} tuples)")
        lines.append("    -> SeqScan")
        lines.append(f"      -> {heap_line}")
    elif strategy == "shuffle_once":
        lines.append("  -> SeqScan  (over pre-shuffled copy)")
        lines.append(f"    -> {heap_line}")
        lines.append(
            "  [setup: offline full shuffle — external sort, "
            f"writes a {_fmt_bytes(heap.total_bytes)} second copy]"
        )
    else:
        raise EngineError(f"cannot explain unknown strategy {strategy!r}")
    return "\n".join(lines)
