"""Exception hierarchy for the mini database engine."""

from __future__ import annotations

__all__ = ["EngineError", "ParseError", "UnknownTableError", "UnknownModelError"]


class EngineError(Exception):
    """Base class for engine failures."""


class ParseError(EngineError):
    """The query text could not be parsed."""


class UnknownTableError(EngineError):
    """The query references a table that is not in the catalog."""


class UnknownModelError(EngineError):
    """The query references a model id that was never trained."""
