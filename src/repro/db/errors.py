"""Exception hierarchy for the mini database engine."""

from __future__ import annotations

__all__ = [
    "EngineError",
    "ParseError",
    "SpecError",
    "UnknownTableError",
    "UnknownModelError",
    "UnknownIndexError",
    "UnsupportedLayoutError",
    "UnsupportedPredicateError",
    "StorageError",
]


class EngineError(Exception):
    """Base class for engine failures."""


class StorageError(EngineError):
    """An unrecoverable storage fault surfaced during query execution.

    Raised when a page/block read exhausts its retry budget (see
    :class:`~repro.storage.retry.ReadExhaustedError`).  Instead of a raw
    storage traceback, the query layer reports *partial progress*: how many
    epochs completed, how many tuples were applied, and the convergence
    history so far — so a chaos run degrades gracefully into a truncated
    but well-formed result.
    """

    def __init__(
        self,
        detail: str,
        *,
        epochs_completed: int = 0,
        tuples_seen: int = 0,
        partial=None,
    ):
        super().__init__(detail)
        self.detail = detail
        self.epochs_completed = int(epochs_completed)
        self.tuples_seen = int(tuples_seen)
        #: ConvergenceHistory of the epochs that finished before the fault.
        self.partial = partial

    def __str__(self) -> str:
        return (
            f"{self.detail} (partial progress: {self.epochs_completed} "
            f"epoch(s) completed, {self.tuples_seen} tuples applied)"
        )


class ParseError(EngineError):
    """The query text could not be parsed."""


class SpecError(EngineError):
    """A TRAIN specification failed typed validation.

    Raised by :class:`~repro.db.spec.TrainSpec` (and the grid axis
    parser) with a message naming the offending field, the value it got,
    and what it expected — the redesigned API's replacement for knob
    typos silently landing in ``extra={...}``.
    """


class UnsupportedPredicateError(EngineError):
    """The WHERE predicate has a shape the costed planner cannot serve.

    The supported shape is an AND of per-column ranges (``<``, ``<=``,
    ``>``, ``>=``, ``=``).  Shapes outside it (for example a ``!=``
    term) used to fall back to a silent full scan; they now fail loudly
    with this error so the caller knows the plan it asked for does not
    exist.
    """


class UnknownTableError(EngineError):
    """The query references a table that is not in the catalog."""


class UnknownModelError(EngineError):
    """The query references a model id that was never trained."""


class UnknownIndexError(EngineError):
    """The query references an index that does not exist on the table."""


class UnsupportedLayoutError(EngineError):
    """The statement needs a storage layout the table does not have.

    Today: ``INSERT``/``UPDATE``/``DELETE`` require the row layout —
    columnar pages pack many rows into immutable per-column payloads, so
    slot-level DML is rejected with this error instead of corrupting them.
    """
