"""The typed TRAIN specification — one validated object for every entry point.

``TrainQuery`` is the *parse* artifact: a mutable bag the SQL layer fills
in.  Historically the knobs that had no typed field (``warm_start``,
``device``, …) rode in ``query.extra`` alongside the engine's *output*
annotations (planner/advisor/where docs), so a typo'd knob vanished
silently and the serve journal had no canonical shape.  :class:`TrainSpec`
is the redesign: a frozen, validated dataclass that the parser builds, the
engine / job manager / CLI consume, and the wire protocol carries as one
canonical document (``to_doc``/``from_doc``).

``extra`` stays the engine's **output** channel (the planner writes its
decision docs there).  Using it as an **input** channel still works for one
release through :meth:`TrainSpec.from_query`, which converts and emits a
``DeprecationWarning`` naming the typed replacement.

Grids
-----
``TRAIN ... WITH grid = (lr = 0.1 | 0.01, l2 = 0.0 | 1e-4)`` sweeps the
cartesian product of the listed axes.  :class:`GridSpec` holds the axes in
declaration order; :meth:`GridSpec.configs` enumerates the product as
:class:`GridConfig` rows whose ``index`` is the ``grid_<N>`` model id the
leaderboard registers.  Axes may only name per-model hyperparameters that
do not change the visit order (``lr``, ``decay``, ``l2``) — that is what
makes every grid member bit-identical to training it alone.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, fields, replace

from .errors import SpecError
from .query import MODEL_NAMES, Predicate

__all__ = ["GridConfig", "GridSpec", "TrainSpec", "AGGREGATION_MODES"]

#: Aggregation modes of the parallel engine (kept in sync with
#: ``repro.parallel.engine.AGGREGATION_MODES`` — the spec validates shape,
#: the engine stays the authority on semantics).
AGGREGATION_MODES = ("sync", "epoch", "async")

#: Hyperparameters a grid may sweep.  All three only scale the update, so
#: the CorgiPile visit order — and therefore the hopper's bit-exactness
#: guarantee — is untouched by the sweep.
GRID_AXES = ("lr", "decay", "l2")

#: Aliases accepted in grid axis names (SQL uses ``learning_rate``).
_AXIS_ALIASES = {"learning_rate": "lr"}

#: Legacy ``extra={...}`` input keys and the typed field that replaced
#: each.  Anything else in ``extra`` is engine output and is left alone.
_LEGACY_EXTRA_FIELDS = {
    "warm_start": "warm_start",
    "device": "device",
    "l2": "l2",
}


def _positive(name: str, value, kind=float):
    try:
        out = kind(value)
    except (TypeError, ValueError):
        raise SpecError(
            f"{name} must be a {kind.__name__}, got {value!r}"
        ) from None
    if out <= 0:
        raise SpecError(f"{name} must be positive, got {value!r}")
    return out


@dataclass(frozen=True)
class GridConfig:
    """One point of the sweep: the axis values applied to the base spec."""

    index: int
    overrides: tuple[tuple[str, float], ...]

    @property
    def model_id(self) -> str:
        return f"grid_{self.index}"

    def label(self) -> str:
        return ", ".join(f"{k}={v:g}" for k, v in self.overrides)

    def resolve(self, spec: "TrainSpec") -> dict:
        """The effective per-model hyperparameters for this grid point."""
        values = {"lr": spec.lr, "decay": spec.decay, "l2": spec.l2}
        values.update(dict(self.overrides))
        return values

    def to_doc(self) -> dict:
        return {
            "index": self.index,
            "model_id": self.model_id,
            "overrides": {k: v for k, v in self.overrides},
        }


@dataclass(frozen=True)
class GridSpec:
    """The declared axes, in declaration order."""

    axes: tuple[tuple[str, tuple[float, ...]], ...]

    def __post_init__(self):
        if not self.axes:
            raise SpecError("grid = (...) declared no axes")
        seen = set()
        for name, values in self.axes:
            if name not in GRID_AXES:
                raise SpecError(
                    f"grid axis {name!r} is not sweepable; "
                    f"supported axes: {', '.join(GRID_AXES)}"
                )
            if name in seen:
                raise SpecError(f"grid axis {name!r} declared twice")
            seen.add(name)
            if not values:
                raise SpecError(f"grid axis {name!r} lists no values")
            for value in values:
                if name in ("lr", "decay") and value <= 0:
                    raise SpecError(
                        f"grid axis {name!r} value {value!r} must be positive"
                    )
                if name == "l2" and value < 0:
                    raise SpecError(
                        f"grid axis 'l2' value {value!r} must be >= 0"
                    )

    @property
    def n_configs(self) -> int:
        out = 1
        for _name, values in self.axes:
            out *= len(values)
        return out

    def configs(self) -> tuple[GridConfig, ...]:
        names = [name for name, _values in self.axes]
        products = itertools.product(*(values for _name, values in self.axes))
        return tuple(
            GridConfig(index=i, overrides=tuple(zip(names, combo)))
            for i, combo in enumerate(products)
        )

    def render(self) -> str:
        return ", ".join(
            f"{name} = {' | '.join(f'{v:g}' for v in values)}"
            for name, values in self.axes
        )

    def to_doc(self) -> dict:
        return {
            "axes": [
                {"name": name, "values": list(values)}
                for name, values in self.axes
            ],
            "n_configs": self.n_configs,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "GridSpec":
        return cls(
            axes=tuple(
                (str(axis["name"]), tuple(float(v) for v in axis["values"]))
                for axis in doc["axes"]
            )
        )

    @classmethod
    def from_axes(cls, axes: dict) -> "GridSpec":
        """Build from ``{"lr": [0.1, 0.01], ...}`` (the Python-API shape)."""
        normalised = []
        for name, values in axes.items():
            name = _AXIS_ALIASES.get(str(name).lower(), str(name).lower())
            if not isinstance(values, (list, tuple)):
                values = (values,)
            try:
                normalised.append((name, tuple(float(v) for v in values)))
            except (TypeError, ValueError):
                raise SpecError(
                    f"grid axis {name!r} values must be numbers, got {values!r}"
                ) from None
        return cls(axes=tuple(normalised))


@dataclass(frozen=True)
class TrainSpec:
    """The validated, canonical form of one TRAIN statement."""

    table: str
    model: str
    strategy: str = "corgipile"
    epochs: int = 20
    lr: float = 0.1
    decay: float = 0.95
    #: ``None`` keeps each model class's own default regularisation
    #: (LinearSVM defaults to 1e-4, the GLMs to 0.0) — a spec-level value
    #: overrides it uniformly.
    l2: float | None = None
    batch_size: int = 1
    block_size: int = 10 * 1024**2
    buffer_fraction: float = 0.1
    seed: int = 0
    double_buffer: bool = True
    fused: bool = False
    workers: int = 1
    aggregation: str = "sync"
    device: str | None = None
    warm_start: str | None = None
    where: Predicate | None = None
    grid: GridSpec | None = None

    def __post_init__(self):
        if not self.table or not isinstance(self.table, str):
            raise SpecError(f"table must be a non-empty string, got {self.table!r}")
        if self.model not in MODEL_NAMES:
            raise SpecError(
                f"unknown model {self.model!r}; supported: {', '.join(MODEL_NAMES)}"
            )
        if not self.strategy or not isinstance(self.strategy, str):
            raise SpecError(f"strategy must be a non-empty string, got {self.strategy!r}")
        object.__setattr__(self, "epochs", _positive("epochs", self.epochs, int))
        object.__setattr__(self, "lr", _positive("lr", self.lr))
        object.__setattr__(self, "decay", _positive("decay", self.decay))
        if self.l2 is not None:
            l2 = float(self.l2)
            if l2 < 0:
                raise SpecError(f"l2 must be >= 0, got {self.l2!r}")
            object.__setattr__(self, "l2", l2)
        object.__setattr__(self, "batch_size", _positive("batch_size", self.batch_size, int))
        object.__setattr__(self, "block_size", _positive("block_size", self.block_size, int))
        frac = _positive("buffer_fraction", self.buffer_fraction)
        if frac > 1.0:
            raise SpecError(f"buffer_fraction must be in (0, 1], got {self.buffer_fraction!r}")
        object.__setattr__(self, "buffer_fraction", frac)
        object.__setattr__(self, "workers", _positive("workers", self.workers, int))
        if self.aggregation not in AGGREGATION_MODES:
            raise SpecError(
                f"unknown aggregation {self.aggregation!r}; "
                f"supported: {', '.join(AGGREGATION_MODES)}"
            )
        if self.warm_start is not None and not str(self.warm_start):
            raise SpecError("warm_start must be a model id or .npz path")
        if self.grid is not None:
            if self.batch_size != 1:
                raise SpecError(
                    "grid search requires per-tuple SGD (batch_size = 1); "
                    f"got batch_size = {self.batch_size}"
                )
            if self.warm_start is not None:
                raise SpecError("grid search and warm_start cannot be combined")
            if self.where is not None:
                raise SpecError(
                    "grid search over a WHERE subset is not supported yet; "
                    "materialise the subset into its own table first"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_query(cls, query, *, warn: bool = True) -> "TrainSpec":
        """Build the validated spec from a parsed :class:`TrainQuery`.

        Legacy input knobs found in ``query.extra`` (``warm_start``,
        ``device``, ``l2``) are honoured but emit a ``DeprecationWarning``
        — the typed field (or ``WITH`` knob) is the supported path and wins
        when both are set.
        """
        values = {
            "table": query.table,
            "model": query.model,
            "strategy": query.strategy,
            "epochs": query.max_epoch_num,
            "lr": query.learning_rate,
            "decay": query.decay,
            "l2": getattr(query, "l2", None),
            "batch_size": query.batch_size,
            "block_size": query.block_size,
            "buffer_fraction": query.buffer_fraction,
            "seed": int(query.seed),
            "double_buffer": bool(query.double_buffer),
            "fused": bool(query.fused),
            "workers": query.workers,
            "aggregation": query.aggregation,
            "device": getattr(query, "device", None),
            "warm_start": getattr(query, "warm_start", None),
            "where": query.where,
            "grid": getattr(query, "grid", None),
        }
        extra = getattr(query, "extra", None) or {}
        for key, field_name in _LEGACY_EXTRA_FIELDS.items():
            if key in extra and values.get(field_name) is None:
                if warn:
                    warnings.warn(
                        f"passing {key!r} through extra={{...}} is deprecated; "
                        f"use the typed TrainQuery.{field_name} field "
                        f"(or the WITH {key} = ... knob)",
                        DeprecationWarning,
                        stacklevel=3,
                    )
                value = extra[key]
                if field_name == "l2" and value is not None:
                    value = float(value)
                elif value is not None:
                    value = str(value)
                values[field_name] = value
        if "grid" in extra and values.get("grid") is None:
            if warn:
                warnings.warn(
                    "passing 'grid' through extra={...} is deprecated; use the "
                    "typed TrainQuery.grid field (or WITH grid = (...))",
                    DeprecationWarning,
                    stacklevel=3,
                )
            grid = extra["grid"]
            values["grid"] = grid if isinstance(grid, GridSpec) else GridSpec.from_axes(grid)
        return cls(**values)

    def apply_to_query(self, query) -> None:
        """Write the spec's typed fields back onto a TrainQuery in place."""
        query.strategy = self.strategy
        query.max_epoch_num = self.epochs
        query.learning_rate = self.lr
        query.decay = self.decay
        query.batch_size = self.batch_size
        query.block_size = self.block_size
        query.buffer_fraction = self.buffer_fraction
        query.seed = self.seed
        query.double_buffer = self.double_buffer
        query.fused = self.fused
        query.workers = self.workers
        query.aggregation = self.aggregation
        query.where = self.where
        for name in ("l2", "device", "warm_start", "grid"):
            if hasattr(query, name):
                setattr(query, name, getattr(self, name))

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        """The canonical JSON document (wire protocol / job journal form)."""
        return {
            "version": 1,
            "table": self.table,
            "model": self.model,
            "strategy": self.strategy,
            "epochs": self.epochs,
            "lr": self.lr,
            "decay": self.decay,
            "l2": self.l2,
            "batch_size": self.batch_size,
            "block_size": self.block_size,
            "buffer_fraction": self.buffer_fraction,
            "seed": self.seed,
            "double_buffer": self.double_buffer,
            "fused": self.fused,
            "workers": self.workers,
            "aggregation": self.aggregation,
            "device": self.device,
            "warm_start": self.warm_start,
            "where": None if self.where is None else self.where.to_doc(),
            "grid": None if self.grid is None else self.grid.to_doc(),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TrainSpec":
        version = doc.get("version", 1)
        if version != 1:
            raise SpecError(f"unknown TrainSpec document version {version!r}")
        known = {f.name for f in fields(cls)}
        values = {k: v for k, v in doc.items() if k in known}
        values["epochs"] = doc.get("epochs", 20)
        if doc.get("where") is not None:
            values["where"] = Predicate.from_doc(doc["where"])
        if doc.get("grid") is not None:
            values["grid"] = GridSpec.from_doc(doc["grid"])
        return cls(**values)

    def without_grid(self) -> "TrainSpec":
        return replace(self, grid=None)

    def describe(self) -> str:
        parts = [
            f"TRAIN {self.model} ON {self.table}",
            f"strategy={self.strategy}",
            f"epochs={self.epochs}",
            f"lr={self.lr:g}",
        ]
        if self.l2 is not None:
            parts.append(f"l2={self.l2:g}")
        if self.workers > 1:
            parts.append(f"workers={self.workers} ({self.aggregation})")
        if self.where is not None:
            parts.append(f"where={self.where.render()}")
        if self.grid is not None:
            parts.append(f"grid=({self.grid.render()})")
        return " ".join(parts)


# Re-exported for callers that only need the field list (CLI help text).
TRAIN_SPEC_FIELDS = tuple(f.name for f in fields(TrainSpec))
