"""The paper's baseline shuffling strategies (Section 3).

* :class:`NoShuffle` — scan in stored order (MADlib default, PyTorch
  ``IterableDataset``).
* :class:`ShuffleOnce` — materialise one shuffled copy offline, then scan it
  (Bismarck's pre-shuffle; 2x disk, expensive setup).
* :class:`EpochShuffle` — re-shuffle before every epoch (the statistical
  gold standard; pays the shuffle cost every epoch).
* :class:`SlidingWindowShuffle` — TensorFlow's windowed sampling.
* :class:`MRSShuffle` — Bismarck's multiplexed reservoir sampling.
"""

from __future__ import annotations

import numpy as np

from ..storage.iomodel import AccessTrace
from .base import EXTERNAL_SORT_PASSES, ShuffleStrategy, StrategyTraits

__all__ = [
    "NoShuffle",
    "ShuffleOnce",
    "EpochShuffle",
    "SlidingWindowShuffle",
    "MRSShuffle",
]


class NoShuffle(ShuffleStrategy):
    """Visit tuples in their stored physical order every epoch."""

    name = "no_shuffle"
    traits = StrategyTraits(needs_buffer=False, extra_disk_copies=0, io_pattern="sequential")

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        return np.arange(self.n_tuples, dtype=np.int64)


class ShuffleOnce(ShuffleStrategy):
    """One offline full shuffle; every epoch scans the shuffled copy.

    The setup trace models PostgreSQL's ``ORDER BY RANDOM()`` materialisation
    as an external sort (:data:`~repro.shuffle.base.EXTERNAL_SORT_PASSES`
    sequential passes over the data) writing a second copy of the table —
    hence ``extra_disk_copies = 1`` (the paper's "2x data size").
    """

    name = "shuffle_once"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=1, io_pattern="sequential")

    def __init__(self, n_tuples: int, seed: int = 0):
        super().__init__(n_tuples, seed=seed)
        self._perm = self._rng(0).permutation(self.n_tuples)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        return self._perm.copy()

    def setup_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = AccessTrace()
        total = self.n_tuples * tuple_bytes
        for p in range(EXTERNAL_SORT_PASSES):
            kind = "seq" if p % 2 == 0 else "seq_write"
            trace.add(kind, 1, total, note=f"shuffle-once sort pass {p}")
        return trace


class EpochShuffle(ShuffleOnce):
    """A fresh full shuffle before *every* epoch.

    Statistically ideal, physically worst: the external-sort cost of
    :class:`ShuffleOnce` recurs every epoch.
    """

    name = "epoch_shuffle"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=1, io_pattern="sequential")

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        return self._rng(epoch).permutation(self.n_tuples)

    def setup_trace(self, tuple_bytes: float) -> AccessTrace:
        return AccessTrace()

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = ShuffleOnce.setup_trace(self, tuple_bytes)
        trace.add("seq", 1, self.n_tuples * tuple_bytes, note="epoch-shuffle scan")
        return trace


class SlidingWindowShuffle(ShuffleStrategy):
    """TensorFlow's sliding-window (shuffle-buffer) sampling.

    Fill a window with the first ``window`` tuples; repeatedly emit a random
    window slot and refill it with the next incoming tuple; drain the window
    randomly at end-of-scan.  Purely sequential I/O, but tuples can only move
    ~``window`` positions, so a clustered order stays clustered (Figure 3b).
    """

    name = "sliding_window"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=0, io_pattern="sequential")

    def __init__(self, n_tuples: int, window: int, seed: int = 0):
        super().__init__(n_tuples, seed=seed)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = min(int(window), self.n_tuples)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        rng = self._rng(epoch)
        out = np.empty(self.n_tuples, dtype=np.int64)
        window = list(range(self.window))
        pos = 0
        for incoming in range(self.window, self.n_tuples):
            slot = int(rng.integers(len(window)))
            out[pos] = window[slot]
            window[slot] = incoming
            pos += 1
        drain = rng.permutation(len(window))
        for slot in drain:
            out[pos] = window[slot]
            pos += 1
        return out


class MRSShuffle(ShuffleStrategy):
    """Bismarck's multiplexed reservoir sampling (Section 3.4).

    One thread scans sequentially, performing reservoir sampling into a
    buffer ``B1``; tuples *dropped* by the reservoir go to SGD immediately.
    A second thread loops over a snapshot buffer ``B2`` of previously
    sampled tuples, feeding them to SGD interleaved with the scan.  We
    emulate the two threads with a deterministic interleave: after every
    ``mix_interval`` dropped tuples, one tuple is drawn from the loop
    buffer.  The epoch emits exactly ``n_tuples`` SGD steps; buffered tuples
    may repeat (the paper's "data skew" caveat) and some scanned tuples end
    the epoch still sitting in the buffer.
    """

    name = "mrs"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=0, io_pattern="sequential")

    def __init__(self, n_tuples: int, buffer_tuples: int, seed: int = 0, mix_interval: int = 2):
        super().__init__(n_tuples, seed=seed)
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        if mix_interval <= 0:
            raise ValueError("mix_interval must be positive")
        self.buffer_tuples = min(int(buffer_tuples), self.n_tuples)
        self.mix_interval = int(mix_interval)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        rng = self._rng(epoch)
        reservoir: list[int] = []
        loop_buffer: list[int] = []
        out: list[int] = []
        dropped_since_mix = 0
        for i in range(self.n_tuples):
            if len(reservoir) < self.buffer_tuples:
                reservoir.append(i)
                continue
            # Classic reservoir decision for the i-th element.
            j = int(rng.integers(i + 1))
            if j < self.buffer_tuples:
                evicted = reservoir[j]
                reservoir[j] = i
                dropped = evicted
            else:
                dropped = i
            out.append(dropped)
            dropped_since_mix += 1
            if dropped_since_mix >= self.mix_interval:
                dropped_since_mix = 0
                # Thread 2: one step over the loop buffer (B2 snapshots B1).
                if not loop_buffer:
                    loop_buffer = list(reservoir)
                out.append(loop_buffer[int(rng.integers(len(loop_buffer)))])
        # Thread 2 keeps looping over the buffer until the epoch has emitted
        # one SGD step per scanned tuple.
        if not loop_buffer:
            loop_buffer = list(reservoir)
        while len(out) < self.n_tuples:
            out.append(loop_buffer[int(rng.integers(len(loop_buffer)))])
        return np.asarray(out[: self.n_tuples], dtype=np.int64)
