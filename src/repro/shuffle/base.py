"""Base class and shared machinery for data shuffling strategies.

A shuffle strategy answers two questions per epoch:

1. *Statistical*: in what order does SGD visit tuple indices?
   (:meth:`ShuffleStrategy.epoch_indices`)
2. *Physical*: what reads/writes hit storage to produce that order?
   (:meth:`ShuffleStrategy.epoch_trace`, plus a one-time
   :meth:`ShuffleStrategy.setup_trace` for strategies that materialise a
   shuffled copy first)

Keeping the two separate is what lets the reproduction evaluate the paper's
two axes — convergence rate and I/O efficiency — independently: the trainer
consumes the index stream, the device models consume the traces.

All randomness is derived from ``(seed, epoch)`` so a strategy replays
identically, which the multi-process CorgiPile of Section 5 depends on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..data.dataset import BlockLayout
from ..storage.iomodel import AccessTrace

__all__ = ["ShuffleStrategy", "StrategyTraits", "epoch_rng"]

# Number of sequential passes charged for an external-sort full shuffle
# (run generation: read + write, merge: read + write).  Calibrated so a full
# shuffle costs ~4-5 epochs of sequential I/O, matching Figure 11 where
# Shuffle Once is still shuffling when CorgiPile has already converged.
EXTERNAL_SORT_PASSES = 4


def epoch_rng(seed: int, epoch: int) -> np.random.Generator:
    """Deterministic per-epoch random generator.

    Delegates to :func:`repro.core.seeding.epoch_rng` (imported at call time:
    ``repro.core``'s package init imports this module, so a module-level
    import back into it would be circular).
    """
    from ..core.seeding import epoch_rng as _epoch_rng

    return _epoch_rng(seed, epoch)


@dataclass(frozen=True)
class StrategyTraits:
    """The qualitative Table 1 row for a strategy."""

    needs_buffer: bool
    extra_disk_copies: int  # 1 => "2x data size" in Table 1
    io_pattern: str  # "sequential" | "random-block" | "random-tuple"


class ShuffleStrategy(ABC):
    """Produces per-epoch tuple orders and the physical access traces."""

    name: str = "abstract"
    traits = StrategyTraits(needs_buffer=False, extra_disk_copies=0, io_pattern="sequential")

    def __init__(self, n_tuples: int, seed: int = 0):
        if n_tuples <= 0:
            raise ValueError("n_tuples must be positive")
        self.n_tuples = int(n_tuples)
        self.seed = int(seed)

    # -- statistical side -------------------------------------------------
    @abstractmethod
    def epoch_indices(self, epoch: int) -> np.ndarray:
        """The tuple visit order for ``epoch`` (values in ``[0, n_tuples)``).

        The returned array has length ``n_tuples`` for strategies that visit
        every tuple once; MRS-style strategies may repeat or omit tuples but
        still return ``n_tuples`` entries (one SGD step per scanned tuple).
        """

    # -- physical side -----------------------------------------------------
    def setup_trace(self, tuple_bytes: float) -> AccessTrace:
        """One-time physical work before the first epoch (default: none)."""
        return AccessTrace()

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        """Physical reads for one epoch (default: one sequential scan)."""
        trace = AccessTrace()
        trace.add("seq", 1, self.n_tuples * tuple_bytes, note=f"{self.name} scan")
        return trace

    # -- helpers ------------------------------------------------------------
    def _rng(self, epoch: int) -> np.random.Generator:
        return epoch_rng(self.seed, epoch)

    def _check_epoch(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")

    def describe(self) -> dict:
        return {
            "strategy": self.name,
            "needs_buffer": self.traits.needs_buffer,
            "extra_disk_copies": self.traits.extra_disk_copies,
            "io_pattern": self.traits.io_pattern,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_tuples={self.n_tuples}, seed={self.seed})"


class BlockAwareStrategy(ShuffleStrategy):
    """Base for strategies that operate on a block layout."""

    def __init__(self, layout: BlockLayout, seed: int = 0):
        super().__init__(layout.n_tuples, seed=seed)
        self.layout = layout

    def block_bytes(self, tuple_bytes: float) -> float:
        return self.layout.tuples_per_block * tuple_bytes
