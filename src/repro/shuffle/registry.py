"""Factory for shuffle strategies by name.

Benchmarks sweep strategies by name with a single buffer budget, mirroring
the paper's setup ("we always use the same buffer size for Sliding-Window,
MRS and CorgiPile", Section 7.1.4).  The registry converts a buffer
*fraction* of the dataset into each strategy's native parameter (window
tuples, reservoir tuples, buffered blocks).
"""

from __future__ import annotations

from typing import Callable

from ..data.dataset import BlockLayout
from .base import ShuffleStrategy
from .baselines import EpochShuffle, MRSShuffle, NoShuffle, ShuffleOnce, SlidingWindowShuffle
from .block_only import BlockOnlyShuffle
from .corgi2 import Corgi2Shuffle
from .learned import BlockReshuffle, BlockReversal

__all__ = ["STRATEGY_NAMES", "make_strategy"]

STRATEGY_NAMES = (
    "no_shuffle",
    "shuffle_once",
    "epoch_shuffle",
    "sliding_window",
    "mrs",
    "block_only",
    "block_reshuffle",
    "block_reversal",
    "corgipile",
    "corgi2",
)


def _buffer_tuples(layout: BlockLayout, buffer_fraction: float) -> int:
    return max(1, round(buffer_fraction * layout.n_tuples))


def make_strategy(
    name: str,
    layout: BlockLayout,
    buffer_fraction: float = 0.1,
    seed: int = 0,
    **kwargs,
) -> ShuffleStrategy:
    """Build the named strategy over ``layout`` with the given buffer budget.

    ``buffer_fraction`` is the in-memory buffer size as a fraction of the
    dataset, applied to every buffered strategy; extra ``kwargs`` are passed
    to the strategy constructor (e.g. ``mode="sampled"`` for CorgiPile).
    """
    if not 0.0 < buffer_fraction <= 1.0:
        raise ValueError("buffer_fraction must be in (0, 1]")
    # Imported here (not at module top) to break the package import cycle:
    # repro.core.corgipile itself builds on repro.shuffle.base.
    from ..core.corgipile import CorgiPileShuffle

    builders: dict[str, Callable[[], ShuffleStrategy]] = {
        "no_shuffle": lambda: NoShuffle(layout.n_tuples, seed=seed, **kwargs),
        "shuffle_once": lambda: ShuffleOnce(layout.n_tuples, seed=seed, **kwargs),
        "epoch_shuffle": lambda: EpochShuffle(layout.n_tuples, seed=seed, **kwargs),
        "sliding_window": lambda: SlidingWindowShuffle(
            layout.n_tuples, _buffer_tuples(layout, buffer_fraction), seed=seed, **kwargs
        ),
        "mrs": lambda: MRSShuffle(
            layout.n_tuples, _buffer_tuples(layout, buffer_fraction), seed=seed, **kwargs
        ),
        "block_only": lambda: BlockOnlyShuffle(layout, seed=seed, **kwargs),
        "block_reshuffle": lambda: BlockReshuffle(layout, seed=seed, **kwargs),
        "block_reversal": lambda: BlockReversal(layout, seed=seed, **kwargs),
        "corgipile": lambda: CorgiPileShuffle.from_buffer_fraction(
            layout, buffer_fraction, seed=seed, **kwargs
        ),
        "corgi2": lambda: Corgi2Shuffle.from_buffer_fraction(
            layout, buffer_fraction, seed=seed, **kwargs
        ),
    }
    try:
        builder = builders[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {', '.join(STRATEGY_NAMES)}"
        ) from None
    return builder()
