"""Learning-to-Shuffle block schemes (arXiv 2604.00260).

Two near-zero-overhead refinements of block-only shuffling: each epoch the
blocks are visited in a fresh random order (exactly
:class:`~repro.shuffle.block_only.BlockOnlyShuffle`), and the *within-block*
traversal is additionally perturbed —

* :class:`BlockReshuffle` shuffles each block's tuples in memory as the
  block is read.  One block is in flight at a time, so unlike CorgiPile no
  multi-block buffer is needed, and the I/O pattern is unchanged; it breaks
  up clustering *finer* than a block but leaves block means untouched.
* :class:`BlockReversal` reverses the within-block traversal on odd epochs
  (the paper's flip scheme): consecutive epochs never replay the same local
  order, at literally zero memory and randomness cost beyond the block
  permutation.

Both derive their randomness from :mod:`repro.core.seeding`
(``BLOCK_RESHUFFLE_STREAM`` for the in-block shuffles), so runs replay
identically.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import BlockLayout
from ..storage.iomodel import AccessTrace
from .base import BlockAwareStrategy, StrategyTraits

__all__ = ["BlockReshuffle", "BlockReversal"]


class _BlockOrderStrategy(BlockAwareStrategy):
    """Shared skeleton: random block order + a per-block within-order hook."""

    def __init__(self, layout: BlockLayout, seed: int = 0):
        super().__init__(layout, seed=seed)

    def _within(self, epoch: int, block_id: int, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        block_order = self._rng(epoch).permutation(self.layout.n_blocks)
        return np.concatenate(
            [self._within(epoch, int(b), self.layout.block_indices(b)) for b in block_order]
        )

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = AccessTrace()
        trace.add(
            "rand",
            self.layout.n_blocks,
            self.block_bytes(tuple_bytes),
            note=f"{self.name} random block reads",
        )
        return trace


class BlockReshuffle(_BlockOrderStrategy):
    """Random block order + in-memory shuffle of each block's tuples."""

    name = "block_reshuffle"
    traits = StrategyTraits(needs_buffer=False, extra_disk_copies=0, io_pattern="random-block")

    def _within(self, epoch: int, block_id: int, indices: np.ndarray) -> np.ndarray:
        from ..core.seeding import BLOCK_RESHUFFLE_STREAM, derive_rng

        rng = derive_rng(self.seed, epoch, BLOCK_RESHUFFLE_STREAM, block_id)
        return rng.permutation(indices)


class BlockReversal(_BlockOrderStrategy):
    """Random block order; within-block order reversed on odd epochs."""

    name = "block_reversal"
    traits = StrategyTraits(needs_buffer=False, extra_disk_copies=0, io_pattern="random-block")

    def _within(self, epoch: int, block_id: int, indices: np.ndarray) -> np.ndarray:
        return indices[::-1] if epoch % 2 else indices
