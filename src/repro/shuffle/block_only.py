"""Block-Only Shuffle — CorgiPile without the tuple-level shuffle.

Section 7.3 uses this ablation to show that block-level shuffling alone is
not enough: blocks arrive in random order but tuples inside each block keep
their clustered order, so each block contributes a homogeneous run of labels
and the converged accuracy sits between No Shuffle and Shuffle Once.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import BlockLayout
from ..storage.iomodel import AccessTrace
from .base import BlockAwareStrategy, StrategyTraits

__all__ = ["BlockOnlyShuffle"]


class BlockOnlyShuffle(BlockAwareStrategy):
    """Random block order, in-block order preserved."""

    name = "block_only"
    traits = StrategyTraits(needs_buffer=False, extra_disk_copies=0, io_pattern="random-block")

    def __init__(self, layout: BlockLayout, seed: int = 0):
        super().__init__(layout, seed=seed)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        rng = self._rng(epoch)
        block_order = rng.permutation(self.layout.n_blocks)
        return np.concatenate([self.layout.block_indices(b) for b in block_order])

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = AccessTrace()
        trace.add(
            "rand",
            self.layout.n_blocks,
            self.block_bytes(tuple_bytes),
            note="block-only random block reads",
        )
        return trace
