"""Corgi² — the hybrid offline-online two-step block shuffle (arXiv 2309.01640).

Corgi² prefixes CorgiPile with a *partial* offline shuffle: blocks are
visited once in random order in groups of ``group_blocks``, the tuples of
each group are shuffled together, and the result is written back as new
blocks of the same size.  The online step is then plain CorgiPile over the
re-grouped blocks.

The offline pass costs one random-block read pass plus one sequential write
pass — far cheaper than a full external-sort shuffle — yet it compounds
with the online buffer: after re-grouping, each *new* block is a mixture of
``group_blocks`` original blocks, so the clustering factor the online
buffer sees is already reduced by ``~group_blocks`` before the tuple-level
shuffle divides it again by the buffered block count.  On clustered data
this dominates plain CorgiPile at equal online I/O.

All randomness derives from :mod:`repro.core.seeding`: the one-time offline
pass draws from the dedicated ``CORGI2_OFFLINE_STREAM`` (epoch-independent),
the online CorgiPile from the usual ``(seed, epoch)`` streams, so a Corgi²
run replays identically and its online half stays byte-compatible with
:class:`~repro.core.corgipile.CorgiPileShuffle`.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import BlockLayout, Dataset
from ..storage.iomodel import AccessTrace
from .base import BlockAwareStrategy, StrategyTraits

__all__ = ["Corgi2Shuffle", "corgi2_offline_order", "materialize_corgi2"]


def corgi2_offline_order(layout: BlockLayout, group_blocks: int, seed: int) -> np.ndarray:
    """The offline re-grouping permutation: new position → original tuple id.

    Blocks are permuted once, partitioned into runs of ``group_blocks``,
    and each run's tuples are shuffled together.  The result is the physical
    tuple order of the re-grouped copy; cutting it back into blocks of
    ``layout.tuples_per_block`` gives the blocks the online step reads.
    """
    from ..core.seeding import CORGI2_OFFLINE_STREAM, stream_rng

    if group_blocks <= 0:
        raise ValueError("group_blocks must be positive")
    group_blocks = min(int(group_blocks), layout.n_blocks)
    rng = stream_rng(seed, 0, CORGI2_OFFLINE_STREAM)
    block_order = rng.permutation(layout.n_blocks)
    pieces: list[np.ndarray] = []
    for lo in range(0, block_order.size, group_blocks):
        group = block_order[lo : lo + group_blocks]
        indices = np.concatenate([layout.block_indices(b) for b in group])
        rng.shuffle(indices)
        pieces.append(indices)
    return np.concatenate(pieces)


def materialize_corgi2(
    dataset: Dataset,
    path,
    tuples_per_block: int,
    group_blocks: int,
    seed: int = 0,
    layout: str = "row",
):
    """Write the Corgi² re-grouped copy of ``dataset`` as a block file.

    The offline pass is materialised through the existing block-file writer
    (:func:`repro.storage.write_block_file`), so the copy supports every
    downstream consumer — streaming trainers, the parallel engine, serve
    jobs — exactly like any other block file.  Returns the block index.
    """
    from ..storage.blockfile import write_block_file

    block_layout = BlockLayout(dataset.n_tuples, tuples_per_block)
    order = corgi2_offline_order(block_layout, group_blocks, seed)
    regrouped = dataset.reorder(order, suffix="corgi2")
    return write_block_file(regrouped, path, tuples_per_block, layout=layout)


class Corgi2Shuffle(BlockAwareStrategy):
    """Offline partial block re-grouping + online CorgiPile."""

    name = "corgi2"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=1, io_pattern="random-block")

    def __init__(
        self,
        layout: BlockLayout,
        buffer_blocks: int,
        seed: int = 0,
        group_blocks: int | None = None,
    ):
        super().__init__(layout, seed=seed)
        if buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be positive")
        self.buffer_blocks = min(int(buffer_blocks), layout.n_blocks)
        # Default: the offline pass groups as many blocks as the online
        # buffer holds — the Corgi² setting where both steps use the same
        # working-set size.
        self.group_blocks = min(
            int(group_blocks) if group_blocks is not None else self.buffer_blocks,
            layout.n_blocks,
        )
        if self.group_blocks <= 0:
            raise ValueError("group_blocks must be positive")
        self._offline = corgi2_offline_order(layout, self.group_blocks, seed)
        # Online half: plain CorgiPile over the re-grouped layout, sharing
        # the per-(seed, epoch) streams so the visit order over re-grouped
        # positions is byte-identical to CorgiPileShuffle's.
        from ..core.corgipile import CorgiPileShuffle

        self._online = CorgiPileShuffle(layout, self.buffer_blocks, seed=seed)

    # ------------------------------------------------------------------
    @classmethod
    def from_buffer_fraction(
        cls,
        layout: BlockLayout,
        buffer_fraction: float,
        seed: int = 0,
        group_blocks: int | None = None,
    ) -> "Corgi2Shuffle":
        """Build with an online buffer holding ``buffer_fraction`` of the data."""
        if not 0.0 < buffer_fraction <= 1.0:
            raise ValueError("buffer_fraction must be in (0, 1]")
        n = max(1, round(buffer_fraction * layout.n_blocks))
        return cls(layout, n, seed=seed, group_blocks=group_blocks)

    # ------------------------------------------------------------------
    @property
    def offline_order(self) -> np.ndarray:
        """New physical position → original tuple id (a permutation)."""
        return self._offline.copy()

    def epoch_indices(self, epoch: int) -> np.ndarray:
        self._check_epoch(epoch)
        # The online step walks *re-grouped* positions; map them back to
        # original tuple ids through the offline permutation.
        return self._offline[self._online.epoch_indices(epoch)]

    def buffer_fills(self, epoch: int) -> list[np.ndarray]:
        """Per online buffer fill, the original tuple ids it emits."""
        return [self._offline[fill] for fill in self._online.buffer_fills(epoch)]

    # ------------------------------------------------------------------
    def setup_trace(self, tuple_bytes: float) -> AccessTrace:
        """One random-block read pass + one sequential write of the copy."""
        trace = AccessTrace()
        trace.add(
            "rand",
            self.layout.n_blocks,
            self.block_bytes(tuple_bytes),
            note="corgi2 offline block reads",
        )
        trace.add(
            "seq_write",
            1,
            self.n_tuples * tuple_bytes,
            note="corgi2 offline re-grouped copy write",
        )
        return trace

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = AccessTrace()
        trace.add(
            "rand",
            self.layout.n_blocks,
            self.block_bytes(tuple_bytes),
            note="corgi2 online random block reads",
        )
        return trace
