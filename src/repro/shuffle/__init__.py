"""Data shuffling strategies for SGD (Section 3 baselines + CorgiPile ablation)."""

from .base import ShuffleStrategy, StrategyTraits, epoch_rng
from .baselines import EpochShuffle, MRSShuffle, NoShuffle, ShuffleOnce, SlidingWindowShuffle
from .block_only import BlockOnlyShuffle
from .registry import STRATEGY_NAMES, make_strategy

__all__ = [
    "ShuffleStrategy",
    "StrategyTraits",
    "epoch_rng",
    "NoShuffle",
    "ShuffleOnce",
    "EpochShuffle",
    "SlidingWindowShuffle",
    "MRSShuffle",
    "BlockOnlyShuffle",
    "STRATEGY_NAMES",
    "make_strategy",
]
