"""Data shuffling strategies for SGD (Section 3 baselines + CorgiPile ablation)."""

from .base import ShuffleStrategy, StrategyTraits, epoch_rng
from .baselines import EpochShuffle, MRSShuffle, NoShuffle, ShuffleOnce, SlidingWindowShuffle
from .block_only import BlockOnlyShuffle
from .corgi2 import Corgi2Shuffle, corgi2_offline_order, materialize_corgi2
from .learned import BlockReshuffle, BlockReversal
from .registry import STRATEGY_NAMES, make_strategy

__all__ = [
    "ShuffleStrategy",
    "StrategyTraits",
    "epoch_rng",
    "NoShuffle",
    "ShuffleOnce",
    "EpochShuffle",
    "SlidingWindowShuffle",
    "MRSShuffle",
    "BlockOnlyShuffle",
    "BlockReshuffle",
    "BlockReversal",
    "Corgi2Shuffle",
    "corgi2_offline_order",
    "materialize_corgi2",
    "STRATEGY_NAMES",
    "make_strategy",
]
