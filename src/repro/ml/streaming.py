"""Streaming training: drive SGD from a data loader instead of arrays.

The PyTorch-side integration (Section 5) never materialises the dataset —
``train()`` pulls batches from the ``DataLoader`` wrapped around a
``CorgiPileDataset``.  :func:`train_streaming` is that loop as library
code: one loader pass per epoch, per-tuple or mini-batch updates, optional
evaluation sets, optional prefetching (real double buffering) — so training
from an on-disk block file needs no custom loop.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..core.dataloader import Batch
from ..data.dataset import Dataset
from .optim import Optimizer, SGD
from .models.base import SupervisedModel
from .schedules import ExponentialDecay
from .trainer import ConvergenceHistory, EpochRecord

__all__ = ["train_streaming"]


def train_streaming(
    model: SupervisedModel,
    loader_factory: Callable[[int], Iterable[Batch]],
    *,
    epochs: int,
    schedule=None,
    optimizer: Optimizer | None = None,
    per_tuple: bool = False,
    fused: bool = False,
    train_eval: Dataset | None = None,
    test: Dataset | None = None,
    prefetch_depth: int = 0,
    classification_int_labels: bool = True,
) -> ConvergenceHistory:
    """Train ``model`` from ``loader_factory(epoch)`` batch streams.

    ``per_tuple=True`` applies one update per tuple inside each batch (the
    standard-SGD mode); otherwise each batch is one (mini-batch) step via
    ``optimizer`` (plain SGD by default).  ``fused=True`` routes the
    per-tuple updates through the models' ``step_block`` kernels (same
    in-batch visit order, one update per tuple).  ``prefetch_depth > 0``
    wraps the loader in a background
    :class:`~repro.core.prefetch.PrefetchLoader`.  Loss/score are evaluated
    on ``train_eval``/``test`` when given; without ``train_eval`` the loss
    column is NaN (nothing is materialised).
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    schedule = schedule if schedule is not None else ExponentialDecay(0.01)
    if optimizer is None and not per_tuple:
        optimizer = SGD(model)

    history = ConvergenceHistory(strategy="streaming", model=type(model).__name__)
    tuples_seen = 0
    for epoch in range(epochs):
        lr = float(schedule(epoch))
        loader: Iterable[Batch] = loader_factory(epoch)
        if prefetch_depth > 0:
            from ..core.prefetch import PrefetchLoader

            loader = PrefetchLoader(loader, depth=prefetch_depth)
        for batch in loader:
            y = batch.y
            if classification_int_labels and not per_tuple and _looks_multiclass(model):
                y = y.astype(np.int64)
            if per_tuple:
                if fused:
                    model.step_block(batch.X, batch.y, lr)
                else:
                    from ..data.sparse import SparseMatrix

                    labels = np.asarray(batch.y, dtype=np.float64).tolist()
                    if isinstance(batch.X, SparseMatrix):
                        for i in range(len(batch)):
                            model.step_example(batch.X.row(i), labels[i], lr)
                    else:
                        for i in range(len(batch)):
                            model.step_example(batch.X[i], labels[i], lr)
            else:
                grads = model.gradient(batch.X, y)
                optimizer.step(grads, lr)
            tuples_seen += len(batch)
        history.append(
            EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=(
                    model.loss(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                train_score=(
                    model.score(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
        )
    return history


def _looks_multiclass(model: SupervisedModel) -> bool:
    from .models.mlp import MLPClassifier
    from .models.softmax import SoftmaxRegression

    return isinstance(model, (MLPClassifier, SoftmaxRegression))
