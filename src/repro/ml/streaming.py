"""Streaming training: drive SGD from a data loader instead of arrays.

The PyTorch-side integration (Section 5) never materialises the dataset —
``train()`` pulls batches from the ``DataLoader`` wrapped around a
``CorgiPileDataset``.  :func:`train_streaming` is that loop as library
code: one loader pass per epoch, per-tuple or mini-batch updates, optional
evaluation sets, optional prefetching (real double buffering) — so training
from an on-disk block file needs no custom loop.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from .. import obs
from ..core.dataloader import Batch
from ..data.dataset import Dataset
from .optim import Optimizer, SGD
from .models.base import SupervisedModel
from .persistence import CheckpointState, load_checkpoint, save_checkpoint
from .schedules import ExponentialDecay
from .trainer import CheckpointConfig, ConvergenceHistory, EpochRecord

__all__ = ["train_streaming", "train_streaming_chunks", "training_columns"]


def training_columns(sparse: bool, with_ids: bool = False) -> tuple[str, ...]:
    """The column projection a fused training pass actually touches."""
    cols = ("ids",) if with_ids else ()
    if sparse:
        return cols + ("labels", "indptr", "indices", "values")
    return cols + ("labels", "dense")


def train_streaming_chunks(
    model: SupervisedModel,
    dataset,
    *,
    epochs: int,
    schedule=None,
    columns: tuple[str, ...] | None = None,
    train_eval: Dataset | None = None,
    test: Dataset | None = None,
) -> ConvergenceHistory:
    """Fused per-tuple training straight off block chunks (no repack).

    ``dataset`` is a :class:`~repro.core.dataset.CorgiPileDataset`; each
    shuffle-buffer fill arrives as a :class:`~repro.core.dataset.ChunkFill`
    and is consumed by ``model.step_chunks`` — on a columnar file the column
    arrays are used exactly as decoded (CSR chunks straight into the fused
    kernel), and ``columns`` prunes the read to the chunks training touches
    (labels + features by default; tuple ids are never read).

    Visit order equals ``__iter__``'s for the same (seed, epoch, worker), so
    results are bit-identical to ``train_streaming(..., per_tuple=True,
    fused=True)`` over a loader with any batch size (per-tuple updates make
    batching a non-event).
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    schedule = schedule if schedule is not None else ExponentialDecay(0.01)
    if columns is None and getattr(dataset.reader, "layout", "row") == "columnar":
        columns = training_columns(dataset.reader.schema.sparse)
    history = ConvergenceHistory(strategy="streaming-chunks", model=type(model).__name__)
    tuples_seen = 0
    for epoch in range(epochs):
        dataset.set_epoch(epoch)
        lr = float(schedule(epoch))
        with obs.span("ml.epoch", epoch=epoch, lr=lr, strategy="streaming-chunks") as sp:
            for fill in dataset.iter_fills(columns=columns):
                obs.inc("ml.fused_steps")
                obs.inc("ml.fused_tuples", len(fill))
                model.step_chunks(fill.batches, fill.order, lr)
                tuples_seen += len(fill)
            sp.set(tuples_seen=tuples_seen)
        obs.inc("ml.epochs")
        history.append(
            EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=(
                    model.loss(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                train_score=(
                    model.score(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
        )
    return history


def train_streaming(
    model: SupervisedModel,
    loader_factory: Callable[[int], Iterable[Batch]],
    *,
    epochs: int,
    schedule=None,
    optimizer: Optimizer | None = None,
    per_tuple: bool = False,
    fused: bool = False,
    train_eval: Dataset | None = None,
    test: Dataset | None = None,
    prefetch_depth: int = 0,
    classification_int_labels: bool = True,
    checkpoint: CheckpointConfig | None = None,
    resume_from: CheckpointState | str | Path | None = None,
    fault_plan=None,
) -> ConvergenceHistory:
    """Train ``model`` from ``loader_factory(epoch)`` batch streams.

    ``per_tuple=True`` applies one update per tuple inside each batch (the
    standard-SGD mode); otherwise each batch is one (mini-batch) step via
    ``optimizer`` (plain SGD by default).  ``fused=True`` routes the
    per-tuple updates through the models' ``step_block`` kernels (same
    in-batch visit order, one update per tuple).  ``prefetch_depth > 0``
    wraps the loader in a background
    :class:`~repro.core.prefetch.PrefetchLoader`.  Loss/score are evaluated
    on ``train_eval``/``test`` when given; without ``train_eval`` the loss
    column is NaN (nothing is materialised).

    With ``checkpoint``, a resumable snapshot is written at epoch ends and
    (for ``every_tuples > 0``) at batch boundaries inside the epoch; the
    cursor is the number of *batches* already consumed, so resuming requires
    ``loader_factory(epoch)`` to be deterministic per epoch (CorgiPile
    loaders are: (seed, epoch) fully pin the stream).  Updates are per-batch
    either way, so — unlike the array trainer — checkpoint cadence never
    changes the numeric result.  ``fault_plan`` (duck-typed
    ``repro.faults.FaultPlan``) injects "crash after N tuples" at the batch
    boundary where the budget runs out.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    schedule = schedule if schedule is not None else ExponentialDecay(0.01)
    if optimizer is None and not per_tuple:
        optimizer = SGD(model)

    history = ConvergenceHistory(strategy="streaming", model=type(model).__name__)
    tuples_seen = 0
    start_epoch = 0
    start_batch = 0
    if resume_from is not None:
        state = (
            resume_from
            if isinstance(resume_from, CheckpointState)
            else load_checkpoint(resume_from)
        )
        _restore_streaming(state, model, optimizer, history, per_tuple, fused)
        start_epoch, start_batch = state.epoch, state.cursor
        tuples_seen = state.tuples_seen

    def _save(epoch: int, batches_done: int) -> None:
        if checkpoint is None:
            return
        save_checkpoint(
            checkpoint.path,
            model,
            epoch=epoch,
            cursor=batches_done,
            tuples_seen=tuples_seen,
            optimizer_state=optimizer.state_dict() if optimizer is not None else {},
            history=[asdict(r) for r in history.records],
            meta={
                "mode": "streaming",
                "cursor_unit": "batches",
                "model": type(model).__name__,
                "per_tuple": per_tuple,
                "fused": fused,
                "epochs": epochs,
            },
        )

    _save(start_epoch, start_batch)
    for epoch in range(start_epoch, epochs):
        lr = float(schedule(epoch))
        loader: Iterable[Batch] = loader_factory(epoch)
        if prefetch_depth > 0:
            from ..core.prefetch import PrefetchLoader

            loader = PrefetchLoader(loader, depth=prefetch_depth)
        skip = start_batch if epoch == start_epoch else 0
        batches_done = skip
        since_checkpoint = 0
        with obs.span("ml.epoch", epoch=epoch, lr=lr, strategy="streaming") as sp:
            for batch_index, batch in enumerate(loader):
                if batch_index < skip:
                    continue
                if fault_plan is not None:
                    budget = fault_plan.tuples_before_crash(tuples_seen)
                    if budget is not None and budget < len(batch):
                        fault_plan.fire_crash(f"epoch {epoch}, batch {batch_index}")
                y = batch.y
                if (
                    classification_int_labels
                    and not per_tuple
                    and _looks_multiclass(model)
                ):
                    y = y.astype(np.int64)
                if per_tuple:
                    if fused:
                        obs.inc("ml.fused_steps")
                        obs.inc("ml.fused_tuples", len(batch))
                        model.step_block(batch.X, batch.y, lr)
                    else:
                        from ..data.sparse import SparseMatrix

                        labels = np.asarray(batch.y, dtype=np.float64).tolist()
                        if isinstance(batch.X, SparseMatrix):
                            for i in range(len(batch)):
                                model.step_example(batch.X.row(i), labels[i], lr)
                        else:
                            for i in range(len(batch)):
                                model.step_example(batch.X[i], labels[i], lr)
                else:
                    grads = model.gradient(batch.X, y)
                    optimizer.step(grads, lr)
                tuples_seen += len(batch)
                batches_done += 1
                since_checkpoint += len(batch)
                if (
                    checkpoint is not None
                    and checkpoint.every_tuples > 0
                    and since_checkpoint >= checkpoint.every_tuples
                ):
                    _save(epoch, batches_done)
                    since_checkpoint = 0
            sp.set(tuples_seen=tuples_seen, batches=batches_done)
        obs.inc("ml.epochs")
        history.append(
            EpochRecord(
                epoch=epoch,
                lr=lr,
                train_loss=(
                    model.loss(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                train_score=(
                    model.score(train_eval.X, train_eval.y)
                    if train_eval is not None
                    else float("nan")
                ),
                test_score=model.score(test.X, test.y) if test is not None else None,
                tuples_seen=tuples_seen,
            )
        )
        _save(epoch + 1, 0)
    return history


def _restore_streaming(
    state: CheckpointState,
    model: SupervisedModel,
    optimizer: Optimizer | None,
    history: ConvergenceHistory,
    per_tuple: bool,
    fused: bool,
) -> None:
    meta = state.meta
    if meta.get("mode") != "streaming":
        raise ValueError("checkpoint was not taken by train_streaming")
    if meta.get("model", type(model).__name__) != type(model).__name__:
        raise ValueError(
            f"checkpoint is for model {meta['model']!r}, got {type(model).__name__!r}"
        )
    for knob, have in (("per_tuple", per_tuple), ("fused", fused)):
        want = meta.get(knob)
        if want is not None and want != have:
            raise ValueError(
                f"checkpoint was taken with {knob}={want!r}; resuming with "
                f"{have!r} would change the update sequence"
            )
    for key, value in state.model.params.items():
        model.params[key][...] = value
    if optimizer is not None:
        optimizer.load_state_dict(state.optimizer_state)
    elif state.optimizer_state:
        raise ValueError("checkpoint carries optimizer state but run has no optimizer")
    for record in state.history:
        history.append(EpochRecord(**record))


def _looks_multiclass(model: SupervisedModel) -> bool:
    from .models.mlp import MLPClassifier
    from .models.softmax import SoftmaxRegression

    return isinstance(model, (MLPClassifier, SoftmaxRegression))
