"""Loss functions for the generalized linear models.

Each loss operates on the raw linear score ``z = w·x + b`` and a label, and
exposes the value and the derivative ``dL/dz`` — everything a GLM needs for
both per-tuple SGD (scalar ``z``) and vectorised evaluation (array ``z``).
Binary losses expect labels in ``{-1, +1}`` (the paper's convention for
higgs/criteo-style data).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = ["ScalarLoss", "LogisticLoss", "HingeLoss", "SquaredLoss"]


def _sigmoid(t: np.ndarray | float) -> np.ndarray | float:
    # Numerically stable logistic function.
    return np.where(
        np.asarray(t) >= 0,
        1.0 / (1.0 + np.exp(-np.clip(t, -500, 500))),
        np.exp(np.clip(t, -500, 500)) / (1.0 + np.exp(np.clip(t, -500, 500))),
    )


class ScalarLoss(ABC):
    """A loss of the raw score ``z`` and label ``y``."""

    name: str = "abstract"

    @abstractmethod
    def value(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Element-wise loss values."""

    @abstractmethod
    def dloss_dz(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Element-wise derivative with respect to ``z``."""

    def dloss_dz_scalar(self, z: float, y: float) -> float:
        """Scalar ``dL/dz`` without numpy boxing (for the fused SGD kernels).

        Subclasses override with pure-Python arithmetic mirroring
        :meth:`dloss_dz` exactly; the default routes through the array path.
        """
        return float(self.dloss_dz(z, y))

    def mean_value(self, z: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.value(np.asarray(z), np.asarray(y))))


class LogisticLoss(ScalarLoss):
    """``log(1 + exp(-y z))`` for labels in {-1, +1} (logistic regression)."""

    name = "logistic"

    def value(self, z, y):
        margin = np.asarray(y) * np.asarray(z)
        # log(1 + exp(-m)) computed stably via logaddexp.
        return np.logaddexp(0.0, -margin)

    def dloss_dz(self, z, y):
        y = np.asarray(y, dtype=np.float64)
        margin = y * np.asarray(z)
        return -y * _sigmoid(-margin)

    def dloss_dz_scalar(self, z: float, y: float) -> float:
        # Mirrors _sigmoid's stable branches (including the ±500 clip).
        t = -(y * z)
        if t >= 0:
            if t > 500.0:
                t = 500.0
            sig = 1.0 / (1.0 + math.exp(-t))
        else:
            if t < -500.0:
                t = -500.0
            e = math.exp(t)
            sig = e / (1.0 + e)
        return -y * sig


class HingeLoss(ScalarLoss):
    """``max(0, 1 - y z)`` for labels in {-1, +1} (linear SVM)."""

    name = "hinge"

    def value(self, z, y):
        margin = np.asarray(y) * np.asarray(z)
        return np.maximum(0.0, 1.0 - margin)

    def dloss_dz(self, z, y):
        y = np.asarray(y, dtype=np.float64)
        margin = y * np.asarray(z)
        return np.where(margin < 1.0, -y, 0.0)

    def dloss_dz_scalar(self, z: float, y: float) -> float:
        return -y if y * z < 1.0 else 0.0


class SquaredLoss(ScalarLoss):
    """``0.5 (z - y)²`` (linear regression)."""

    name = "squared"

    def value(self, z, y):
        diff = np.asarray(z) - np.asarray(y)
        return 0.5 * diff * diff

    def dloss_dz(self, z, y):
        return np.asarray(z) - np.asarray(y)

    def dloss_dz_scalar(self, z: float, y: float) -> float:
        return z - y
