"""Learning-rate schedules.

The paper uses an exponential decay of 0.95 per epoch by default, a step
decay (×0.1 every 30 epochs) for ResNet50/ImageNet, and the theory section
analyses the ``η_s = c / (s + a)`` schedule of Theorem 1.  A schedule is a
callable ``epoch -> learning rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConstantLR", "ExponentialDecay", "StepDecay", "InverseEpochDecay"]


@dataclass(frozen=True)
class ConstantLR:
    """``lr`` at every epoch."""

    lr: float

    def __call__(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class ExponentialDecay:
    """``lr * decay**epoch`` — the paper's default (decay = 0.95)."""

    lr: float
    decay: float = 0.95

    def __call__(self, epoch: int) -> float:
        return self.lr * self.decay**epoch


@dataclass(frozen=True)
class StepDecay:
    """``lr * factor**(epoch // step)`` — the ImageNet schedule (×0.1 / 30)."""

    lr: float
    step: int = 30
    factor: float = 0.1

    def __call__(self, epoch: int) -> float:
        return self.lr * self.factor ** (epoch // self.step)


@dataclass(frozen=True)
class InverseEpochDecay:
    """``scale / (epoch + offset)`` — the Theorem 1 schedule ``6/(bnμ(s+a))``.

    ``scale`` plays the role of ``6/(bnμ)`` and ``offset`` the role of ``a``.
    """

    scale: float
    offset: float = 1.0

    def __post_init__(self) -> None:
        if self.offset < 1.0:
            raise ValueError("offset must be at least 1 (Theorem 1 requires a >= 1)")

    def __call__(self, epoch: int) -> float:
        return self.scale / (epoch + self.offset)
