"""The training loop: any model × any shuffle strategy × any optimiser.

This is the statistical-efficiency half of the evaluation harness.  The
trainer consumes an *index source* — anything exposing
``epoch_indices(epoch) -> array`` (a :class:`~repro.shuffle.base.ShuffleStrategy`,
a :class:`~repro.core.corgipile.CorgiPileShuffle`, or an adapter around the
multi-process simulation) — and performs SGD in exactly that order:

* ``batch_size == 1`` with no optimiser: the paper's *standard SGD*, one
  model update per tuple, via the models' fast ``step_example`` path;
* ``batch_size > 1`` (or an explicit optimiser, e.g. Adam): mini-batch mode.

Per-epoch train loss / train metric / test metric are recorded into a
:class:`ConvergenceHistory`, the raw material of every convergence figure.

With a :class:`CheckpointConfig` the trainer periodically persists a
resumable snapshot (model, optimiser slots, epoch + in-epoch cursor) via
:mod:`repro.ml.persistence`; because index sources derive each epoch's order
purely from ``(seed, epoch)``, ``run(resume_from=...)`` continues a killed
run over the *exact* remaining visit order.  Checkpoint boundaries also
chunk the fused/mini-batch kernels, so a resumed run and an uninterrupted
run with the same cadence apply numerically identical update sequences —
that is the resume-equivalence guarantee the chaos suite asserts at 1e-12.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from .. import obs
from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .optim import Optimizer, SGD
from .models.base import SupervisedModel
from .persistence import CheckpointState, load_checkpoint, save_checkpoint
from .schedules import ExponentialDecay

__all__ = [
    "IndexSource",
    "EpochRecord",
    "ConvergenceHistory",
    "EarlyStopping",
    "CheckpointConfig",
    "Trainer",
]


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to persist resumable training state.

    ``every_tuples == 0`` checkpoints only at epoch boundaries; a positive
    value additionally checkpoints every that-many tuples *within* an epoch
    (rounded down to a whole number of mini-batches in mini-batch mode).
    Cadence is part of the numeric contract: kernels are chunked at
    checkpoint boundaries, so bit-exact comparisons must use equal cadence.
    """

    path: str | Path
    every_tuples: int = 0

    def __post_init__(self) -> None:
        if self.every_tuples < 0:
            raise ValueError("every_tuples must be non-negative")


@dataclass
class EarlyStopping:
    """Stop training when the monitored metric plateaus.

    Monitors the test score when a test set is supplied, otherwise the
    (negated) training loss.  Training stops after ``patience`` consecutive
    epochs without an improvement of at least ``min_delta``.  With
    ``restore_best`` the model parameters are rolled back to the best epoch
    seen (a lightweight in-memory checkpoint).
    """

    patience: int = 3
    min_delta: float = 1e-4
    restore_best: bool = True

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if self.min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self._best: float | None = None
        self._best_params: dict | None = None
        self._stale = 0

    def update(self, metric: float, params: dict) -> bool:
        """Record this epoch's metric; return True when training should stop."""
        if self._best is None or metric > self._best + self.min_delta:
            self._best = metric
            self._stale = 0
            if self.restore_best:
                self._best_params = {k: v.copy() for k, v in params.items()}
            return False
        self._stale += 1
        return self._stale >= self.patience

    def restore(self, params: dict) -> None:
        if self.restore_best and self._best_params is not None:
            for key, value in self._best_params.items():
                params[key][...] = value

    @property
    def best_metric(self) -> float | None:
        return self._best


class IndexSource(Protocol):
    """Anything that yields a tuple visit order per epoch."""

    name: str

    def epoch_indices(self, epoch: int) -> np.ndarray: ...


@dataclass(frozen=True)
class EpochRecord:
    """Metrics captured at the end of one epoch."""

    epoch: int
    lr: float
    train_loss: float
    train_score: float
    test_score: float | None
    tuples_seen: int


@dataclass
class ConvergenceHistory:
    """The per-epoch metric series of one training run."""

    strategy: str
    model: str
    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def final(self) -> EpochRecord:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1]

    @property
    def train_losses(self) -> list[float]:
        return [r.train_loss for r in self.records]

    @property
    def test_scores(self) -> list[float]:
        return [r.test_score for r in self.records if r.test_score is not None]

    def best_test_score(self) -> float:
        scores = self.test_scores
        if not scores:
            raise ValueError("no test scores recorded")
        return max(scores)

    def converged_test_score(self, tail: int = 4) -> float:
        """Mean test score over the last ``tail`` epochs.

        SGD's per-epoch accuracy jitters around its plateau (visibly so on
        our scaled datasets); averaging the tail is the stable estimate of
        the converged accuracy the paper's tables report.
        """
        scores = self.test_scores
        if not scores:
            raise ValueError("no test scores recorded")
        return float(np.mean(scores[-tail:]))

    def epochs_to_reach(self, score: float) -> int | None:
        """First epoch (1-based) whose test score reaches ``score``."""
        for record in self.records:
            if record.test_score is not None and record.test_score >= score:
                return record.epoch + 1
        return None


class Trainer:
    """Runs SGD over a dataset in the order dictated by an index source."""

    def __init__(
        self,
        model: SupervisedModel,
        train: Dataset,
        index_source: IndexSource,
        *,
        epochs: int,
        schedule=None,
        batch_size: int = 1,
        optimizer: Optimizer | None = None,
        test: Dataset | None = None,
        early_stopping: EarlyStopping | None = None,
        callbacks: list | None = None,
        fused: bool = False,
        checkpoint: CheckpointConfig | None = None,
        fault_plan=None,
    ):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.train_set = train
        self.index_source = index_source
        self.epochs = int(epochs)
        self.schedule = schedule if schedule is not None else ExponentialDecay(0.01)
        self.batch_size = int(batch_size)
        self.optimizer = optimizer
        if self.batch_size > 1 and self.optimizer is None:
            self.optimizer = SGD(model)
        self.test_set = test
        self.early_stopping = early_stopping
        # Fused mode routes the per-tuple epoch through the models'
        # step_block kernels (same visit order and update-per-tuple
        # semantics; mini-batch mode is already vectorised and unaffected).
        self.fused = bool(fused)
        # Each callback is called as callback(epoch, model, record) after
        # the end-of-epoch evaluation (e.g. theory trackers, custom logs).
        self.callbacks = list(callbacks or [])
        self.checkpoint = checkpoint
        # Duck-typed fault plan (repro.faults.FaultPlan): consulted for
        # "crash after N tuples" injection; None in normal runs.
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    def run(
        self, resume_from: CheckpointState | str | Path | None = None
    ) -> ConvergenceHistory:
        history = ConvergenceHistory(
            strategy=getattr(self.index_source, "name", type(self.index_source).__name__),
            model=type(self.model).__name__,
        )
        start_epoch = 0
        start_cursor = 0
        tuples_seen = 0
        if resume_from is not None:
            state = (
                resume_from
                if isinstance(resume_from, CheckpointState)
                else load_checkpoint(resume_from)
            )
            self._restore(state, history)
            start_epoch, start_cursor = state.epoch, state.cursor
            tuples_seen = state.tuples_seen
        # Initial checkpoint: even a crash before the first cadence point
        # leaves a resumable file behind.
        self._save_checkpoint(start_epoch, start_cursor, tuples_seen, history)
        for epoch in range(start_epoch, self.epochs):
            lr = float(self.schedule(epoch))
            order = np.asarray(self.index_source.epoch_indices(epoch), dtype=np.int64)
            cursor = start_cursor if epoch == start_epoch else 0
            with obs.span(
                "ml.epoch", epoch=epoch, lr=lr, strategy=history.strategy
            ) as sp:
                tuples_seen = self._run_epoch(
                    order, lr, epoch, cursor, tuples_seen, history
                )
                sp.set(tuples_seen=tuples_seen)
            obs.inc("ml.epochs")
            with obs.span("ml.evaluate", epoch=epoch):
                record = self._evaluate(epoch, lr, tuples_seen)
            history.append(record)
            for callback in self.callbacks:
                callback(epoch, self.model, record)
            self._save_checkpoint(epoch + 1, 0, tuples_seen, history)
            if self.early_stopping is not None:
                metric = (
                    record.test_score
                    if record.test_score is not None
                    else -record.train_loss
                )
                if self.early_stopping.update(metric, self.model.params):
                    self.early_stopping.restore(self.model.params)
                    break
        return history

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        order: np.ndarray,
        lr: float,
        epoch: int,
        cursor: int,
        tuples_seen: int,
        history: ConvergenceHistory,
    ) -> int:
        """Apply ``order[cursor:]``, checkpoint-chunked; returns new tuples_seen.

        Chunk boundaries sit at fixed multiples of the checkpoint cadence
        *within the epoch* (not relative to the resume point), so a resumed
        run replays exactly the chunk sequence the uninterrupted run would
        have used — the kernels flush their lazy L2 scaling per chunk, which
        makes the chunking part of the numeric result.
        """
        n = int(order.size)
        while cursor < n:
            hi = self._next_boundary(cursor, n)
            chunk = order[cursor:hi]
            if self.fault_plan is not None:
                budget = self.fault_plan.tuples_before_crash(tuples_seen)
                if budget is not None and budget < chunk.size:
                    if budget > 0:
                        self._apply_chunk(chunk[:budget], lr)
                    self.fault_plan.fire_crash(f"epoch {epoch}, tuple {cursor + budget}")
            self._apply_chunk(chunk, lr)
            cursor = hi
            tuples_seen += int(chunk.size)
            if (
                self.checkpoint is not None
                and self.checkpoint.every_tuples > 0
                and cursor < n
            ):
                self._save_checkpoint(epoch, cursor, tuples_seen, history)
        return tuples_seen

    def _next_boundary(self, cursor: int, n: int) -> int:
        every = self.checkpoint.every_tuples if self.checkpoint is not None else 0
        if every <= 0:
            return n
        if self.batch_size > 1:
            # Keep mini-batch composition identical with and without
            # checkpointing: boundaries land between batches only.
            every = max(self.batch_size, (every // self.batch_size) * self.batch_size)
        return min(n, (cursor // every + 1) * every)

    def _apply_chunk(self, order: np.ndarray, lr: float) -> None:
        if self.batch_size == 1 and self.optimizer is None:
            if self.fused:
                self._fused_epoch(order, lr)
            else:
                self._per_tuple_epoch(order, lr)
        else:
            self._mini_batch_epoch(order, lr)

    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, epoch: int, cursor: int, tuples_seen: int, history: ConvergenceHistory
    ) -> None:
        if self.checkpoint is None:
            return
        save_checkpoint(
            self.checkpoint.path,
            self.model,
            epoch=epoch,
            cursor=cursor,
            tuples_seen=tuples_seen,
            optimizer_state=(
                self.optimizer.state_dict() if self.optimizer is not None else {}
            ),
            history=[asdict(r) for r in history.records],
            meta={
                "strategy": history.strategy,
                "model": history.model,
                "batch_size": self.batch_size,
                "fused": self.fused,
                "epochs": self.epochs,
                "index_seed": getattr(self.index_source, "seed", None),
            },
        )

    def _restore(self, state: CheckpointState, history: ConvergenceHistory) -> None:
        meta = state.meta
        if meta.get("model", type(self.model).__name__) != type(self.model).__name__:
            raise ValueError(
                f"checkpoint is for model {meta['model']!r}, "
                f"trainer has {type(self.model).__name__!r}"
            )
        for knob in ("batch_size", "fused"):
            want = meta.get(knob)
            have = getattr(self, knob)
            if want is not None and want != have:
                raise ValueError(
                    f"checkpoint was taken with {knob}={want!r}; resuming with "
                    f"{have!r} would change the update sequence"
                )
        # Same index seed ⇒ same (seed, epoch)-pure visit orders ⇒ the
        # stored cursor pins the exact remaining order.
        seed = getattr(self.index_source, "seed", None)
        want_seed = meta.get("index_seed")
        if want_seed is not None and seed is not None and want_seed != seed:
            raise ValueError(
                f"checkpoint was taken under index seed {want_seed}, "
                f"resuming under {seed} would replay a different order"
            )
        for key, value in state.model.params.items():
            self.model.params[key][...] = value
        if self.optimizer is not None:
            self.optimizer.load_state_dict(state.optimizer_state)
        elif state.optimizer_state:
            raise ValueError("checkpoint carries optimizer state but trainer has none")
        for record in state.history:
            history.append(EpochRecord(**record))

    def _per_tuple_epoch(self, order: np.ndarray, lr: float) -> None:
        model = self.model
        X, y = self.train_set.X, self.train_set.y
        # Convert labels/indices to native Python scalars once per epoch so
        # the inner loop carries no per-tuple float()/int() boxing.
        labels = np.asarray(y, dtype=np.float64).tolist()
        positions = order.tolist()
        if isinstance(X, SparseMatrix):
            row = X.row
            for i in positions:
                model.step_example(row(i), labels[i], lr)
        else:
            for i in positions:
                model.step_example(X[i], labels[i], lr)

    def _fused_epoch(self, order: np.ndarray, lr: float) -> None:
        obs.inc("ml.fused_steps")
        obs.inc("ml.fused_tuples", int(order.size))
        self.model.step_block(
            self.train_set.X,
            np.asarray(self.train_set.y, dtype=np.float64),
            lr,
            order=order,
        )

    def _mini_batch_epoch(self, order: np.ndarray, lr: float) -> None:
        X, y = self.train_set.X, self.train_set.y
        for lo in range(0, order.size, self.batch_size):
            batch_idx = order[lo : lo + self.batch_size]
            if isinstance(X, SparseMatrix):
                xb = X.take_rows(batch_idx)
            else:
                xb = X[batch_idx]
            grads = self.model.gradient(xb, y[batch_idx])
            self.optimizer.step(grads, lr)

    def _evaluate(self, epoch: int, lr: float, tuples_seen: int) -> EpochRecord:
        train_loss = self.model.loss(self.train_set.X, self.train_set.y)
        train_score = self.model.score(self.train_set.X, self.train_set.y)
        test_score = (
            self.model.score(self.test_set.X, self.test_set.y)
            if self.test_set is not None
            else None
        )
        return EpochRecord(
            epoch=epoch,
            lr=lr,
            train_loss=train_loss,
            train_score=train_score,
            test_score=test_score,
            tuples_seen=tuples_seen,
        )


def fixed_order_source(name: str, orders: Sequence[np.ndarray]) -> IndexSource:
    """Wrap precomputed per-epoch orders (e.g. from the multi-process sim)."""

    class _Fixed:
        def __init__(self):
            self.name = name

        def epoch_indices(self, epoch: int) -> np.ndarray:
            return orders[epoch % len(orders)]

    return _Fixed()
