"""The training loop: any model × any shuffle strategy × any optimiser.

This is the statistical-efficiency half of the evaluation harness.  The
trainer consumes an *index source* — anything exposing
``epoch_indices(epoch) -> array`` (a :class:`~repro.shuffle.base.ShuffleStrategy`,
a :class:`~repro.core.corgipile.CorgiPileShuffle`, or an adapter around the
multi-process simulation) — and performs SGD in exactly that order:

* ``batch_size == 1`` with no optimiser: the paper's *standard SGD*, one
  model update per tuple, via the models' fast ``step_example`` path;
* ``batch_size > 1`` (or an explicit optimiser, e.g. Adam): mini-batch mode.

Per-epoch train loss / train metric / test metric are recorded into a
:class:`ConvergenceHistory`, the raw material of every convergence figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..data.sparse import SparseMatrix
from .optim import Optimizer, SGD
from .models.base import SupervisedModel
from .schedules import ExponentialDecay

__all__ = ["IndexSource", "EpochRecord", "ConvergenceHistory", "EarlyStopping", "Trainer"]


@dataclass
class EarlyStopping:
    """Stop training when the monitored metric plateaus.

    Monitors the test score when a test set is supplied, otherwise the
    (negated) training loss.  Training stops after ``patience`` consecutive
    epochs without an improvement of at least ``min_delta``.  With
    ``restore_best`` the model parameters are rolled back to the best epoch
    seen (a lightweight in-memory checkpoint).
    """

    patience: int = 3
    min_delta: float = 1e-4
    restore_best: bool = True

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if self.min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self._best: float | None = None
        self._best_params: dict | None = None
        self._stale = 0

    def update(self, metric: float, params: dict) -> bool:
        """Record this epoch's metric; return True when training should stop."""
        if self._best is None or metric > self._best + self.min_delta:
            self._best = metric
            self._stale = 0
            if self.restore_best:
                self._best_params = {k: v.copy() for k, v in params.items()}
            return False
        self._stale += 1
        return self._stale >= self.patience

    def restore(self, params: dict) -> None:
        if self.restore_best and self._best_params is not None:
            for key, value in self._best_params.items():
                params[key][...] = value

    @property
    def best_metric(self) -> float | None:
        return self._best


class IndexSource(Protocol):
    """Anything that yields a tuple visit order per epoch."""

    name: str

    def epoch_indices(self, epoch: int) -> np.ndarray: ...


@dataclass(frozen=True)
class EpochRecord:
    """Metrics captured at the end of one epoch."""

    epoch: int
    lr: float
    train_loss: float
    train_score: float
    test_score: float | None
    tuples_seen: int


@dataclass
class ConvergenceHistory:
    """The per-epoch metric series of one training run."""

    strategy: str
    model: str
    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def final(self) -> EpochRecord:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1]

    @property
    def train_losses(self) -> list[float]:
        return [r.train_loss for r in self.records]

    @property
    def test_scores(self) -> list[float]:
        return [r.test_score for r in self.records if r.test_score is not None]

    def best_test_score(self) -> float:
        scores = self.test_scores
        if not scores:
            raise ValueError("no test scores recorded")
        return max(scores)

    def converged_test_score(self, tail: int = 4) -> float:
        """Mean test score over the last ``tail`` epochs.

        SGD's per-epoch accuracy jitters around its plateau (visibly so on
        our scaled datasets); averaging the tail is the stable estimate of
        the converged accuracy the paper's tables report.
        """
        scores = self.test_scores
        if not scores:
            raise ValueError("no test scores recorded")
        return float(np.mean(scores[-tail:]))

    def epochs_to_reach(self, score: float) -> int | None:
        """First epoch (1-based) whose test score reaches ``score``."""
        for record in self.records:
            if record.test_score is not None and record.test_score >= score:
                return record.epoch + 1
        return None


class Trainer:
    """Runs SGD over a dataset in the order dictated by an index source."""

    def __init__(
        self,
        model: SupervisedModel,
        train: Dataset,
        index_source: IndexSource,
        *,
        epochs: int,
        schedule=None,
        batch_size: int = 1,
        optimizer: Optimizer | None = None,
        test: Dataset | None = None,
        early_stopping: EarlyStopping | None = None,
        callbacks: list | None = None,
        fused: bool = False,
    ):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.train_set = train
        self.index_source = index_source
        self.epochs = int(epochs)
        self.schedule = schedule if schedule is not None else ExponentialDecay(0.01)
        self.batch_size = int(batch_size)
        self.optimizer = optimizer
        if self.batch_size > 1 and self.optimizer is None:
            self.optimizer = SGD(model)
        self.test_set = test
        self.early_stopping = early_stopping
        # Fused mode routes the per-tuple epoch through the models'
        # step_block kernels (same visit order and update-per-tuple
        # semantics; mini-batch mode is already vectorised and unaffected).
        self.fused = bool(fused)
        # Each callback is called as callback(epoch, model, record) after
        # the end-of-epoch evaluation (e.g. theory trackers, custom logs).
        self.callbacks = list(callbacks or [])

    # ------------------------------------------------------------------
    def run(self) -> ConvergenceHistory:
        history = ConvergenceHistory(
            strategy=getattr(self.index_source, "name", type(self.index_source).__name__),
            model=type(self.model).__name__,
        )
        tuples_seen = 0
        for epoch in range(self.epochs):
            lr = float(self.schedule(epoch))
            order = np.asarray(self.index_source.epoch_indices(epoch), dtype=np.int64)
            tuples_seen += self._run_epoch(order, lr)
            record = self._evaluate(epoch, lr, tuples_seen)
            history.append(record)
            for callback in self.callbacks:
                callback(epoch, self.model, record)
            if self.early_stopping is not None:
                metric = (
                    record.test_score
                    if record.test_score is not None
                    else -record.train_loss
                )
                if self.early_stopping.update(metric, self.model.params):
                    self.early_stopping.restore(self.model.params)
                    break
        return history

    # ------------------------------------------------------------------
    def _run_epoch(self, order: np.ndarray, lr: float) -> int:
        if self.batch_size == 1 and self.optimizer is None:
            if self.fused:
                self._fused_epoch(order, lr)
            else:
                self._per_tuple_epoch(order, lr)
        else:
            self._mini_batch_epoch(order, lr)
        return int(order.size)

    def _per_tuple_epoch(self, order: np.ndarray, lr: float) -> None:
        model = self.model
        X, y = self.train_set.X, self.train_set.y
        # Convert labels/indices to native Python scalars once per epoch so
        # the inner loop carries no per-tuple float()/int() boxing.
        labels = np.asarray(y, dtype=np.float64).tolist()
        positions = order.tolist()
        if isinstance(X, SparseMatrix):
            row = X.row
            for i in positions:
                model.step_example(row(i), labels[i], lr)
        else:
            for i in positions:
                model.step_example(X[i], labels[i], lr)

    def _fused_epoch(self, order: np.ndarray, lr: float) -> None:
        self.model.step_block(
            self.train_set.X,
            np.asarray(self.train_set.y, dtype=np.float64),
            lr,
            order=order,
        )

    def _mini_batch_epoch(self, order: np.ndarray, lr: float) -> None:
        X, y = self.train_set.X, self.train_set.y
        for lo in range(0, order.size, self.batch_size):
            batch_idx = order[lo : lo + self.batch_size]
            if isinstance(X, SparseMatrix):
                xb = X.take_rows(batch_idx)
            else:
                xb = X[batch_idx]
            grads = self.model.gradient(xb, y[batch_idx])
            self.optimizer.step(grads, lr)

    def _evaluate(self, epoch: int, lr: float, tuples_seen: int) -> EpochRecord:
        train_loss = self.model.loss(self.train_set.X, self.train_set.y)
        train_score = self.model.score(self.train_set.X, self.train_set.y)
        test_score = (
            self.model.score(self.test_set.X, self.test_set.y)
            if self.test_set is not None
            else None
        )
        return EpochRecord(
            epoch=epoch,
            lr=lr,
            train_loss=train_loss,
            train_score=train_score,
            test_score=test_score,
            tuples_seen=tuples_seen,
        )


def fixed_order_source(name: str, orders: Sequence[np.ndarray]) -> IndexSource:
    """Wrap precomputed per-epoch orders (e.g. from the multi-process sim)."""

    class _Fixed:
        def __init__(self):
            self.name = name

        def epoch_indices(self, epoch: int) -> np.ndarray:
            return orders[epoch % len(orders)]

    return _Fixed()
