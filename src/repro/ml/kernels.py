"""Fused per-tuple SGD kernels for generalized linear models.

The paper's standard-SGD mode updates the model once per tuple, so the visit
order — the thing CorgiPile's two-level shuffle controls — is part of the
semantics and cannot be batched away.  What *can* be removed is everything
the interpreter does around the two O(d)/O(nnz) vector operations each step
actually needs:

* per-tuple method dispatch, ``isinstance`` checks, and ``float()`` boxing;
* numpy *scalar* loss derivatives (4-6 temporary arrays per tuple) — replaced
  by the losses' pure-Python :meth:`~repro.ml.losses.ScalarLoss.dloss_dz_scalar`;
* the eager O(d) L2 decay ``w *= (1 - lr*l2)`` per tuple — replaced by the
  lazy weight-scaling trick: the true weights are ``s · v`` for a scalar
  ``s``, decay multiplies ``s``, and gradient writes divide by ``s``, so a
  sparse update costs O(nnz) instead of O(d);
* ``np.add.at`` scatter-adds — replaced by direct fancy-index ``+=`` when the
  CSR rows are duplicate-free (checked once per matrix, not per tuple).

The kernels perform *exactly* one update per tuple in the given order, so
they are semantically equivalent to the ``step_example`` reference loop;
``tests/test_kernels.py`` enforces agreement to 1e-9 (the only divergence is
floating-point rounding from the lazy scaling).
"""

from __future__ import annotations

import numpy as np

from .losses import ScalarLoss

__all__ = [
    "glm_epoch_dense",
    "glm_epoch_sparse",
    "glm_epoch_dense_chunks",
    "glm_epoch_sparse_chunks",
    "csr_rows_unique",
]

# Re-materialise the lazily scaled weights before the scale underflows.
_MIN_SCALE = 1e-130


def glm_epoch_dense(
    w: np.ndarray,
    b: float,
    loss: ScalarLoss,
    X: np.ndarray,
    y: np.ndarray,
    order: np.ndarray,
    lr: float,
    l2: float,
    fit_intercept: bool,
) -> float:
    """Per-tuple SGD over rows ``X[order]``, mutating ``w`` in place.

    Returns the updated intercept.  Semantically identical to calling
    ``step_example(X[i], y[i], lr)`` for each ``i`` in ``order``.
    """
    decay = 1.0 - lr * l2
    s = 1.0
    dldz = loss.dloss_dz_scalar
    labels = y.tolist()
    for i in order.tolist():
        x = X[i]
        z = s * float(x @ w) + b
        coef = dldz(z, labels[i])
        if l2:
            s *= decay
            if -_MIN_SCALE < s < _MIN_SCALE:
                w *= s
                s = 1.0
        if coef != 0.0:
            w -= ((lr * coef) / s) * x
            if fit_intercept:
                b -= lr * coef
    if s != 1.0:
        w *= s
    return b


def glm_epoch_sparse(
    w: np.ndarray,
    b: float,
    loss: ScalarLoss,
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    y: np.ndarray,
    order: np.ndarray,
    lr: float,
    l2: float,
    fit_intercept: bool,
    unique_indices: bool | None = None,
) -> float:
    """Per-tuple SGD over CSR rows in ``order``, mutating ``w`` in place.

    ``unique_indices`` asserts that no row repeats a column index (enabling
    the fancy-index scatter-add); when ``None`` it is detected once via
    :func:`csr_rows_unique`.  Returns the updated intercept.
    """
    if unique_indices is None:
        unique_indices = csr_rows_unique(indptr, indices)
    decay = 1.0 - lr * l2
    s = 1.0
    dldz = loss.dloss_dz_scalar
    labels = y.tolist()
    bounds = indptr.tolist()
    for i in order.tolist():
        lo = bounds[i]
        hi = bounds[i + 1]
        idx = indices[lo:hi]
        vals = values[lo:hi]
        z = s * float(vals @ w[idx]) + b
        coef = dldz(z, labels[i])
        if l2:
            s *= decay
            if -_MIN_SCALE < s < _MIN_SCALE:
                w *= s
                s = 1.0
        if coef != 0.0:
            scale = -(lr * coef) / s
            if unique_indices:
                w[idx] += scale * vals
            else:
                np.add.at(w, idx, scale * vals)
            if fit_intercept:
                b -= lr * coef
    if s != 1.0:
        w *= s
    return b


def glm_epoch_dense_chunks(
    w: np.ndarray,
    b: float,
    loss: ScalarLoss,
    chunks: list[tuple[np.ndarray, np.ndarray]],
    order: np.ndarray,
    lr: float,
    l2: float,
    fit_intercept: bool,
) -> float:
    """Per-tuple SGD over rows scattered across dense chunks.

    ``chunks`` is a list of ``(X, y)`` pairs — typically the ``dense``/
    ``labels`` arrays of several lazy columnar blocks, consumed in place with
    no concatenation or per-tuple repack.  ``order`` is an ``(n, 2)`` array
    of ``(chunk, row)`` visit addresses.  The per-tuple arithmetic is the
    same sequence as :func:`glm_epoch_dense` over the equivalent
    concatenation, so results agree bit-for-bit with ``step_block``.
    """
    decay = 1.0 - lr * l2
    s = 1.0
    dldz = loss.dloss_dz_scalar
    mats = [np.asarray(X, dtype=np.float64) for X, _ in chunks]
    labels = [np.asarray(y, dtype=np.float64).tolist() for _, y in chunks]
    for c, i in order.tolist():
        x = mats[c][i]
        z = s * float(x @ w) + b
        coef = dldz(z, labels[c][i])
        if l2:
            s *= decay
            if -_MIN_SCALE < s < _MIN_SCALE:
                w *= s
                s = 1.0
        if coef != 0.0:
            w -= ((lr * coef) / s) * x
            if fit_intercept:
                b -= lr * coef
    if s != 1.0:
        w *= s
    return b


def glm_epoch_sparse_chunks(
    w: np.ndarray,
    b: float,
    loss: ScalarLoss,
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    order: np.ndarray,
    lr: float,
    l2: float,
    fit_intercept: bool,
) -> float:
    """Per-tuple SGD over CSR rows scattered across chunks.

    ``chunks`` is a list of ``(indptr, indices, values, y)`` quadruples — the
    CSR column chunks of several (lazy) columnar blocks, used exactly as
    decoded.  ``order`` is an ``(n, 2)`` array of ``(chunk, row)`` visit
    addresses.  Update-per-tuple sequence matches
    :func:`glm_epoch_sparse` over the equivalent concatenation bit-for-bit.
    """
    decay = 1.0 - lr * l2
    s = 1.0
    dldz = loss.dloss_dz_scalar
    bounds = [indptr.tolist() for indptr, _, _, _ in chunks]
    labels = [np.asarray(y, dtype=np.float64).tolist() for _, _, _, y in chunks]
    unique = [csr_rows_unique(ip, ix) for ip, ix, _, _ in chunks]
    for c, i in order.tolist():
        lo = bounds[c][i]
        hi = bounds[c][i + 1]
        idx = chunks[c][1][lo:hi]
        vals = chunks[c][2][lo:hi]
        z = s * float(vals @ w[idx]) + b
        coef = dldz(z, labels[c][i])
        if l2:
            s *= decay
            if -_MIN_SCALE < s < _MIN_SCALE:
                w *= s
                s = 1.0
        if coef != 0.0:
            scale = -(lr * coef) / s
            if unique[c]:
                w[idx] += scale * vals
            else:
                np.add.at(w, idx, scale * vals)
            if fit_intercept:
                b -= lr * coef
    if s != 1.0:
        w *= s
    return b


def csr_rows_unique(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """True when every CSR row's indices are strictly increasing.

    Strictly sorted rows (how every constructor in this repo lays them out)
    are trivially duplicate-free; anything else conservatively reports
    ``False`` so callers keep the duplicate-safe ``np.add.at`` path.
    """
    if indices.size <= 1:
        return True
    diffs = np.diff(indices)
    mask = np.ones(diffs.size, dtype=bool)
    boundaries = np.asarray(indptr[1:-1], dtype=np.int64) - 1
    boundaries = boundaries[(boundaries >= 0) & (boundaries < diffs.size)]
    mask[boundaries] = False
    return bool(np.all(diffs[mask] > 0))
