"""Optimisers: plain SGD and Adam over dict-of-arrays parameters.

The per-tuple standard-SGD loop bypasses these (it uses the models'
``step_example`` fast path); the optimisers here drive the mini-batch modes
(Sections 7.2 and 7.4) and the Adam experiments (Figure 10).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .models.base import Params, SupervisedModel

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "RMSprop"]


class Optimizer(ABC):
    """Applies batch gradients to a model's parameters."""

    def __init__(self, model: SupervisedModel):
        self.model = model

    @abstractmethod
    def step(self, grads: Params, lr: float) -> None:
        """Consume one batch gradient at learning rate ``lr``."""

    # -- checkpointing -------------------------------------------------
    # Slot-state keys are flat strings mapping to float64-safe ndarrays so
    # they round-trip through ``np.savez`` bit-exactly; a stateless
    # optimiser returns {} and restores from {}.

    def state_dict(self) -> dict[str, np.ndarray]:
        """Internal slot state (momenta, accumulators) as named arrays."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but checkpoint carries "
                f"optimizer state: {sorted(state)}"
            )

    @staticmethod
    def _pack(prefix: str, slots: Params) -> dict[str, np.ndarray]:
        return {f"{prefix}.{key}": np.asarray(val) for key, val in slots.items()}

    @staticmethod
    def _unpack(prefix: str, state: dict[str, np.ndarray]) -> Params:
        marker = prefix + "."
        return {
            key[len(marker):]: np.array(val)
            for key, val in state.items()
            if key.startswith(marker)
        }


class SGD(Optimizer):
    """Vanilla (optionally momentum) stochastic gradient descent."""

    def __init__(self, model: SupervisedModel, momentum: float = 0.0):
        super().__init__(model)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Params = {}

    def step(self, grads: Params, lr: float) -> None:
        params = self.model.params
        if self.momentum == 0.0:
            for key, grad in grads.items():
                params[key] -= lr * grad
            return
        for key, grad in grads.items():
            vel = self._velocity.get(key)
            if vel is None:
                vel = np.zeros_like(grad)
            vel = self.momentum * vel + grad
            self._velocity[key] = vel
            params[key] -= lr * vel

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._pack("velocity", self._velocity)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._velocity = self._unpack("velocity", state)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — Figure 10's beyond-SGD optimiser."""

    def __init__(
        self,
        model: SupervisedModel,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(model)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Params = {}
        self._v: Params = {}
        self._t = 0

    def step(self, grads: Params, lr: float) -> None:
        self._t += 1
        params = self.model.params
        for key, grad in grads.items():
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            params[key] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = self._pack("m", self._m)
        state.update(self._pack("v", self._v))
        state["t"] = np.asarray(self._t, dtype=np.int64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._m = self._unpack("m", state)
        self._v = self._unpack("v", state)
        self._t = int(state.get("t", 0))


class AdaGrad(Optimizer):
    """AdaGrad — per-coordinate learning rates from accumulated squares.

    One of the first-order optimiser variants the paper's Section 7.2.3
    groups with Adam ("we are confident that CorgiPile can also be used in
    other optimizers").
    """

    def __init__(self, model: SupervisedModel, eps: float = 1e-10):
        super().__init__(model)
        self.eps = float(eps)
        self._accum: Params = {}

    def step(self, grads: Params, lr: float) -> None:
        params = self.model.params
        for key, grad in grads.items():
            accum = self._accum.get(key)
            if accum is None:
                accum = np.zeros_like(grad)
            accum = accum + grad * grad
            self._accum[key] = accum
            params[key] -= lr * grad / (np.sqrt(accum) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._pack("accum", self._accum)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._accum = self._unpack("accum", state)


class RMSprop(Optimizer):
    """RMSprop — exponentially decayed squared-gradient normalisation."""

    def __init__(self, model: SupervisedModel, rho: float = 0.9, eps: float = 1e-8):
        super().__init__(model)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho = float(rho)
        self.eps = float(eps)
        self._mean_square: Params = {}

    def step(self, grads: Params, lr: float) -> None:
        params = self.model.params
        for key, grad in grads.items():
            ms = self._mean_square.get(key)
            if ms is None:
                ms = np.zeros_like(grad)
            ms = self.rho * ms + (1 - self.rho) * grad * grad
            self._mean_square[key] = ms
            params[key] -= lr * grad / (np.sqrt(ms) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._pack("mean_square", self._mean_square)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._mean_square = self._unpack("mean_square", state)
