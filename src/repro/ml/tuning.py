"""Hyper-parameter tuning and multi-seed statistics.

The paper tunes learning rates by grid search over {0.1, 0.01, 0.001}
(Section 7.1.3) and reports converged accuracies that average out SGD
noise.  This module provides both pieces:

* :func:`grid_search` — train one model per hyper-parameter combination
  and return the best by validation score;
* :func:`multi_seed` — repeat a training run across seeds and report
  mean/std/min/max of the converged score, the right way to compare
  strategies at our (noisy, scaled-down) data sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..data.dataset import Dataset
from .schedules import ExponentialDecay
from .trainer import ConvergenceHistory, Trainer

__all__ = ["GridResult", "grid_search", "SeedStats", "multi_seed"]


@dataclass
class GridResult:
    """Outcome of a grid search."""

    best_params: dict
    best_score: float
    best_history: ConvergenceHistory
    trials: list[dict] = field(default_factory=list)

    def as_rows(self) -> list[dict]:
        return self.trials


def grid_search(
    model_factory: Callable[[], object],
    train: Dataset,
    validation: Dataset,
    index_source_factory: Callable[[int], object],
    param_grid: Mapping[str, Sequence],
    *,
    epochs: int,
    batch_size: int = 1,
) -> GridResult:
    """Exhaustive search over ``param_grid``.

    ``param_grid`` maps parameter names to candidate values; recognised
    names are ``learning_rate`` and ``decay`` (others raise).  Each trial
    trains a fresh model with a fresh index source (seeded by the trial
    number) and scores it on ``validation`` using the tail-averaged
    converged score.
    """
    recognised = {"learning_rate", "decay"}
    unknown = set(param_grid) - recognised
    if unknown:
        raise ValueError(f"unknown grid parameters: {sorted(unknown)}")
    if not param_grid:
        raise ValueError("param_grid must contain at least one parameter")

    names = list(param_grid)
    best: GridResult | None = None
    trials: list[dict] = []
    for trial, values in enumerate(itertools.product(*(param_grid[n] for n in names))):
        params = dict(zip(names, values))
        schedule = ExponentialDecay(
            params.get("learning_rate", 0.05), params.get("decay", 0.95)
        )
        history = Trainer(
            model_factory(),
            train,
            index_source_factory(trial),
            epochs=epochs,
            schedule=schedule,
            batch_size=batch_size,
            test=validation,
        ).run()
        score = history.converged_test_score()
        trials.append({**params, "score": round(score, 4)})
        if best is None or score > best.best_score:
            best = GridResult(
                best_params=params, best_score=score, best_history=history
            )
    assert best is not None
    best.trials = trials
    return best


@dataclass(frozen=True)
class SeedStats:
    """Converged-score statistics across seeds."""

    scores: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    @property
    def min(self) -> float:
        return float(np.min(self.scores))

    @property
    def max(self) -> float:
        return float(np.max(self.scores))

    def overlaps(self, other: "SeedStats", sigmas: float = 2.0) -> bool:
        """Whether the two mean±sigmas intervals intersect."""
        lo_a, hi_a = self.mean - sigmas * self.std, self.mean + sigmas * self.std
        lo_b, hi_b = other.mean - sigmas * other.std, other.mean + sigmas * other.std
        return hi_a >= lo_b and hi_b >= lo_a


def multi_seed(
    run: Callable[[int], ConvergenceHistory],
    seeds: Sequence[int],
) -> SeedStats:
    """Run ``run(seed)`` per seed; collect tail-averaged converged scores."""
    if not seeds:
        raise ValueError("need at least one seed")
    scores = tuple(run(seed).converged_test_score() for seed in seeds)
    return SeedStats(scores=scores)
