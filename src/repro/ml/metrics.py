"""Evaluation metrics used across the benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "r_squared"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of rows whose true label is among the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or logits.shape[0] != labels.shape[0]:
        raise ValueError("logits must be (n, classes) aligned with labels")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError("k must be in [1, n_classes]")
    top = np.argsort(logits, axis=1)[:, -k:]
    return float(np.mean((top == labels[:, None]).any(axis=1)))


def r_squared(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Coefficient of determination R²."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    residual = targets - predictions
    ss_res = float(residual @ residual)
    centred = targets - targets.mean()
    ss_tot = float(centred @ centred)
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
