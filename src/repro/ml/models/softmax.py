"""Softmax (multinomial logistic) regression — Section 7.4.2's multiclass GLM."""

from __future__ import annotations

import numpy as np

from ...data.dataset import FeatureMatrix
from ...data.sparse import SparseMatrix, SparseRow
from .base import Params, SupervisedModel

__all__ = ["SoftmaxRegression", "softmax", "log_softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class SoftmaxRegression(SupervisedModel):
    """Linear multiclass classifier with cross-entropy loss."""

    def __init__(self, n_features: int, n_classes: int, l2: float = 0.0, seed: int = 0):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.l2 = float(l2)
        self._params: Params = {
            "W": np.zeros((n_features, n_classes)),
            "b": np.zeros(n_classes),
        }
        del seed  # deterministic zero init; kept for interface symmetry

    @property
    def params(self) -> Params:
        return self._params

    # ------------------------------------------------------------------
    def logits(self, X: FeatureMatrix) -> np.ndarray:
        W, b = self._params["W"], self._params["b"]
        if isinstance(X, SparseMatrix):
            out = np.empty((X.n_rows, self.n_classes))
            for i, row in enumerate(X.iter_rows()):
                out[i] = row.values @ W[row.indices]
            return out + b
        return np.asarray(X, dtype=np.float64) @ W + b

    def loss(self, X: FeatureMatrix, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.int64)
        logp = log_softmax(self.logits(X))
        nll = -float(np.mean(logp[np.arange(len(y)), y]))
        if self.l2:
            W = self._params["W"]
            nll += 0.5 * self.l2 * float((W * W).sum())
        return nll

    def gradient(self, X: FeatureMatrix, y: np.ndarray) -> Params:
        y = np.asarray(y, dtype=np.int64)
        probs = softmax(self.logits(X))
        probs[np.arange(len(y)), y] -= 1.0
        probs /= len(y)
        if isinstance(X, SparseMatrix):
            gW = np.zeros_like(self._params["W"])
            for i, row in enumerate(X.iter_rows()):
                gW[row.indices] += np.outer(row.values, probs[i])
        else:
            gW = np.asarray(X).T @ probs
        if self.l2:
            gW = gW + self.l2 * self._params["W"]
        return {"W": gW, "b": probs.sum(axis=0)}

    def step_example(self, features: np.ndarray | SparseRow, label: float, lr: float) -> None:
        W, b = self._params["W"], self._params["b"]
        y = int(label)
        if isinstance(features, SparseRow):
            logits = features.values @ W[features.indices] + b
            probs = softmax(logits)
            probs[y] -= 1.0
            if self.l2:
                W *= 1.0 - lr * self.l2
            W[features.indices] -= lr * np.outer(features.values, probs)
        else:
            x = np.asarray(features, dtype=np.float64)
            probs = softmax(x @ W + b)
            probs[y] -= 1.0
            if self.l2:
                W *= 1.0 - lr * self.l2
            W -= lr * np.outer(x, probs)
        b -= lr * probs

    # ------------------------------------------------------------------
    def predict(self, X: FeatureMatrix) -> np.ndarray:
        return self.logits(X).argmax(axis=1)

    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=np.int64)))
