"""Generalized linear models: logistic regression, linear SVM, linear regression.

These are the paper's in-DB workloads (Sections 7.3-7.4).  All three share
one implementation parameterised by a :class:`~repro.ml.losses.ScalarLoss`
over the raw score ``z = w·x + b``, handle dense and sparse features, and
provide a specialised per-tuple :meth:`step_example` so the standard-SGD
loop stays cheap (a dot product and a scaled axpy per tuple, plus a sparse
scatter-add for criteo-style rows).
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import FeatureMatrix
from ...data.sparse import SparseMatrix, SparseRow
from ..kernels import (
    glm_epoch_dense,
    glm_epoch_dense_chunks,
    glm_epoch_sparse,
    glm_epoch_sparse_chunks,
)
from ..losses import HingeLoss, LogisticLoss, ScalarLoss, SquaredLoss
from .base import Params, SupervisedModel

__all__ = ["GeneralizedLinearModel", "LogisticRegression", "LinearSVM", "LinearRegression"]


class GeneralizedLinearModel(SupervisedModel):
    """A linear score model ``z = w·x + b`` trained under a scalar loss."""

    def __init__(
        self,
        n_features: int,
        loss: ScalarLoss,
        l2: float = 0.0,
        fit_intercept: bool = True,
        seed: int = 0,
        init_scale: float = 0.0,
    ):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_features = int(n_features)
        self.loss_fn = loss
        self.l2 = float(l2)
        self.fit_intercept = bool(fit_intercept)
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(n_features) * init_scale if init_scale else np.zeros(n_features)
        self._params: Params = {"w": w, "b": np.zeros(1)}

    # ------------------------------------------------------------------
    @property
    def params(self) -> Params:
        return self._params

    @property
    def w(self) -> np.ndarray:
        return self._params["w"]

    @property
    def b(self) -> float:
        return float(self._params["b"][0])

    # ------------------------------------------------------------------
    def decision_function(self, X: FeatureMatrix) -> np.ndarray:
        if isinstance(X, SparseMatrix):
            z = X.dot(self.w)
        else:
            z = np.asarray(X, dtype=np.float64) @ self.w
        if self.fit_intercept:
            z = z + self.b
        return z

    def loss(self, X: FeatureMatrix, y: np.ndarray) -> float:
        z = self.decision_function(X)
        base = self.loss_fn.mean_value(z, y)
        if self.l2:
            base += 0.5 * self.l2 * float(self.w @ self.w)
        return base

    def gradient(self, X: FeatureMatrix, y: np.ndarray) -> Params:
        z = self.decision_function(X)
        coef = self.loss_fn.dloss_dz(z, np.asarray(y, dtype=np.float64))
        n = len(coef)
        if isinstance(X, SparseMatrix):
            gw = X.t_dot(coef) / n
        else:
            gw = np.asarray(X).T @ coef / n
        if self.l2:
            gw = gw + self.l2 * self.w
        gb = np.array([coef.mean() if self.fit_intercept else 0.0])
        return {"w": gw, "b": gb}

    # ------------------------------------------------------------------
    def step_example(self, features: np.ndarray | SparseRow, label: float, lr: float) -> None:
        w = self._params["w"]
        if isinstance(features, SparseRow):
            z = features.dot(w)
            if self.fit_intercept:
                z += self.b
            coef = float(self.loss_fn.dloss_dz(z, label))
            if self.l2:
                w *= 1.0 - lr * self.l2
            if coef != 0.0:
                features.add_into(w, -lr * coef)
        else:
            x = features
            z = float(x @ w)
            if self.fit_intercept:
                z += self.b
            coef = float(self.loss_fn.dloss_dz(z, label))
            if self.l2:
                w *= 1.0 - lr * self.l2
            if coef != 0.0:
                w -= (lr * coef) * x
        if self.fit_intercept and coef != 0.0:
            self._params["b"][0] -= lr * coef

    def step_block(
        self,
        X: FeatureMatrix,
        y: np.ndarray,
        lr: float,
        order: np.ndarray | None = None,
    ) -> None:
        """Fused per-tuple SGD over ``X`` rows in visit order.

        Same update-per-tuple semantics as repeated :meth:`step_example`
        (enforced to 1e-9 by test), executed by the vectorized kernels in
        :mod:`repro.ml.kernels` (lazy-L2 scaling, scalar loss derivatives,
        duplicate-free scatter-add fast path).
        """
        y = np.asarray(y, dtype=np.float64)
        order = (
            np.arange(y.size, dtype=np.int64)
            if order is None
            else np.asarray(order, dtype=np.int64)
        )
        w = self._params["w"]
        b = float(self._params["b"][0])
        if isinstance(X, SparseMatrix):
            b = glm_epoch_sparse(
                w,
                b,
                self.loss_fn,
                X.indptr,
                X.indices,
                X.data,
                y,
                order,
                lr,
                self.l2,
                self.fit_intercept,
            )
        else:
            b = glm_epoch_dense(
                w,
                b,
                self.loss_fn,
                np.asarray(X, dtype=np.float64),
                y,
                order,
                lr,
                self.l2,
                self.fit_intercept,
            )
        self._params["b"][0] = b

    def step_chunks(self, batches, order: np.ndarray, lr: float) -> None:
        """Fused per-tuple SGD straight off (lazy) columnar block chunks.

        Consumes each batch's column arrays as decoded — the CSR triple or
        the dense run — with no concatenation and no per-tuple repack; the
        update sequence is bit-identical to :meth:`step_block` over the
        equivalent concatenation (and hence to repeated
        :meth:`step_example`).
        """
        order = np.asarray(order, dtype=np.int64)
        w = self._params["w"]
        b = float(self._params["b"][0])
        if batches and batches[0].is_sparse:
            chunks = [
                (bt.indptr, bt.indices, bt.values, bt.labels) for bt in batches
            ]
            b = glm_epoch_sparse_chunks(
                w, b, self.loss_fn, chunks, order, lr, self.l2, self.fit_intercept
            )
        else:
            dense_chunks = [
                (np.asarray(bt.dense, dtype=np.float64), bt.labels) for bt in batches
            ]
            b = glm_epoch_dense_chunks(
                w, b, self.loss_fn, dense_chunks, order, lr, self.l2, self.fit_intercept
            )
        self._params["b"][0] = b


class LogisticRegression(GeneralizedLinearModel):
    """Binary logistic regression over {-1, +1} labels."""

    def __init__(self, n_features: int, l2: float = 0.0, **kwargs):
        super().__init__(n_features, LogisticLoss(), l2=l2, **kwargs)

    def predict(self, X: FeatureMatrix) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)

    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))


class LinearSVM(GeneralizedLinearModel):
    """Linear SVM (hinge loss) over {-1, +1} labels."""

    def __init__(self, n_features: int, l2: float = 1e-4, **kwargs):
        super().__init__(n_features, HingeLoss(), l2=l2, **kwargs)

    def predict(self, X: FeatureMatrix) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)

    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))


class LinearRegression(GeneralizedLinearModel):
    """Least-squares linear regression; score is the R² coefficient."""

    def __init__(self, n_features: int, l2: float = 0.0, **kwargs):
        super().__init__(n_features, SquaredLoss(), l2=l2, **kwargs)

    def predict(self, X: FeatureMatrix) -> np.ndarray:
        return self.decision_function(X)

    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64)
        residual = y - self.predict(X)
        ss_res = float(residual @ residual)
        centred = y - y.mean()
        ss_tot = float(centred @ centred)
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot
