"""Model interface shared by the GLMs and the MLP.

Models hold their parameters as a flat ``dict[str, np.ndarray]`` so generic
optimisers (mini-batch SGD, Adam) can update any model uniformly.  GLMs
additionally expose a fast in-place :meth:`SupervisedModel.step_example`
path used by the per-tuple standard-SGD loop (the dominant mode of the
paper's in-DB experiments).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ...data.dataset import FeatureMatrix
from ...data.sparse import SparseRow

__all__ = ["SupervisedModel", "Params"]

Params = dict[str, np.ndarray]


class SupervisedModel(ABC):
    """A trainable model with dict-of-arrays parameters."""

    @property
    @abstractmethod
    def params(self) -> Params:
        """The live parameter arrays (mutating them mutates the model)."""

    @abstractmethod
    def loss(self, X: FeatureMatrix, y: np.ndarray) -> float:
        """Mean loss over a batch."""

    @abstractmethod
    def gradient(self, X: FeatureMatrix, y: np.ndarray) -> Params:
        """Mean gradient over a batch, keyed like :attr:`params`."""

    @abstractmethod
    def predict(self, X: FeatureMatrix) -> np.ndarray:
        """Task-level predictions (labels or regression values)."""

    @abstractmethod
    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        """The task metric: accuracy for classifiers, R² for regression."""

    def step_example(
        self, features: np.ndarray | SparseRow, label: float, lr: float
    ) -> None:
        """One in-place SGD step on a single example (fast path).

        The default routes through :meth:`gradient`; GLMs override this with
        a specialised update to keep the per-tuple loop cheap.
        """
        X, y = _as_batch(features, label)
        grads = self.gradient(X, y)
        for key, grad in grads.items():
            self.params[key] -= lr * grad

    def step_block(
        self,
        X: FeatureMatrix,
        y: np.ndarray,
        lr: float,
        order: np.ndarray | None = None,
    ) -> None:
        """Per-tuple SGD over the rows of ``X`` in visit order.

        One model update per tuple, visiting rows in ``order`` (sequential
        when omitted) — semantically identical to calling
        :meth:`step_example` per row.  This default *is* that reference
        loop (with the per-tuple boxing hoisted); GLMs override it with the
        fused kernels in :mod:`repro.ml.kernels`.
        """
        from ...data.sparse import SparseMatrix

        y = np.asarray(y, dtype=np.float64)
        positions = (
            range(y.size) if order is None else np.asarray(order, dtype=np.int64).tolist()
        )
        labels = y.tolist()
        if isinstance(X, SparseMatrix):
            row = X.row
            for i in positions:
                self.step_example(row(i), labels[i], lr)
        else:
            X = np.asarray(X, dtype=np.float64)
            for i in positions:
                self.step_example(X[i], labels[i], lr)

    def step_chunks(self, batches, order: np.ndarray, lr: float) -> None:
        """Per-tuple SGD addressed as ``(chunk, row)`` pairs over ``batches``.

        ``batches`` is a sequence of batch-like objects (eager
        :class:`~repro.storage.codec.TupleBatch` or lazy columnar batches)
        exposing ``labels`` and ``row(i)``; ``order`` is an ``(n, 2)`` array
        whose rows address ``batches[chunk].row(row)``.  Semantically one
        :meth:`step_example` per address, in order — the chunk-direct
        equivalent of :meth:`step_block` over the concatenation.  GLMs
        override this with the fused chunk kernels (no per-tuple repack).
        """
        order = np.asarray(order, dtype=np.int64)
        labels = [np.asarray(b.labels, dtype=np.float64).tolist() for b in batches]
        for c, i in order.tolist():
            self.step_example(batches[c].row(i), labels[c][i], lr)

    def apply_gradient(self, grads: Params, lr: float) -> None:
        for key, grad in grads.items():
            self.params[key] -= lr * grad

    def parameter_vector(self) -> np.ndarray:
        """All parameters flattened into one vector (for theory evaluations)."""
        return np.concatenate([p.ravel() for p in self.params.values()])

    def load_parameter_vector(self, vector: np.ndarray) -> None:
        """Inverse of :meth:`parameter_vector`: load a flat vector in place.

        The multi-process engine moves parameters between the coordinator
        and workers as flat shared-memory vectors; this scatters one back
        into the live arrays (same key order as :meth:`parameter_vector`).
        """
        vector = np.asarray(vector, dtype=np.float64).ravel()
        expected = sum(p.size for p in self.params.values())
        if vector.size != expected:
            raise ValueError(
                f"parameter vector has {vector.size} entries, model needs {expected}"
            )
        offset = 0
        for param in self.params.values():
            param[...] = vector[offset : offset + param.size].reshape(param.shape)
            offset += param.size


def _as_batch(features: np.ndarray | SparseRow, label: float):
    from ...data.sparse import SparseMatrix

    if isinstance(features, SparseRow):
        X = SparseMatrix.from_rows([features], features.n_features)
    else:
        X = np.asarray(features, dtype=np.float64).reshape(1, -1)
    return X, np.array([label], dtype=np.float64)
