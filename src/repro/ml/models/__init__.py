"""Models: GLMs (LR, SVM, linear regression), softmax regression, MLP."""

from .base import Params, SupervisedModel
from .linear import GeneralizedLinearModel, LinearRegression, LinearSVM, LogisticRegression
from .mlp import MLPClassifier
from .softmax import SoftmaxRegression, log_softmax, softmax

__all__ = [
    "Params",
    "SupervisedModel",
    "GeneralizedLinearModel",
    "LogisticRegression",
    "LinearSVM",
    "LinearRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "softmax",
    "log_softmax",
]
