"""A from-scratch multilayer perceptron — the deep-learning stand-in.

The paper's deep-learning experiments (ResNet50/VGG19/HAN/TextCNN, Figures
7-10) use the networks only as *non-convex objectives whose SGD trajectory
is sensitive to data order*.  A two-layer MLP with ReLU hidden units and a
softmax head has the same property — trained on clustered multiclass data
with No Shuffle it collapses to predicting recently-seen classes, while with
CorgiPile it matches Shuffle Once — and is tractable in pure NumPy.

Supports both dense inputs (image-like) and sparse bag-of-words inputs
(text-like, for the yelp stand-in).
"""

from __future__ import annotations

import numpy as np

from ...data.dataset import FeatureMatrix
from ...data.sparse import SparseMatrix
from .base import Params, SupervisedModel
from .softmax import log_softmax, softmax

__all__ = ["MLPClassifier"]


class MLPClassifier(SupervisedModel):
    """Input → ReLU hidden layer → softmax output."""

    def __init__(
        self,
        n_features: int,
        n_hidden: int,
        n_classes: int,
        l2: float = 0.0,
        seed: int = 0,
    ):
        if min(n_features, n_hidden, n_classes) <= 0:
            raise ValueError("layer sizes must be positive")
        self.n_features = int(n_features)
        self.n_hidden = int(n_hidden)
        self.n_classes = int(n_classes)
        self.l2 = float(l2)
        rng = np.random.default_rng(seed)
        # He initialisation for the ReLU layer, Xavier for the head.
        self._params: Params = {
            "W1": rng.standard_normal((n_features, n_hidden)) * np.sqrt(2.0 / n_features),
            "b1": np.zeros(n_hidden),
            "W2": rng.standard_normal((n_hidden, n_classes)) * np.sqrt(1.0 / n_hidden),
            "b2": np.zeros(n_classes),
        }

    @property
    def params(self) -> Params:
        return self._params

    # ------------------------------------------------------------------
    def _dense(self, X: FeatureMatrix) -> np.ndarray:
        if isinstance(X, SparseMatrix):
            return X.to_dense()
        return np.asarray(X, dtype=np.float64)

    def _forward(self, X: FeatureMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        Xd = self._dense(X)
        pre = Xd @ self._params["W1"] + self._params["b1"]
        hidden = np.maximum(pre, 0.0)
        logits = hidden @ self._params["W2"] + self._params["b2"]
        return Xd, hidden, logits

    def logits(self, X: FeatureMatrix) -> np.ndarray:
        return self._forward(X)[2]

    def loss(self, X: FeatureMatrix, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.int64)
        logp = log_softmax(self.logits(X))
        nll = -float(np.mean(logp[np.arange(len(y)), y]))
        if self.l2:
            nll += 0.5 * self.l2 * sum(
                float((self._params[k] ** 2).sum()) for k in ("W1", "W2")
            )
        return nll

    def gradient(self, X: FeatureMatrix, y: np.ndarray) -> Params:
        y = np.asarray(y, dtype=np.int64)
        Xd, hidden, logits = self._forward(X)
        n = len(y)
        dlogits = softmax(logits)
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        gW2 = hidden.T @ dlogits
        gb2 = dlogits.sum(axis=0)
        dhidden = dlogits @ self._params["W2"].T
        dhidden[hidden <= 0.0] = 0.0
        gW1 = Xd.T @ dhidden
        gb1 = dhidden.sum(axis=0)
        if self.l2:
            gW1 = gW1 + self.l2 * self._params["W1"]
            gW2 = gW2 + self.l2 * self._params["W2"]
        return {"W1": gW1, "b1": gb1, "W2": gW2, "b2": gb2}

    # ------------------------------------------------------------------
    def predict(self, X: FeatureMatrix) -> np.ndarray:
        return self.logits(X).argmax(axis=1)

    def score(self, X: FeatureMatrix, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=np.int64)))

    def top_k_accuracy(self, X: FeatureMatrix, y: np.ndarray, k: int = 5) -> float:
        """Top-k accuracy (the paper reports Top-1 and Top-5 on ImageNet)."""
        y = np.asarray(y, dtype=np.int64)
        top = np.argsort(self.logits(X), axis=1)[:, -k:]
        return float(np.mean([y[i] in top[i] for i in range(len(y))]))
