"""From-scratch NumPy machine learning: losses, models, optimisers, trainer."""

from .kernels import csr_rows_unique, glm_epoch_dense, glm_epoch_sparse
from .losses import HingeLoss, LogisticLoss, ScalarLoss, SquaredLoss
from .metrics import accuracy, r_squared, top_k_accuracy
from .models import (
    GeneralizedLinearModel,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    SoftmaxRegression,
    SupervisedModel,
)
from .optim import SGD, AdaGrad, Adam, Optimizer, RMSprop
from .schedules import ConstantLR, ExponentialDecay, InverseEpochDecay, StepDecay
from .persistence import (
    CheckpointState,
    durable_write,
    load_checkpoint,
    load_model,
    model_from_bytes,
    model_to_bytes,
    save_checkpoint,
    save_model,
)
from .streaming import train_streaming, train_streaming_chunks, training_columns
from .tuning import GridResult, SeedStats, grid_search, multi_seed
from .trainer import (
    CheckpointConfig,
    ConvergenceHistory,
    EarlyStopping,
    EpochRecord,
    Trainer,
    fixed_order_source,
)

__all__ = [
    "glm_epoch_dense",
    "glm_epoch_sparse",
    "csr_rows_unique",
    "ScalarLoss",
    "LogisticLoss",
    "HingeLoss",
    "SquaredLoss",
    "accuracy",
    "top_k_accuracy",
    "r_squared",
    "SupervisedModel",
    "GeneralizedLinearModel",
    "LogisticRegression",
    "LinearSVM",
    "LinearRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "RMSprop",
    "ConstantLR",
    "ExponentialDecay",
    "StepDecay",
    "InverseEpochDecay",
    "Trainer",
    "EarlyStopping",
    "ConvergenceHistory",
    "EpochRecord",
    "fixed_order_source",
    "save_model",
    "load_model",
    "model_to_bytes",
    "model_from_bytes",
    "CheckpointConfig",
    "CheckpointState",
    "save_checkpoint",
    "durable_write",
    "load_checkpoint",
    "grid_search",
    "GridResult",
    "multi_seed",
    "SeedStats",
    "train_streaming",
    "train_streaming_chunks",
    "training_columns",
]
