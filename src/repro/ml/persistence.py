"""Model persistence: save/load trained models and training checkpoints.

The paper keeps trained models as in-kernel objects addressed by an id; a
deployable system also needs them on disk.  Models serialise to a single
``.npz`` file holding the parameter arrays plus a JSON header with the
model class and its constructor configuration, so ``load_model`` rebuilds
an identical, immediately usable model.

Checkpoints extend the same container with everything a killed run needs to
resume *bit-exactly*: the model blob, the optimiser's slot state, the epoch
and in-epoch tuple cursor, and run metadata (index-source seed, strategy).
Because every index source derives its visit order as a pure function of
``(seed, epoch)``, storing just ``(epoch, cursor)`` pins the exact remaining
visit order — no RNG state blob is needed.  ``save_checkpoint`` writes
atomically and durably (temp file + ``fsync`` + ``os.replace`` + directory
``fsync``), so a crash mid-write leaves the previous checkpoint intact and
a power loss after the rename cannot surface an empty file.  Arrays round-trip through ``np.savez`` as raw
float64, which is lossless, hence resume-equivalence to the last bit.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .models.base import SupervisedModel
from .models.linear import LinearRegression, LinearSVM, LogisticRegression
from .models.mlp import MLPClassifier
from .models.softmax import SoftmaxRegression

__all__ = [
    "save_model",
    "load_model",
    "model_to_bytes",
    "model_from_bytes",
    "durable_write",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
]

_FORMAT_VERSION = 1
# Versioned alongside the model format: a checkpoint embeds a model blob of
# _FORMAT_VERSION plus resume state of _CHECKPOINT_VERSION.
_CHECKPOINT_VERSION = 1


def _config_of(model: SupervisedModel) -> dict:
    if isinstance(model, (LogisticRegression, LinearSVM, LinearRegression)):
        return {
            "n_features": model.n_features,
            "l2": model.l2,
            "fit_intercept": model.fit_intercept,
        }
    if isinstance(model, SoftmaxRegression):
        return {
            "n_features": model.n_features,
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    if isinstance(model, MLPClassifier):
        return {
            "n_features": model.n_features,
            "n_hidden": model.n_hidden,
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    raise TypeError(f"cannot serialise model type {type(model).__name__}")


_CONSTRUCTORS = {
    "LogisticRegression": LogisticRegression,
    "LinearSVM": LinearSVM,
    "LinearRegression": LinearRegression,
    "SoftmaxRegression": SoftmaxRegression,
    "MLPClassifier": MLPClassifier,
}


def model_to_bytes(model: SupervisedModel) -> bytes:
    """Serialise a model (parameters + reconstruction header) to bytes."""
    header = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "config": _config_of(model),
    }
    buffer = io.BytesIO()
    arrays = {f"param__{key}": value for key, value in model.params.items()}
    arrays["__header__"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def model_from_bytes(blob: bytes) -> SupervisedModel:
    """Rebuild a model serialised by :func:`model_to_bytes`.

    Raises ``ValueError`` for corrupt or foreign blobs.
    """
    import zipfile

    try:
        archive_ctx = np.load(io.BytesIO(blob))
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ValueError(f"corrupt model blob: {exc}") from exc
    with archive_ctx as archive:
        try:
            header_bytes = bytes(archive["__header__"].tobytes())
        except (KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(f"corrupt model blob: {exc}") from exc
        header = json.loads(header_bytes.decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format {header.get('format_version')!r}")
        class_name = header["model_class"]
        try:
            constructor = _CONSTRUCTORS[class_name]
        except KeyError:
            raise ValueError(f"unknown model class {class_name!r}") from None
        model = constructor(**header["config"])
        for key in model.params:
            stored = archive[f"param__{key}"]
            if stored.shape != model.params[key].shape:
                raise ValueError(
                    f"shape mismatch for parameter {key!r}: "
                    f"{stored.shape} vs {model.params[key].shape}"
                )
            model.params[key][...] = stored
    return model


def durable_write(path: str | Path, data: bytes) -> Path:
    """Atomically and durably replace ``path`` with ``data``.

    Crash-safe against both failure modes of a plain write-then-rename:

    * the bytes go to ``path + '.tmp'`` first and move into place with
      ``os.replace``, so a crash mid-write never destroys the previous
      good file;
    * the tmp file is ``fsync``\\ ed before the rename and the parent
      directory after it, so a power loss after the rename cannot leave a
      zero-length (page-cache-only) "file" behind.

    If the write fails, the tmp file is unlinked rather than leaked.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); no-op where unsupported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def save_model(model: SupervisedModel, path: str | Path) -> Path:
    """Save a model to ``path`` (conventionally ``*.npz``)."""
    path = Path(path)
    path.write_bytes(model_to_bytes(model))
    return path


def load_model(path: str | Path) -> SupervisedModel:
    """Load a model saved by :func:`save_model`."""
    return model_from_bytes(Path(path).read_bytes())


# ----------------------------------------------------------------------
# Training checkpoints
# ----------------------------------------------------------------------


@dataclass
class CheckpointState:
    """Everything a resumed run needs, as loaded from disk.

    ``epoch`` is the epoch the run was inside (0-based) and ``cursor`` the
    number of tuples of that epoch already applied to the model; a resumed
    trainer replays ``epoch_indices(epoch)[cursor:]`` and continues.
    ``history`` holds the completed epochs' records as plain dicts (the
    trainer rehydrates them into :class:`~repro.ml.trainer.EpochRecord`).
    """

    model: SupervisedModel
    epoch: int
    cursor: int
    tuples_seen: int
    optimizer_state: dict[str, np.ndarray] = field(default_factory=dict)
    history: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)


def save_checkpoint(
    path: str | Path,
    model: SupervisedModel,
    *,
    epoch: int,
    cursor: int,
    tuples_seen: int,
    optimizer_state: dict[str, np.ndarray] | None = None,
    history: list[dict] | None = None,
    meta: dict | None = None,
) -> Path:
    """Atomically write a resumable training checkpoint to ``path``.

    The write goes through :func:`durable_write`: tmp file + ``fsync`` +
    ``os.replace`` + parent-directory ``fsync`` — a crash (or power loss)
    during or just after checkpointing can therefore never destroy the
    previous good checkpoint or leave a torn/empty one, and a failed write
    never leaks its tmp file (regression-tested in
    ``tests/test_checkpoint_resume.py``).
    """
    header = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "epoch": int(epoch),
        "cursor": int(cursor),
        "tuples_seen": int(tuples_seen),
        "history": list(history or []),
        "meta": dict(meta or {}),
    }
    arrays: dict[str, np.ndarray] = {
        "__model__": np.frombuffer(model_to_bytes(model), dtype=np.uint8),
        "__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    }
    for key, value in (optimizer_state or {}).items():
        arrays[f"opt__{key}"] = np.asarray(value)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return durable_write(path, buffer.getvalue())


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises ``ValueError`` for corrupt, foreign, or future-versioned files.
    """
    import zipfile

    try:
        archive_ctx = np.load(io.BytesIO(Path(path).read_bytes()))
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ValueError(f"corrupt checkpoint: {exc}") from exc
    with archive_ctx as archive:
        try:
            header = json.loads(bytes(archive["__header__"].tobytes()).decode())
            model_blob = bytes(archive["__model__"].tobytes())
        except (KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(f"corrupt checkpoint: {exc}") from exc
        if header.get("checkpoint_version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {header.get('checkpoint_version')!r}"
            )
        optimizer_state = {
            name[len("opt__"):]: np.array(archive[name])
            for name in archive.files
            if name.startswith("opt__")
        }
    return CheckpointState(
        model=model_from_bytes(model_blob),
        epoch=int(header["epoch"]),
        cursor=int(header["cursor"]),
        tuples_seen=int(header["tuples_seen"]),
        optimizer_state=optimizer_state,
        history=list(header.get("history", [])),
        meta=dict(header.get("meta", {})),
    )
