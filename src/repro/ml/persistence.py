"""Model persistence: save/load trained models.

The paper keeps trained models as in-kernel objects addressed by an id; a
deployable system also needs them on disk.  Models serialise to a single
``.npz`` file holding the parameter arrays plus a JSON header with the
model class and its constructor configuration, so ``load_model`` rebuilds
an identical, immediately usable model.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from .models.base import SupervisedModel
from .models.linear import LinearRegression, LinearSVM, LogisticRegression
from .models.mlp import MLPClassifier
from .models.softmax import SoftmaxRegression

__all__ = ["save_model", "load_model", "model_to_bytes", "model_from_bytes"]

_FORMAT_VERSION = 1


def _config_of(model: SupervisedModel) -> dict:
    if isinstance(model, (LogisticRegression, LinearSVM, LinearRegression)):
        return {
            "n_features": model.n_features,
            "l2": model.l2,
            "fit_intercept": model.fit_intercept,
        }
    if isinstance(model, SoftmaxRegression):
        return {
            "n_features": model.n_features,
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    if isinstance(model, MLPClassifier):
        return {
            "n_features": model.n_features,
            "n_hidden": model.n_hidden,
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    raise TypeError(f"cannot serialise model type {type(model).__name__}")


_CONSTRUCTORS = {
    "LogisticRegression": LogisticRegression,
    "LinearSVM": LinearSVM,
    "LinearRegression": LinearRegression,
    "SoftmaxRegression": SoftmaxRegression,
    "MLPClassifier": MLPClassifier,
}


def model_to_bytes(model: SupervisedModel) -> bytes:
    """Serialise a model (parameters + reconstruction header) to bytes."""
    header = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "config": _config_of(model),
    }
    buffer = io.BytesIO()
    arrays = {f"param__{key}": value for key, value in model.params.items()}
    arrays["__header__"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def model_from_bytes(blob: bytes) -> SupervisedModel:
    """Rebuild a model serialised by :func:`model_to_bytes`.

    Raises ``ValueError`` for corrupt or foreign blobs.
    """
    import zipfile

    try:
        archive_ctx = np.load(io.BytesIO(blob))
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ValueError(f"corrupt model blob: {exc}") from exc
    with archive_ctx as archive:
        try:
            header_bytes = bytes(archive["__header__"].tobytes())
        except (KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(f"corrupt model blob: {exc}") from exc
        header = json.loads(header_bytes.decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format {header.get('format_version')!r}")
        class_name = header["model_class"]
        try:
            constructor = _CONSTRUCTORS[class_name]
        except KeyError:
            raise ValueError(f"unknown model class {class_name!r}") from None
        model = constructor(**header["config"])
        for key in model.params:
            stored = archive[f"param__{key}"]
            if stored.shape != model.params[key].shape:
                raise ValueError(
                    f"shape mismatch for parameter {key!r}: "
                    f"{stored.shape} vs {model.params[key].shape}"
                )
            model.params[key][...] = stored
    return model


def save_model(model: SupervisedModel, path: str | Path) -> Path:
    """Save a model to ``path`` (conventionally ``*.npz``)."""
    path = Path(path)
    path.write_bytes(model_to_bytes(model))
    return path


def load_model(path: str | Path) -> SupervisedModel:
    """Load a model saved by :func:`save_model`."""
    return model_from_bytes(Path(path).read_bytes())
