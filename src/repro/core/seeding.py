"""Deterministic RNG derivation — one place for every seed → stream rule.

Every random decision in the reproduction must be a *pure function of a
small integer tuple* so that runs replay identically across threads,
processes, and resumes:

* shuffles derive from ``(seed, epoch)`` — the Section 5 requirement that
  all workers draw the *same* block permutation with no coordination;
* per-worker tuple shuffles derive from ``(seed, epoch, 1 + worker_id)`` —
  worker-local streams that never collide with the shared epoch stream;
* Volcano operators that need their own stream over the same ``(seed,
  epoch)`` append a fixed odd *stream code* (7, 11, 13, ...) so independent
  operators in one plan never share a stream;
* fault schedules derive from ``(seed, unit_code, target)`` — a per-unit
  draw that is independent of how reads interleave across loader threads
  or worker processes.

Historically each consumer built its own ``SeedSequence([...])`` inline;
the helpers here are those exact formulas (regression-pinned by
``tests/test_seeding.py``), so fault schedules, shuffles, and the
multi-process execution engine all stay byte-identical with pre-unification
code.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "derive_rng",
    "epoch_rng",
    "worker_rng",
    "stream_rng",
    "fault_unit_rng",
    "FAULT_UNIT_CODES",
    "TUPLE_SHUFFLE_STREAM",
    "SLIDING_WINDOW_STREAM",
    "MRS_STREAM",
    "RETRY_BACKOFF_STREAM",
    "CORGI2_OFFLINE_STREAM",
    "BLOCK_RESHUFFLE_STREAM",
]

# Stable small codes so the per-unit fault RNG stream is independent per
# unit kind (block-file blocks vs heap pages vs columnar column chunks vs
# B+tree index nodes).  A chunk's target id packs (block_id, column code) —
# see ``repro.faults.store.chunk_fault_target``; an index_node's target is
# the node id within its ``.idx`` file.
FAULT_UNIT_CODES = {"block": 1, "page": 2, "chunk": 3, "index_node": 4}

# Operator stream codes: fixed odd integers appended to (seed, epoch) so
# each operator kind owns a distinct stream.  Worker streams use
# ``1 + worker_id`` (1, 2, 3, ...), so operator codes start above any
# realistic worker count.
TUPLE_SHUFFLE_STREAM = 7
SLIDING_WINDOW_STREAM = 11
MRS_STREAM = 13
#: Stream code for storage retry-backoff jitter draws (`RetryPolicy`).
RETRY_BACKOFF_STREAM = 17
#: Stream code for the Corgi² one-time offline block re-grouping pass.
#: Epoch-independent (the regrouped copy is materialised once), so the
#: stream is keyed as ``(seed, 0, CORGI2_OFFLINE_STREAM)``.
CORGI2_OFFLINE_STREAM = 19
#: Stream code for per-block in-memory tuple reshuffles (the Learning-to-
#: Shuffle block-reshuffling scheme).
BLOCK_RESHUFFLE_STREAM = 23


def derive_rng(*words: int) -> np.random.Generator:
    """A generator keyed by an integer tuple (``SeedSequence`` spawn-free).

    The canonical primitive: every other helper is a naming convention over
    which words go where.
    """
    return np.random.default_rng(np.random.SeedSequence([int(w) for w in words]))


def epoch_rng(seed: int, epoch: int) -> np.random.Generator:
    """The shared per-epoch stream — block shuffles, global permutations."""
    return derive_rng(seed, epoch)


def worker_rng(seed: int, epoch: int, worker_id: int) -> np.random.Generator:
    """Worker ``worker_id``'s private per-epoch stream (tuple shuffles).

    Offset by one so worker 0 does not collide with :func:`epoch_rng`.
    """
    return derive_rng(seed, epoch, 1 + worker_id)


def stream_rng(seed: int, epoch: int, stream: int) -> np.random.Generator:
    """An operator-private per-epoch stream keyed by a fixed stream code."""
    return derive_rng(seed, epoch, stream)


def fault_unit_rng(seed: int, unit: str, target: int) -> np.random.Generator:
    """The pure per-``(seed, unit, id)`` stream of the fault plane.

    Raises ``KeyError`` for unknown unit kinds — callers validate first.
    """
    return derive_rng(seed, FAULT_UNIT_CODES[unit], target)
