"""Shuffle buffers and the double-buffering pipeline model.

:class:`ShuffleBuffer` is the in-memory tuple buffer used by the TupleShuffle
operator (Section 6.2) and the ``CorgiPileDataset`` iterator (Section 5):
fill with tuples pulled from the block reader, shuffle, drain.

:func:`pipelined_time` computes the wall-clock of a producer/consumer
pipeline with double buffering (Section 6.3): while SGD consumes buffer A,
the write thread fills buffer B, so per-fill wall time is the *max* of fill
(I/O) and consume (compute) instead of their sum.  :func:`serial_time` is the
single-buffer baseline the paper's Figure 13 compares against.
"""

from __future__ import annotations

from typing import Generic, Iterable, Sequence, TypeVar

import numpy as np

from .. import obs

__all__ = ["ShuffleBuffer", "pipelined_time", "serial_time"]

T = TypeVar("T")


class ShuffleBuffer(Generic[T]):
    """A bounded buffer that shuffles its contents before draining."""

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._rng = rng
        self._items: list[T] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def add(self, item: T) -> None:
        if self.full:
            raise ValueError("buffer full; drain before adding")
        self._items.append(item)

    def fill_from(self, source: Iterable[T]) -> int:
        """Pull items from ``source`` until full or exhausted; return count.

        Consistent with :meth:`add`, the buffer never exceeds ``capacity``:
        a full buffer pulls nothing (returning 0), and no item is consumed
        from ``source`` without room to store it.
        """
        added = 0
        iterator = iter(source)
        while not self.full:
            try:
                item = next(iterator)
            except StopIteration:
                break
            self._items.append(item)
            added += 1
        return added

    def shuffle_and_drain(self) -> list[T]:
        """Shuffle buffered items, empty the buffer, return them."""
        order = self._rng.permutation(len(self._items))
        drained = [self._items[i] for i in order]
        self._items.clear()
        obs.inc("shuffle.buffer.drains")
        obs.inc("shuffle.buffer.tuples_drained", len(drained))
        return drained


def serial_time(fill_times: Sequence[float], consume_times: Sequence[float]) -> float:
    """Single-buffer wall clock: each fill and its consumption serialise."""
    if len(fill_times) != len(consume_times):
        raise ValueError("fill and consume sequences must have equal length")
    return float(sum(fill_times) + sum(consume_times))


def pipelined_time(fill_times: Sequence[float], consume_times: Sequence[float]) -> float:
    """Double-buffer wall clock.

    Fill ``i+1`` overlaps consumption of fill ``i``:
    ``fill[0] + sum(max(fill[i+1], consume[i])) + consume[-1]``.
    """
    if len(fill_times) != len(consume_times):
        raise ValueError("fill and consume sequences must have equal length")
    if not fill_times:
        return 0.0
    total = float(fill_times[0])
    for i in range(len(fill_times) - 1):
        total += max(float(fill_times[i + 1]), float(consume_times[i]))
    return total + float(consume_times[-1])
