"""Threaded prefetching — real double buffering for the data-loading path.

Section 6.3's double buffering overlaps data loading with SGD compute using
two concurrent threads.  The analytic timing model covers the *simulated*
engine; this module implements the mechanism for real on the PyTorch-style
path: a background thread drives the wrapped iterable (e.g. a
:class:`~repro.core.dataloader.DataLoader` over a
:class:`~repro.core.dataset.CorgiPileDataset`) and pushes items into a
bounded queue while the consumer trains on the previous items.

The thread lifecycle is fully managed by
:class:`~repro.core.lifecycle.ManagedProducer`: exceptions raised by the
producer are re-raised in the consumer, terminal puts are cancellable, and
every exit path — exhaustion, a consumer exception, or abandoning iteration
mid-epoch — deterministically joins the producer thread (a zombie raises
instead of leaking).  Hand-over timing flows into a
:class:`~repro.obs.LoaderMetrics` for the observability layer.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from .lifecycle import END, Failure, ManagedProducer, ProducerChannel
from ..obs import LoaderMetrics

__all__ = ["PrefetchLoader"]

T = TypeVar("T")


class PrefetchLoader(Generic[T]):
    """Iterate ``source`` through a managed background producer thread.

    ``depth`` bounds how far the producer may run ahead (two means classic
    double buffering: one item being consumed, one ready, one in flight).
    A fresh producer thread is started for every ``iter()`` so the loader
    can drive one pass per epoch, like the DataLoader it wraps; ``stats``
    (shared across epochs, and optionally across loaders) accumulates the
    queue/stall/wait counters.
    """

    def __init__(
        self,
        source: Iterable[T],
        depth: int = 2,
        stats: LoaderMetrics | None = None,
        name: str = "prefetch",
    ):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.source = source
        self.depth = int(depth)
        self.stats = stats if stats is not None else LoaderMetrics(name)
        self.name = name

    def __iter__(self) -> Iterator[T]:
        def produce(channel: ProducerChannel) -> None:
            for item in self.source:
                if not channel.put(item):
                    return

        producer = ManagedProducer(
            produce, depth=self.depth, name=f"{self.name}-producer", stats=self.stats
        )
        with producer:
            while True:
                item = producer.get()
                if item is END:
                    return
                if isinstance(item, Failure):
                    raise item.error
                yield item
