"""Threaded prefetching — real double buffering for the data-loading path.

Section 6.3's double-buffering overlaps data loading with SGD compute using
two concurrent threads.  The analytic timing model covers the *simulated*
engine; this module implements the mechanism for real on the PyTorch-style
path: a background thread drives the wrapped iterable (e.g. a
:class:`~repro.core.dataloader.DataLoader` over a
:class:`~repro.core.dataset.CorgiPileDataset`) and pushes items into a
bounded queue while the consumer trains on the previous items.

Exceptions raised by the producer are re-raised in the consumer, and the
producer thread shuts down cleanly if the consumer abandons iteration.
"""

from __future__ import annotations

import queue
import threading
from typing import Generic, Iterable, Iterator, TypeVar

__all__ = ["PrefetchLoader"]

T = TypeVar("T")

_END = object()


class _Failure:
    def __init__(self, error: BaseException):
        self.error = error


class PrefetchLoader(Generic[T]):
    """Iterate ``source`` through a background producer thread.

    ``depth`` bounds how far the producer may run ahead (two means classic
    double buffering: one item being consumed, one ready, one in flight).
    A fresh producer thread is started for every ``iter()`` so the loader
    can drive one pass per epoch, like the DataLoader it wraps.
    """

    def __init__(self, source: Iterable[T], depth: int = 2):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.source = source
        self.depth = int(depth)

    def __iter__(self) -> Iterator[T]:
        items: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def produce() -> None:
            try:
                for item in self.source:
                    while not stop.is_set():
                        try:
                            items.put(item, timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                items.put(_END)
            except BaseException as error:  # propagate to the consumer
                items.put(_Failure(error))

        producer = threading.Thread(target=produce, daemon=True, name="prefetch-producer")
        producer.start()
        try:
            while True:
                item = items.get()
                if item is _END:
                    return
                if isinstance(item, _Failure):
                    raise item.error
                yield item
        finally:
            stop.set()
