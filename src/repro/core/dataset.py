"""``CorgiPileDataset`` — the PyTorch-style iterable dataset API (Section 5).

The paper integrates CorgiPile into PyTorch as::

    train_dataset = CorgiPileDataset(dataset_path, block_index_path, ...)
    train_loader  = DataLoader(train_dataset, ...)
    train(train_loader, model, ...)

This module rebuilds that API without PyTorch.  A :class:`CorgiPileDataset`
wraps an on-disk block file (written by
:func:`repro.storage.blockfile.write_block_file`): iterating it reads blocks
in a fresh random order, buffers ``buffer_blocks`` blocks, shuffles the
buffered tuples, and yields them one by one — i.e. the iterator *is* the
two-level shuffle, streaming from real files.

Call :meth:`CorgiPileDataset.set_epoch` between epochs to advance the
shuffle seed (mirroring ``DistributedSampler.set_epoch`` in PyTorch).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..storage.blockfile import BlockFileReader
from ..storage.codec import TrainingTuple
from .buffer import ShuffleBuffer
from .seeding import epoch_rng, worker_rng
from ..obs import LoaderMetrics

__all__ = ["CorgiPileDataset", "ChunkFill"]


@dataclass
class ChunkFill:
    """One drained shuffle-buffer fill, addressed as ``(chunk, row)`` pairs.

    ``batches`` are the block batches backing this fill (lazy columnar
    batches on a v3 file — columns decode only when the consumer touches
    them); ``order[k] = (chunk, row)`` addresses ``batches[chunk].row(row)``.
    Feeding ``order`` to ``model.step_chunks`` visits tuples in exactly the
    order ``__iter__`` would have yielded them.
    """

    batches: list
    order: np.ndarray  # (n, 2) int64

    def __len__(self) -> int:
        return int(self.order.shape[0])


class CorgiPileDataset:
    """Iterable dataset performing the CorgiPile shuffle over a block file."""

    def __init__(
        self,
        path: str | Path,
        buffer_blocks: int,
        seed: int = 0,
        worker_id: int = 0,
        n_workers: int = 1,
        stats: LoaderMetrics | None = None,
        reader_factory: Callable[[str | Path], BlockFileReader] | None = None,
    ):
        if buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be positive")
        if n_workers <= 0 or not 0 <= worker_id < n_workers:
            raise ValueError("need 0 <= worker_id < n_workers")
        # ``reader_factory`` swaps the storage layer under the shuffle — e.g.
        # repro.faults.faulty_reader_factory injects a fault plan here.
        self.reader = (reader_factory or BlockFileReader)(path)
        self.buffer_blocks = int(buffer_blocks)
        self.seed = int(seed)
        self.worker_id = int(worker_id)
        self.n_workers = int(n_workers)
        self.epoch = 0
        #: Optional observability hook: counts buffer fills/drains per epoch.
        self.stats = stats

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return self.reader.n_tuples

    @property
    def n_blocks(self) -> int:
        return self.reader.n_blocks

    def set_epoch(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.epoch = int(epoch)

    # ------------------------------------------------------------------
    def _worker_blocks(self, rng: np.random.Generator) -> np.ndarray:
        """Block-level shuffle + split across workers (Section 5.1 step 2).

        All workers draw the *same* shuffled block index (same seed), then
        worker ``i`` takes the ``i``-th contiguous slice — so workers see
        disjoint random block sets.
        """
        order = rng.permutation(self.n_blocks)
        slices = np.array_split(order, self.n_workers)
        return slices[self.worker_id]

    def __iter__(self) -> Iterator[TrainingTuple]:
        # The block-shuffle RNG is shared across workers (same seed, same
        # epoch); the tuple-shuffle RNG is worker-local.
        block_rng = epoch_rng(self.seed, self.epoch)
        tuple_rng = worker_rng(self.seed, self.epoch, self.worker_id)
        my_blocks = self._worker_blocks(block_rng)
        buffer: ShuffleBuffer[TrainingTuple] = ShuffleBuffer(
            max(1, self.buffer_blocks) * max(1, self._tuples_per_block()), tuple_rng
        )
        filled_blocks = 0
        for block_id in my_blocks:
            for record in self.reader.read_block(int(block_id)):
                if buffer.full:
                    yield from self._drain(buffer)
                buffer.add(record)
            filled_blocks += 1
            if filled_blocks % self.buffer_blocks == 0:
                yield from self._drain(buffer)
        yield from self._drain(buffer)

    def iter_fills(self, columns=None) -> Iterator[ChunkFill]:
        """The two-level shuffle as chunk-addressed fills (no per-tuple repack).

        Mirrors :meth:`__iter__` exactly — same block permutation, same
        buffer capacity and drain points, same tuple-shuffle RNG draws — but
        instead of yielding decoded tuples it yields one :class:`ChunkFill`
        per buffer drain: the backing block batches plus the shuffled
        ``(chunk, row)`` visit order.  On a columnar file the batches are
        lazy, and ``columns`` (names) prunes the read to just the chunks the
        consumer touches — e.g. ``("labels", "indptr", "indices", "values")``
        for training without tuple ids.

        Guarantee (regression-tested): the concatenated visit order across
        fills is identical to the tuple order :meth:`__iter__` yields for
        the same (seed, epoch, worker).
        """
        block_rng = epoch_rng(self.seed, self.epoch)
        tuple_rng = worker_rng(self.seed, self.epoch, self.worker_id)
        my_blocks = self._worker_blocks(block_rng)
        buffer: ShuffleBuffer[tuple[int, int]] = ShuffleBuffer(
            max(1, self.buffer_blocks) * max(1, self._tuples_per_block()), tuple_rng
        )
        batches: list = []

        def drain() -> ChunkFill | None:
            n = len(buffer)
            if n and self.stats is not None:
                self.stats.record_buffer_filled(n)
                self.stats.record_buffer_drained(n)
            refs = buffer.shuffle_and_drain()
            if not refs:
                return None
            return ChunkFill(batches, np.asarray(refs, dtype=np.int64))

        filled_blocks = 0
        for block_id in my_blocks:
            if columns is None:
                batch = self.reader.read_block_batch(int(block_id))
            else:
                batch = self.reader.read_block_batch(int(block_id), columns=columns)
            slot = len(batches)
            batches.append(batch)
            for row in range(len(batch)):
                if buffer.full:
                    fill = drain()
                    # The in-flight block spans the drain boundary: re-home
                    # it as chunk 0 of the next fill's batch list.
                    batches = [batch]
                    slot = 0
                    if fill is not None:
                        yield fill
                buffer.add((slot, row))
            filled_blocks += 1
            if filled_blocks % self.buffer_blocks == 0:
                fill = drain()
                batches = []
                if fill is not None:
                    yield fill
        fill = drain()
        if fill is not None:
            yield fill

    def _drain(self, buffer: ShuffleBuffer[TrainingTuple]) -> list[TrainingTuple]:
        n = len(buffer)
        if n and self.stats is not None:
            self.stats.record_buffer_filled(n)
            self.stats.record_buffer_drained(n)
        return buffer.shuffle_and_drain()

    def _tuples_per_block(self) -> int:
        if not self.reader.entries:
            return 1
        return max(e.n_tuples for e in self.reader.entries)

    def close(self) -> None:
        self.reader.close()

    def __enter__(self) -> "CorgiPileDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
