"""Managed thread lifecycle for the concurrent loading stack.

CorgiPile's speedup rests on its concurrent loading path — the two
data-loading workers of Section 5.1 and the double-buffered TupleShuffle of
Section 6.3.  Every loader in this repo that spawns a producer thread
(:class:`~repro.core.prefetch.PrefetchLoader`,
:class:`~repro.core.multiworker.MultiWorkerLoader`,
:class:`~repro.db.threaded.ThreadedTupleShuffleOperator`) builds on the
primitives here, which provide the guarantees a per-loader thread cannot:

* **Cooperative cancellation.**  :class:`ProducerChannel` wraps a bounded
  queue whose *every* blocking ``put`` — including the terminal sentinel put
  that signals end-of-stream or a producer failure — polls a stop event, so
  a producer can never block forever against a consumer that walked away.
* **Deterministic join.**  :class:`ManagedProducer` is a context manager
  that, on *any* exit path (exhaustion, consumer exception, abandoned
  iteration via ``GeneratorExit``), cancels the producer, drains the queue
  to unblock it, joins the thread, and **asserts that it actually died** —
  a zombie raises instead of leaking.
* **Observability.**  Every hand-over is timed into a
  :class:`~repro.obs.LoaderMetrics`, producer lifetimes and genuine
  stall/wait intervals become :mod:`repro.obs` spans when tracing is on,
  and every spawned thread is tracked by a :class:`ThreadRegistry` so tests
  and dashboards can ask how many loader threads are alive right now.

Sentinels: producers finish by enqueueing :data:`END`; producer exceptions
travel as :class:`Failure` wrappers and are re-raised on the consumer side.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from .. import obs
from ..obs import LoaderMetrics

__all__ = [
    "END",
    "Failure",
    "ProducerChannel",
    "ManagedProducer",
    "ThreadRegistry",
    "THREADS",
]

#: End-of-stream sentinel enqueued (cancellably) after the producer body returns.
END = object()

#: How often blocked producers/consumers re-check for cancellation.
POLL_S = 0.05


class Failure:
    """Carries a producer-side exception across the queue for re-raising."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Failure({self.error!r})"


class ThreadRegistry:
    """Tracks every live managed loader thread.

    All loader threads are spawned through :meth:`spawn`, which registers
    the thread, names it, daemonises it (a belt-and-braces backstop — the
    managed join is what actually prevents leaks), and removes it from the
    registry when its target returns.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._threads: set[threading.Thread] = set()
        self._spawned_total = 0

    def spawn(self, target: Callable[[], None], name: str) -> threading.Thread:
        """Start a registered daemon thread running ``target``."""
        holder: list[threading.Thread] = []

        def run() -> None:
            try:
                target()
            finally:
                with self._lock:
                    self._threads.discard(holder[0])

        thread = threading.Thread(target=run, daemon=True, name=name)
        holder.append(thread)
        with self._lock:
            self._threads.add(thread)
            self._spawned_total += 1
        thread.start()
        return thread

    def live_threads(self) -> list[threading.Thread]:
        with self._lock:
            return [t for t in self._threads if t.is_alive()]

    def live_count(self) -> int:
        return len(self.live_threads())

    @property
    def spawned_total(self) -> int:
        with self._lock:
            return self._spawned_total


#: Process-wide registry used by default for all loader threads.
THREADS = ThreadRegistry()


class ProducerChannel:
    """A bounded hand-over queue with cooperative cancellation.

    The producer side calls :meth:`put`, which blocks while the queue is
    full but aborts (returning ``False``) as soon as the stop event is set —
    crucially *also* for terminal sentinel puts, so a producer whose
    consumer abandoned iteration mid-epoch can always run to completion.
    """

    def __init__(self, depth: int, stop: threading.Event, stats: LoaderMetrics):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self._q: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = stop
        self.stats = stats

    # -- producer side --------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """True once the consumer has asked the producer to stop."""
        return self._stop.is_set()

    def put(self, item: Any, terminal: bool = False) -> bool:
        """Enqueue ``item``; return False (dropping it) once cancelled.

        ``terminal`` marks sentinel puts (:data:`END` / :class:`Failure`),
        which are not counted as produced items.
        """
        if not self._stop.is_set():
            # Fast path: a put into a queue with room is not a stall.  The
            # timed slow path below costs microseconds of lock traffic per
            # put, which used to be booked as producer stall — thousands of
            # non-blocking puts accumulated into a phantom stall total that
            # skewed overlap_fraction toward the producer (caught by the
            # span/counter cross-check in repro.db.timing).
            try:
                self._q.put_nowait(item)
            except queue.Full:
                pass
            else:
                self.stats.record_put(self._q.qsize(), 0.0, counted=not terminal)
                return True
        start = time.perf_counter()
        while not self._stop.is_set():
            try:
                self._q.put(item, timeout=POLL_S)
            except queue.Full:
                continue
            stalled = time.perf_counter() - start
            self.stats.record_put(self._q.qsize(), stalled, counted=not terminal)
            if stalled > 0.0 and obs.enabled():
                end = start + stalled
                obs.add_span(
                    "loader.producer_stall", start, end, loader=self.stats.name
                )
            return True
        stalled = time.perf_counter() - start
        self.stats.record_cancelled_put(stalled)
        return False

    # -- consumer side --------------------------------------------------
    def get(self) -> Any:
        """Dequeue the next item, timing how long the consumer waited."""
        try:
            item = self._q.get_nowait()
            waited = 0.0
        except queue.Empty:
            start = time.perf_counter()
            item = self._q.get()
            waited = time.perf_counter() - start
            if waited > 0.0 and obs.enabled():
                obs.add_span(
                    "loader.consumer_wait", start, start + waited, loader=self.stats.name
                )
        self.stats.record_get(waited, counted=not (item is END or isinstance(item, Failure)))
        return item

    def drain(self) -> int:
        """Discard everything currently queued (unblocks a pending put)."""
        dropped = 0
        while True:
            try:
                self._q.get_nowait()
                dropped += 1
            except queue.Empty:
                return dropped

    @property
    def depth(self) -> int:
        return self._q.qsize()


class ManagedProducer:
    """Runs ``body(channel)`` on a registered thread with a managed shutdown.

    ``body`` receives the :class:`ProducerChannel`; it should hand items
    over with ``channel.put(item)`` and return as soon as a put reports
    cancellation (or ``channel.cancelled`` turns true between expensive
    steps).  After the body returns, :data:`END` is enqueued cancellably; if
    it raises, the exception is wrapped in :class:`Failure` and enqueued
    instead, to be re-raised by the consumer.

    Use as a context manager: ``__exit__`` (any path) cancels the producer,
    drains the channel so a blocked put wakes up, joins the thread, and
    raises ``RuntimeError`` if the thread outlives ``join_timeout`` — a
    zombie is a loud failure, never a silent leak.
    """

    def __init__(
        self,
        body: Callable[[ProducerChannel], None],
        depth: int,
        name: str = "producer",
        stats: LoaderMetrics | None = None,
        registry: ThreadRegistry = THREADS,
        join_timeout: float = 5.0,
    ):
        self._body = body
        self._depth = int(depth)
        self.name = name
        self.stats = stats if stats is not None else LoaderMetrics(name)
        self._registry = registry
        self._join_timeout = float(join_timeout)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.channel: ProducerChannel | None = None

    # ------------------------------------------------------------------
    def start(self) -> "ManagedProducer":
        if self._thread is not None:
            raise RuntimeError("producer already started")
        self._stop = threading.Event()
        self.channel = ProducerChannel(self._depth, self._stop, self.stats)
        channel = self.channel

        def run() -> None:
            # The span covers the producer's whole lifetime (body + terminal
            # put); its duration minus the recorded stall spans is the
            # producer's *busy* time in the overlap identity checked by
            # repro.db.timing.overlap_crosscheck.
            with obs.span("loader.producer", loader=self.stats.name):
                try:
                    self._body(channel)
                except BaseException as error:
                    channel.put(Failure(error), terminal=True)
                else:
                    channel.put(END, terminal=True)

        self.stats.record_thread_started()
        self._thread = self._registry.spawn(run, name=self.name)
        return self

    def get(self) -> Any:
        """Receive the next item (or :data:`END` / :class:`Failure`)."""
        if self.channel is None:
            raise RuntimeError("producer not started")
        return self.channel.get()

    @property
    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self) -> None:
        """Cancel, drain, join — and assert the thread actually died."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        deadline = time.monotonic() + self._join_timeout
        while thread.is_alive():
            # Keep draining: the producer may be blocked on a full queue and
            # re-fill it between our drain and its next cancellation check.
            self.channel.drain()
            thread.join(timeout=POLL_S)
            if thread.is_alive() and time.monotonic() >= deadline:
                raise RuntimeError(
                    f"producer thread {self.name!r} failed to stop within "
                    f"{self._join_timeout:.1f}s (zombie)"
                )
        self.channel.drain()
        self._thread = None
        self.stats.record_thread_joined()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ManagedProducer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
