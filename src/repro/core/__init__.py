"""CorgiPile core: the two-level shuffle, buffers, dataset API, multi-process mode."""

from .buffer import ShuffleBuffer, pipelined_time, serial_time
from .corgipile import CorgiPileShuffle
from .dataloader import Batch, DataLoader, collate
from .dataset import CorgiPileDataset
from .distributed import MultiProcessCorgiPile
from .lifecycle import THREADS, ManagedProducer, ProducerChannel, ThreadRegistry
from .multiworker import MultiWorkerLoader
from .prefetch import PrefetchLoader
from .seeding import derive_rng, epoch_rng, fault_unit_rng, stream_rng, worker_rng
from .stats import LoaderStats, StorageStats

__all__ = [
    "CorgiPileShuffle",
    "ShuffleBuffer",
    "pipelined_time",
    "serial_time",
    "CorgiPileDataset",
    "DataLoader",
    "Batch",
    "collate",
    "MultiProcessCorgiPile",
    "PrefetchLoader",
    "MultiWorkerLoader",
    "LoaderStats",
    "StorageStats",
    "derive_rng",
    "epoch_rng",
    "worker_rng",
    "stream_rng",
    "fault_unit_rng",
    "ManagedProducer",
    "ProducerChannel",
    "ThreadRegistry",
    "THREADS",
]
