"""The CorgiPile shuffle (Algorithm 1 + the Section 6 multi-buffer variant).

CorgiPile is a two-level hierarchical shuffle:

1. *Block-level*: visit blocks in random order (random block I/O, which at
   ~10 MB blocks costs the same as a sequential scan — Appendix A);
2. *Tuple-level*: buffer ``buffer_blocks`` blocks at a time and shuffle all
   buffered tuples before handing them to SGD.

Two operating modes are provided:

* ``mode="full-pass"`` (default) — the deployed behaviour of the PyTorch and
  PostgreSQL integrations: every epoch visits *all* blocks, buffer-fill by
  buffer-fill.  This is what every end-to-end experiment runs.
* ``mode="sampled"`` — the literal Algorithm 1 used by the convergence
  analysis: each epoch samples ``buffer_blocks`` blocks without replacement
  and visits only those (one buffer fill per epoch).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import BlockLayout
from ..shuffle.base import BlockAwareStrategy, StrategyTraits
from ..storage.iomodel import AccessTrace

__all__ = ["CorgiPileShuffle"]


class CorgiPileShuffle(BlockAwareStrategy):
    """Two-level block + tuple shuffle."""

    name = "corgipile"
    traits = StrategyTraits(needs_buffer=True, extra_disk_copies=0, io_pattern="random-block")

    def __init__(
        self,
        layout: BlockLayout,
        buffer_blocks: int,
        seed: int = 0,
        mode: str = "full-pass",
    ):
        super().__init__(layout, seed=seed)
        if buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be positive")
        if mode not in ("full-pass", "sampled"):
            raise ValueError(f"unknown mode {mode!r}")
        self.buffer_blocks = min(int(buffer_blocks), layout.n_blocks)
        self.mode = mode

    # ------------------------------------------------------------------
    @classmethod
    def from_buffer_fraction(
        cls,
        layout: BlockLayout,
        buffer_fraction: float,
        seed: int = 0,
        mode: str = "full-pass",
    ) -> "CorgiPileShuffle":
        """Build with a buffer holding ``buffer_fraction`` of the dataset.

        The paper specifies buffers as a percentage of the dataset size
        (1 %-10 %); this converts that to a whole number of blocks.
        """
        if not 0.0 < buffer_fraction <= 1.0:
            raise ValueError("buffer_fraction must be in (0, 1]")
        n = max(1, round(buffer_fraction * layout.n_blocks))
        return cls(layout, n, seed=seed, mode=mode)

    # ------------------------------------------------------------------
    def epoch_block_order(self, epoch: int) -> np.ndarray:
        """The random block visit order for ``epoch``.

        In ``sampled`` mode only the first ``buffer_blocks`` entries are
        visited — a without-replacement sample, exactly Algorithm 1 step 4.
        """
        self._check_epoch(epoch)
        order = self._rng(epoch).permutation(self.layout.n_blocks)
        if self.mode == "sampled":
            return order[: self.buffer_blocks]
        return order

    def buffer_fills(self, epoch: int) -> list[np.ndarray]:
        """Per buffer fill, the shuffled tuple indices it emits.

        Each fill gathers ``buffer_blocks`` blocks' tuples and shuffles them
        together (Algorithm 1 steps 4-5 / the TupleShuffle operator).
        """
        rng = self._rng(epoch)
        # Re-draw the block order from the same stream so that
        # epoch_block_order and buffer_fills agree for a given epoch.
        order = rng.permutation(self.layout.n_blocks)
        if self.mode == "sampled":
            order = order[: self.buffer_blocks]
        fills: list[np.ndarray] = []
        for lo in range(0, order.size, self.buffer_blocks):
            group = order[lo : lo + self.buffer_blocks]
            indices = np.concatenate([self.layout.block_indices(b) for b in group])
            rng.shuffle(indices)
            fills.append(indices)
        return fills

    def epoch_indices(self, epoch: int) -> np.ndarray:
        fills = self.buffer_fills(epoch)
        return np.concatenate(fills) if fills else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def blocks_visited(self, epoch: int) -> int:
        if self.mode == "sampled":
            return self.buffer_blocks
        return self.layout.n_blocks

    def tuples_per_epoch(self, epoch: int = 0) -> int:
        return int(sum(self.layout.block_size(b) for b in self.epoch_block_order(epoch)))

    def epoch_trace(self, tuple_bytes: float) -> AccessTrace:
        trace = AccessTrace()
        trace.add(
            "rand",
            self.blocks_visited(0),
            self.block_bytes(tuple_bytes),
            note="corgipile random block reads",
        )
        return trace
