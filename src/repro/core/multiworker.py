"""Multi-worker data loading over one block file.

Section 5.1 runs two data-loading threads per training process.  This
module implements that: ``MultiWorkerLoader`` opens ``n_workers``
:class:`~repro.core.dataset.CorgiPileDataset` views of the same block file
(same seed → disjoint random block slices), drives each through a
background :class:`~repro.core.prefetch.PrefetchLoader`, and interleaves
their batches round-robin into a single stream — the exact shape of
PyTorch's ``DataLoader(num_workers=N)`` over an iterable dataset.

The union of the workers' streams covers every tuple exactly once per
epoch, and loading overlaps both training and the other workers' I/O.

All worker streams share one :class:`~repro.obs.LoaderMetrics`, so the
loader reports aggregate queue/stall/wait counters; abandoning iteration
mid-epoch explicitly closes every per-worker stream, which joins every
producer thread deterministically (see :mod:`repro.core.lifecycle`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from .dataloader import Batch, DataLoader
from .dataset import CorgiPileDataset
from .prefetch import PrefetchLoader
from ..obs import LoaderMetrics

__all__ = ["MultiWorkerLoader"]


class MultiWorkerLoader:
    """Round-robin interleave of prefetched per-worker CorgiPile streams."""

    def __init__(
        self,
        path: str | Path,
        n_workers: int,
        buffer_blocks_per_worker: int,
        batch_size: int,
        seed: int = 0,
        prefetch_depth: int = 2,
        drop_last: bool = False,
        stats: LoaderMetrics | None = None,
        reader_factory=None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self.prefetch_depth = int(prefetch_depth)
        self.stats = stats if stats is not None else LoaderMetrics("multiworker")
        self._workers = [
            CorgiPileDataset(
                path,
                buffer_blocks=buffer_blocks_per_worker,
                seed=seed,
                worker_id=w,
                n_workers=n_workers,
                stats=self.stats,
                reader_factory=reader_factory,
            )
            for w in range(n_workers)
        ]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def n_tuples(self) -> int:
        return self._workers[0].n_tuples

    def set_epoch(self, epoch: int) -> None:
        for worker in self._workers:
            worker.set_epoch(epoch)

    def __iter__(self) -> Iterator[Batch]:
        streams = [
            iter(
                PrefetchLoader(
                    DataLoader(worker, batch_size=self.batch_size, drop_last=self.drop_last),
                    depth=self.prefetch_depth,
                    stats=self.stats,
                    name=f"worker{index}",
                )
            )
            for index, worker in enumerate(self._workers)
        ]
        try:
            live = list(range(len(streams)))
            while live:
                for index in list(live):
                    batch = next(streams[index], None)
                    if batch is None:
                        live.remove(index)
                        continue
                    yield batch
        finally:
            # Abandoned mid-epoch (or a consumer exception): close every
            # per-worker generator, which cancels and joins its producer.
            for stream in streams:
                stream.close()

    def close(self) -> None:
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "MultiWorkerLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
