"""Multi-process CorgiPile (Section 5.1-5.2).

PyTorch's DDP mode runs ``PN`` processes, each with its own GPU.  CorgiPile
extends to this setting by (1) sharing the block-level shuffle across
processes — every process draws the *same* shuffled block index from the
same seed and takes its own slice — and (2) giving every process a local
tuple-shuffle buffer of ``1/PN`` the single-process size.  Because mini-batch
SGD synchronises gradients every batch, the effective global order is the
interleaving of the per-process streams batch-slice by batch-slice, which
Section 5.2 argues is equivalent to single-process CorgiPile with a
``PN``-times-larger buffer.

This module simulates that execution faithfully at the index level: the
per-worker streams, the ``bs/PN`` batch slices, and the AllReduce
concatenation, so the equivalence claim is *testable* (see Figure 5 bench).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..data.dataset import BlockLayout
from .corgipile import CorgiPileShuffle
from .seeding import epoch_rng, worker_rng

__all__ = ["MultiProcessCorgiPile"]


class MultiProcessCorgiPile:
    """Simulated DDP execution of CorgiPile over ``n_workers`` processes."""

    def __init__(
        self,
        layout: BlockLayout,
        n_workers: int,
        buffer_blocks_per_worker: int,
        seed: int = 0,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if buffer_blocks_per_worker <= 0:
            raise ValueError("buffer_blocks_per_worker must be positive")
        self.layout = layout
        self.n_workers = int(n_workers)
        self.buffer_blocks_per_worker = int(buffer_blocks_per_worker)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def worker_blocks(self, epoch: int) -> list[np.ndarray]:
        """Per-worker block assignment for ``epoch``.

        All workers shuffle the full block index with the same seed, then
        worker ``i`` keeps the ``i``-th part — disjoint random subsets with
        no coordination (Section 5.1, step 2).
        """
        order = epoch_rng(self.seed, epoch).permutation(self.layout.n_blocks)
        return list(np.array_split(order, self.n_workers))

    def worker_buffer_fills(self, epoch: int, worker_id: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Worker ``worker_id``'s stream, one entry per tuple-buffer fill.

        Each entry is ``(block_group, shuffled_indices)``: the blocks read
        into the buffer and the tuple visit order the drain produces.  The
        executing engine (:mod:`repro.parallel`) consumes this form — one
        fill is its unit of I/O — while :meth:`worker_epoch_indices` is the
        flat concatenation, so execution provably matches the simulation.
        """
        if not 0 <= worker_id < self.n_workers:
            raise IndexError("worker_id out of range")
        blocks = self.worker_blocks(epoch)[worker_id]
        rng = worker_rng(self.seed, epoch, worker_id)
        fills: list[tuple[np.ndarray, np.ndarray]] = []
        for lo in range(0, blocks.size, self.buffer_blocks_per_worker):
            group = blocks[lo : lo + self.buffer_blocks_per_worker]
            indices = np.concatenate([self.layout.block_indices(b) for b in group])
            rng.shuffle(indices)
            fills.append((group, indices))
        return fills

    def worker_epoch_indices(self, epoch: int, worker_id: int) -> np.ndarray:
        """Worker-local CorgiPile stream: buffer-fill groups, shuffled tuples."""
        fills = self.worker_buffer_fills(epoch, worker_id)
        if not fills:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([indices for _, indices in fills])

    # ------------------------------------------------------------------
    def global_batches(self, epoch: int, global_batch_size: int) -> Iterator[np.ndarray]:
        """The AllReduce-equivalent global batch stream.

        Each worker contributes ``global_batch_size / n_workers`` tuples per
        step; gradient synchronisation makes the step equivalent to one
        mini-batch over the concatenation of the slices.
        """
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if global_batch_size % self.n_workers != 0:
            raise ValueError("global_batch_size must be divisible by n_workers")
        per_worker = global_batch_size // self.n_workers
        streams = [self.worker_epoch_indices(epoch, w) for w in range(self.n_workers)]
        n_steps = min(s.size for s in streams) // per_worker
        for step in range(n_steps):
            lo = step * per_worker
            yield np.concatenate([s[lo : lo + per_worker] for s in streams])

    def epoch_indices(self, epoch: int, global_batch_size: int) -> np.ndarray:
        """Flattened global visit order (for feeding the trainer)."""
        batches = list(self.global_batches(epoch, global_batch_size))
        if not batches:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(batches)

    # ------------------------------------------------------------------
    def equivalent_single_process(self) -> CorgiPileShuffle:
        """The single-process CorgiPile with a ``PN``-times-larger buffer.

        Section 5.2's equivalence claim: multi-process CorgiPile with
        per-worker buffers of ``n`` blocks behaves like single-process
        CorgiPile with an ``n * PN``-block buffer.
        """
        return CorgiPileShuffle(
            self.layout,
            self.buffer_blocks_per_worker * self.n_workers,
            seed=self.seed,
        )
