"""A minimal ``DataLoader`` over :class:`CorgiPileDataset`.

Collates the streamed :class:`~repro.storage.codec.TrainingTuple` records
into mini-batches: dense features become a ``(batch, d)`` array, sparse
features a :class:`~repro.data.sparse.SparseMatrix`, labels a vector.  The
trainer consumes these batches exactly like PyTorch's ``train()`` loop
consumes ``DataLoader`` batches in the paper's Section 5 listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..data.sparse import SparseMatrix, SparseRow
from ..storage.codec import TrainingTuple
from .dataset import CorgiPileDataset

__all__ = ["Batch", "DataLoader", "collate"]


@dataclass
class Batch:
    """One collated mini-batch."""

    X: np.ndarray | SparseMatrix
    y: np.ndarray
    tuple_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.y)


def collate(records: list[TrainingTuple]) -> Batch:
    """Stack a list of decoded tuples into a :class:`Batch`."""
    if not records:
        raise ValueError("cannot collate an empty batch")
    y = np.array([r.label for r in records], dtype=np.float64)
    ids = np.array([r.tuple_id for r in records], dtype=np.int64)
    first = records[0].features
    if isinstance(first, SparseRow):
        X: np.ndarray | SparseMatrix = SparseMatrix.from_rows(
            [r.features for r in records], first.n_features
        )
    else:
        X = np.stack([r.features for r in records])
    return Batch(X, y, ids)


class DataLoader:
    """Batches an iterable of training tuples."""

    def __init__(
        self,
        dataset: CorgiPileDataset | Iterable[TrainingTuple],
        batch_size: int = 1,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)

    def __iter__(self) -> Iterator[Batch]:
        pending: list[TrainingTuple] = []
        for record in self.dataset:
            pending.append(record)
            if len(pending) == self.batch_size:
                yield collate(pending)
                pending = []
        if pending and not self.drop_last:
            yield collate(pending)
