"""Deprecated home of the loader/storage counters — use :mod:`repro.obs`.

The counter classes that grew here across PRs 1–4 moved to
:mod:`repro.obs.adapters` when the unified observability subsystem landed:
:class:`~repro.obs.LoaderMetrics` and :class:`~repro.obs.StorageMetrics`
are the canonical implementations, and merging routes through the single
:func:`repro.obs.merge` facade.

``LoaderStats`` / ``StorageStats`` remain importable from here for one
release as thin subclasses that emit a ``DeprecationWarning`` on
construction.  They are otherwise byte-compatible: same counter names, same
``as_dict`` keys, same pickle shape (unpickling an old payload does not
warn — pickling restores state without calling ``__init__``), and the two
families still refuse to merge with each other.
"""

from __future__ import annotations

import warnings

from ..obs.adapters import LoaderMetrics, MergeableStats, StorageMetrics

__all__ = ["LoaderStats", "StorageStats"]

#: Legacy private alias kept for imports that reached into the machinery.
_MergeableStats = MergeableStats


class LoaderStats(LoaderMetrics):
    """Deprecated alias of :class:`repro.obs.LoaderMetrics`."""

    def __init__(self, name: str = "loader"):
        warnings.warn(
            "repro.core.stats.LoaderStats is deprecated; "
            "use repro.obs.LoaderMetrics",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(name)


class StorageStats(StorageMetrics):
    """Deprecated alias of :class:`repro.obs.StorageMetrics`."""

    def __init__(self, name: str = "storage"):
        warnings.warn(
            "repro.core.stats.StorageStats is deprecated; "
            "use repro.obs.StorageMetrics",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(name)
