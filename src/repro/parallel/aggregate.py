"""Aggregation layer: how per-worker work folds into one global model.

Three pluggable modes, in decreasing synchrony:

* ``sync`` — per-batch gradient averaging.  Each worker computes the mean
  gradient of its ``bs/PN`` slice; the coordinator averages the ``PN``
  slice means and takes one optimiser step.  Because the slices have equal
  size, the average of slice means *is* the mean over the full global
  batch, so a sync run is numerically a single-process mini-batch run over
  the interleaved stream — the executable form of Section 5.2's
  equivalence claim (deterministic, and what the CI smoke asserts at 1e-6).
* ``epoch`` — epoch-end model averaging.  Workers run per-tuple SGD over
  their whole shard locally and the coordinator takes a tuple-count-
  weighted average of the resulting models (weights handle uneven and
  empty shards).  Deterministic, one sync per epoch, but a different —
  local-SGD / FedAvg-style — update sequence.
* ``async`` — Hogwild-style.  Workers push parameter deltas straight into
  the shared vector with no locks; last-writer-wins races are accepted for
  zero synchronisation.  Not deterministic; offered for throughput
  comparison, never for bit-exact guarantees.

The helpers here are the pure-numpy kernel of those modes; the process
choreography lives in :mod:`repro.parallel.engine`/``worker``.
"""

from __future__ import annotations

import numpy as np

from ..ml.models.base import Params, SupervisedModel

__all__ = [
    "AGGREGATION_MODES",
    "pack_gradients",
    "unpack_gradients",
    "average_gradient_slots",
    "weighted_average_models",
]

AGGREGATION_MODES = ("sync", "async", "epoch")


def pack_gradients(grads: Params, model: SupervisedModel) -> np.ndarray:
    """Flatten a gradient dict in the model's parameter order."""
    return np.concatenate(
        [np.asarray(grads[key], dtype=np.float64).ravel() for key in model.params]
    )


def unpack_gradients(vector: np.ndarray, model: SupervisedModel) -> Params:
    """Inverse of :func:`pack_gradients` (shapes taken from the model)."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    grads: Params = {}
    offset = 0
    for key, param in model.params.items():
        grads[key] = vector[offset : offset + param.size].reshape(param.shape)
        offset += param.size
    if offset != vector.size:
        raise ValueError(f"gradient vector has {vector.size} entries, model needs {offset}")
    return grads


def average_gradient_slots(slots: np.ndarray, n_active: int | None = None) -> np.ndarray:
    """Mean over the first ``n_active`` per-worker gradient rows.

    With equal slice sizes this equals the full-global-batch mean gradient
    (mean of means over equal-sized groups) — the sync-mode identity.
    """
    slots = np.asarray(slots, dtype=np.float64)
    if slots.ndim != 2 or slots.shape[0] == 0:
        raise ValueError("slots must be a non-empty (n_workers, dim) slab")
    n = slots.shape[0] if n_active is None else int(n_active)
    if not 1 <= n <= slots.shape[0]:
        raise ValueError(f"n_active {n} out of range [1, {slots.shape[0]}]")
    return slots[:n].mean(axis=0)


def weighted_average_models(
    vectors: list[np.ndarray], weights: list[int | float]
) -> np.ndarray:
    """Tuple-count-weighted model average (epoch mode).

    Zero-weight entries (workers whose shard was empty this epoch, e.g.
    ``n_blocks < n_workers``) are skipped — an untrained copy must not drag
    the average toward the epoch-start point.
    """
    if len(vectors) != len(weights) or not vectors:
        raise ValueError("need equally many vectors and weights, at least one each")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    acc = np.zeros_like(np.asarray(vectors[0], dtype=np.float64))
    for vec, weight in zip(vectors, weights):
        if weight > 0:
            acc += (float(weight) / total) * np.asarray(vec, dtype=np.float64)
    return acc
