"""repro.parallel — the executing multi-process data-parallel engine.

Turns :class:`~repro.core.distributed.MultiProcessCorgiPile` from an
index-level simulation into real training: a coordinator spawns ``PN``
worker processes (spawn-safe), each reading its shard of the shared
per-epoch block permutation through its own
:class:`~repro.storage.blockfile.BlockFileReader`, with pluggable
aggregation (``sync`` per-batch gradient averaging, ``epoch`` model
averaging, ``async`` Hogwild), atomic coordinator checkpoints at sync
points, and per-worker stats merged into one cross-process report.
"""

from .aggregate import (
    AGGREGATION_MODES,
    average_gradient_slots,
    pack_gradients,
    unpack_gradients,
    weighted_average_models,
)
from .engine import (
    ParallelResult,
    ParallelTrainer,
    WorkerError,
    load_block_dataset,
    sync_reference_trainer,
)
from .hopper import (
    HopperEngine,
    HopperResult,
    HopperSchedule,
    modeled_walls,
    run_hopper_inprocess,
)
from .plan import ShardPlanner
from .worker import ShardFetcher, WorkerConfig

__all__ = [
    "AGGREGATION_MODES",
    "ShardPlanner",
    "ShardFetcher",
    "WorkerConfig",
    "ParallelTrainer",
    "ParallelResult",
    "WorkerError",
    "load_block_dataset",
    "sync_reference_trainer",
    "HopperSchedule",
    "HopperEngine",
    "HopperResult",
    "run_hopper_inprocess",
    "modeled_walls",
    "pack_gradients",
    "unpack_gradients",
    "average_gradient_slots",
    "weighted_average_models",
]
