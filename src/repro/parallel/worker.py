"""The worker-process side of the multi-process engine.

``worker_main`` is a module-level function (spawn-picklable) that each
worker process runs: rebuild the model from its blob, open a private
:class:`~repro.storage.blockfile.BlockFileReader` over the shared block
file, derive the shard plan locally (it is a pure function of the seed, so
no plan bytes ever cross the process boundary), and execute the configured
aggregation mode against the shared-memory vectors under the coordinator's
barrier protocol.

Error discipline: any exception is reported through the results queue and
the barrier is aborted so the coordinator never deadlocks on a dead
worker; conversely a coordinator abort (stop event + broken barrier) is a
clean shutdown path, after which the worker still ships its stats home.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..obs import LoaderMetrics, StorageMetrics
from ..data.sparse import SparseMatrix
from ..ml.persistence import model_from_bytes
from ..storage.blockfile import BlockFileReader
from .aggregate import pack_gradients
from .plan import ShardPlanner
from .shm import slab_view, vector_view

__all__ = ["WorkerConfig", "ShardFetcher", "worker_main", "BARRIER_TIMEOUT_S"]

# Generous: a stuck peer is a bug, not a slow disk; the coordinator's
# no-leaked-children guard needs workers to give up rather than hang.
BARRIER_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, as picklable plain data."""

    worker_id: int
    n_workers: int
    path: str
    model_blob: bytes
    seed: int
    epochs: int
    buffer_blocks: int
    mode: str  # "sync" | "async" | "epoch"
    global_batch_size: int
    schedule: object  # callable epoch -> lr (plain dataclass, picklable)
    start_epoch: int = 0
    start_step: int = 0  # sync-mode resume: global steps already applied
    extra: dict = field(default_factory=dict)


class ShardFetcher:
    """Reads one worker's buffer fills into columnar, visit-ordered arrays.

    One fill = one tuple-shuffle buffer: the group's blocks are read
    through the worker's own reader (each block once), then the rows are
    gathered in the fill's shuffled visit order using the block file's
    contiguous-id arithmetic (``row = base[block] + id - block_start``).
    """

    def __init__(
        self,
        reader: BlockFileReader,
        tuples_per_block: int,
        loader_stats: LoaderMetrics | None = None,
    ):
        self.reader = reader
        self.tuples_per_block = int(tuples_per_block)
        self.loader_stats = loader_stats

    def fetch_fill(
        self, group: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray | SparseMatrix, np.ndarray]:
        """``(X, y)`` for one fill, rows in ``indices`` (visit) order."""
        batches = [self.reader.read_block_batch(int(b)) for b in group]
        base: dict[int, int] = {}
        offset = 0
        for block_id, batch in zip(group, batches):
            base[int(block_id)] = offset
            offset += len(batch)
        ids = np.asarray(indices, dtype=np.int64)
        blocks_of = ids // self.tuples_per_block
        local = np.array(
            [base[int(b)] for b in blocks_of], dtype=np.int64
        ) + (ids - blocks_of * self.tuples_per_block)
        labels = np.concatenate([b.labels for b in batches])[local]
        if batches[0].is_sparse:
            stacked = _stack_sparse(batches)
            X = stacked.take_rows(local)
        else:
            X = np.concatenate([b.dense for b in batches])[local]
        if self.loader_stats is not None:
            self.loader_stats.record_buffer_filled(int(ids.size))
            self.loader_stats.record_buffer_drained(int(ids.size))
        return X, labels


def _stack_sparse(batches: list) -> SparseMatrix:
    indptr = [np.zeros(1, dtype=np.int64)]
    nnz_offset = 0
    indices, values = [], []
    n_rows = 0
    for b in batches:
        indptr.append(b.indptr[1:] + nnz_offset)
        indices.append(b.indices)
        values.append(b.values)
        nnz_offset += int(b.indices.size)
        n_rows += len(b)
    return SparseMatrix(
        np.concatenate(indptr),
        np.concatenate(indices),
        np.concatenate(values),
        (n_rows, batches[0].n_features),
    )


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------


def worker_main(cfg: WorkerConfig, param_raw, grad_raw, barrier, stop, results) -> None:
    """Entry point executed inside each spawned worker process."""
    if cfg.extra.get("trace"):
        # Spawned processes start with a fresh, disabled session tracer;
        # turning it on here makes every span below land in this worker's
        # local buffer, shipped home with the stats message.
        obs.enable()
    loader_stats = LoaderMetrics(f"parallel-worker{cfg.worker_id}")
    storage_stats = StorageMetrics(f"parallel-worker{cfg.worker_id}")
    tuples_done = 0
    reader = None
    try:
        model = model_from_bytes(cfg.model_blob)
        reader = BlockFileReader(cfg.path, storage_stats=storage_stats)
        planner = ShardPlanner.for_block_file(
            cfg.path, cfg.n_workers, cfg.buffer_blocks, seed=cfg.seed
        )
        fetcher = ShardFetcher(reader, planner.tuples_per_block, loader_stats)
        loader_stats.record_thread_started()
        runner = {"sync": _run_sync, "async": _run_async, "epoch": _run_epoch}[cfg.mode]
        with obs.span("worker", worker=cfg.worker_id, mode=cfg.mode):
            tuples_done = runner(cfg, planner, fetcher, model, param_raw, grad_raw, barrier, stop, results)
    except _CoordinatorAbort:
        pass  # clean shutdown requested; fall through to ship stats
    except BaseException:
        barrier.abort()
        results.put(("error", cfg.worker_id, traceback.format_exc()))
        return
    finally:
        if reader is not None:
            reader.close()
        loader_stats.record_thread_joined()
    results.put(
        (
            "stats",
            cfg.worker_id,
            loader_stats,
            storage_stats,
            tuples_done,
            _obs_payload(),
        )
    )


def _obs_payload() -> dict:
    """This process's telemetry, picklable for the results queue."""
    tracer = obs.get_tracer()
    return {
        "tracer": tracer if tracer.enabled else None,
        "registry": obs.get_registry(),
    }


class _CoordinatorAbort(Exception):
    """The coordinator broke the barrier on purpose (stop event set)."""


def _sync_point(barrier, stop) -> None:
    """One barrier rendezvous; translate a deliberate abort into shutdown.

    The wait itself is timed into the obs layer (histogram always, span
    when tracing): barrier waits are exactly the slack between a worker's
    busy time and the coordinator's wall-clock, so the merged timeline can
    account for them explicitly.
    """
    start = time.perf_counter()
    try:
        barrier.wait(timeout=BARRIER_TIMEOUT_S)
    except threading.BrokenBarrierError:
        if stop.is_set():
            raise _CoordinatorAbort() from None
        raise
    finally:
        waited = time.perf_counter() - start
        obs.observe("parallel.barrier_wait_s", waited)
        if obs.enabled():
            obs.add_span("parallel.barrier_wait", start, start + waited)
    if stop.is_set():
        raise _CoordinatorAbort()


def _epoch_slices(cfg, planner, fetcher, epoch: int, skip: int):
    """Yield per-step ``(X, y)`` slices of ``bs/PN`` tuples, skipping ``skip`` steps.

    Fills are fetched lazily; whole fills that fall before the resume
    offset are skipped without touching storage (their visit order is
    (seed, epoch)-pure, so nothing needs replaying).
    """
    per_worker = cfg.global_batch_size // cfg.n_workers
    n_steps = planner.sync_steps(epoch, cfg.global_batch_size)
    to_skip = skip * per_worker
    pend_X: list = []
    pend_y: list = []
    pending = 0
    emitted = skip
    for group, indices in planner.worker_buffer_fills(epoch, cfg.worker_id):
        if emitted >= n_steps:
            break
        if to_skip >= indices.size:
            to_skip -= int(indices.size)
            continue
        X, y = fetcher.fetch_fill(group, indices)
        if to_skip:
            X, y = _tail(X, to_skip), y[to_skip:]
            to_skip = 0
        pend_X.append(X)
        pend_y.append(y)
        pending += int(y.size)
        while pending >= per_worker and emitted < n_steps:
            Xs, ys, pend_X, pend_y = _take(pend_X, pend_y, per_worker)
            pending -= per_worker
            emitted += 1
            yield Xs, ys


def _tail(X, skip: int):
    if isinstance(X, SparseMatrix):
        return X.take_rows(np.arange(skip, X.shape[0], dtype=np.int64))
    return X[skip:]


def _rows(X) -> int:
    return X.shape[0]


def _concat_features(parts: list):
    if len(parts) == 1:
        return parts[0]
    if isinstance(parts[0], SparseMatrix):
        indptr = [np.zeros(1, dtype=np.int64)]
        indices, values = [], []
        nnz = 0
        rows = 0
        for p in parts:
            indptr.append(p.indptr[1:] + nnz)
            indices.append(p.indices)
            values.append(p.values)
            nnz += int(p.indices.size)
            rows += p.shape[0]
        return SparseMatrix(
            np.concatenate(indptr),
            np.concatenate(indices),
            np.concatenate(values),
            (rows, parts[0].shape[1]),
        )
    return np.concatenate(parts)


def _take(pend_X: list, pend_y: list, n: int):
    """Pop the first ``n`` rows off the pending fill queue."""
    got_X, got_y = [], []
    need = n
    while need > 0:
        X, y = pend_X[0], pend_y[0]
        if _rows(X) <= need:
            got_X.append(X)
            got_y.append(y)
            need -= _rows(X)
            pend_X.pop(0)
            pend_y.pop(0)
        else:
            head = np.arange(0, need, dtype=np.int64)
            if isinstance(X, SparseMatrix):
                got_X.append(X.take_rows(head))
                pend_X[0] = _tail(X, need)
            else:
                got_X.append(X[:need])
                pend_X[0] = X[need:]
            got_y.append(y[:need])
            pend_y[0] = y[need:]
            need = 0
    return _concat_features(got_X), np.concatenate(got_y), pend_X, pend_y


def _run_sync(cfg, planner, fetcher, model, param_raw, grad_raw, barrier, stop, results) -> int:
    """Per-batch gradient averaging under the two-barrier step protocol."""
    params = vector_view(param_raw)
    grads = slab_view(grad_raw, cfg.n_workers)
    done = 0
    for epoch in range(cfg.start_epoch, cfg.epochs):
        skip = cfg.start_step if epoch == cfg.start_epoch else 0
        for Xs, ys in _epoch_slices(cfg, planner, fetcher, epoch, skip):
            _sync_point(barrier, stop)  # A: coordinator published params
            model.load_parameter_vector(params)
            grads[cfg.worker_id, :] = pack_gradients(model.gradient(Xs, ys), model)
            done += int(ys.size)
            _sync_point(barrier, stop)  # B: all gradient slots ready
    return done


def _run_async(cfg, planner, fetcher, model, param_raw, grad_raw, barrier, stop, results) -> int:
    """Hogwild-style delta pushes; barriers only frame whole epochs."""
    params = vector_view(param_raw)
    per_worker = max(1, cfg.global_batch_size // cfg.n_workers)
    done = 0
    for epoch in range(cfg.start_epoch, cfg.epochs):
        _sync_point(barrier, stop)  # A: epoch start, params current
        lr = float(cfg.schedule(epoch))
        for group, indices in planner.worker_buffer_fills(epoch, cfg.worker_id):
            X, y = fetcher.fetch_fill(group, indices)
            for lo in range(0, int(y.size), per_worker):
                rows = np.arange(lo, min(lo + per_worker, int(y.size)), dtype=np.int64)
                Xs = X.take_rows(rows) if isinstance(X, SparseMatrix) else X[rows]
                ys = y[rows]
                before = np.array(params)  # racy snapshot, by design
                model.load_parameter_vector(before)
                model.step_block(Xs, ys, lr)
                params += model.parameter_vector() - before  # racy add, by design
                done += int(ys.size)
        _sync_point(barrier, stop)  # B: epoch end, coordinator evaluates
    return done


def _run_epoch(cfg, planner, fetcher, model, param_raw, grad_raw, barrier, stop, results) -> int:
    """Local SGD over the whole shard; epoch-end weighted model averaging."""
    params = vector_view(param_raw)
    done = 0
    for epoch in range(cfg.start_epoch, cfg.epochs):
        _sync_point(barrier, stop)  # A: averaged params published
        model.load_parameter_vector(params)
        lr = float(cfg.schedule(epoch))
        count = 0
        for group, indices in planner.worker_buffer_fills(epoch, cfg.worker_id):
            X, y = fetcher.fetch_fill(group, indices)
            model.step_block(X, y, lr)  # fused per-tuple kernels, visit order
            count += int(y.size)
        results.put(("model", cfg.worker_id, epoch, model.parameter_vector(), count))
        done += count
        _sync_point(barrier, stop)  # B: coordinator averaged the models
    return done
