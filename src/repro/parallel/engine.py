"""The coordinator: spawns workers, drives sync points, owns the model.

This is the executing form of Section 5's multi-process CorgiPile.  The
coordinator and the ``PN`` spawned workers agree on everything determinist-
ically (the shard plan is a pure function of the seed), so the runtime
protocol is nothing but shared-memory vectors plus a barrier:

sync mode, per global step::

    coordinator                         worker i
    write params  ────────┐
    barrier A  ───────────┼──────────▶  barrier A
                          │             read params, grad over bs/PN slice
    barrier B  ◀──────────┼──────────   write grad slot i, barrier B
    average slots, optimiser step
    (checkpoint at cadence)

``epoch`` mode syncs once per epoch (tuple-count-weighted model average
over the results queue); ``async`` mode lets workers push Hogwild deltas
into the shared vector and only frames epochs with barriers.

Checkpointing reuses PR 3's atomic format: the coordinator persists
(model, optimiser slots, epoch, in-epoch tuple cursor) at sync points, and
because worker streams are ``(seed, epoch)``-pure, a resumed run skips to
the stored step and continues over the *exact* remaining update sequence —
killed sync runs finish bit-exact (asserted at 1e-12 by
``tests/test_parallel_engine.py``).

Failure discipline: a dead or raising worker aborts the shared barrier;
the coordinator translates that into :class:`WorkerError` (with the
worker's traceback) and always reaps its children — no leaked processes,
mirroring PR 1's no-leaked-threads guarantee.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..obs import LoaderMetrics, StorageMetrics
from ..data.dataset import Dataset
from ..ml.models.base import SupervisedModel
from ..ml.optim import SGD, Optimizer
from ..ml.persistence import (
    CheckpointState,
    load_checkpoint,
    model_to_bytes,
    save_checkpoint,
)
from ..ml.schedules import ExponentialDecay
from ..ml.trainer import (
    CheckpointConfig,
    ConvergenceHistory,
    EpochRecord,
    Trainer,
    fixed_order_source,
)
from ..storage.blockfile import BlockFileReader
from .aggregate import (
    AGGREGATION_MODES,
    average_gradient_slots,
    unpack_gradients,
    weighted_average_models,
)
from .plan import ShardPlanner
from .shm import alloc_vector, slab_view, vector_view, write_vector
from .worker import BARRIER_TIMEOUT_S, WorkerConfig, worker_main

__all__ = [
    "WorkerError",
    "ParallelResult",
    "ParallelTrainer",
    "load_block_dataset",
    "sync_reference_trainer",
]

# How long the coordinator waits for end-of-run stats before declaring a
# worker lost (it then terminates stragglers rather than leaking them).
_COLLECT_TIMEOUT_S = 60.0


class WorkerError(RuntimeError):
    """A worker process died or raised; carries its traceback text."""


def load_block_dataset(path: str | Path, task: str = "binary") -> Dataset:
    """Materialise a block file back into an in-memory :class:`Dataset`.

    Blocks store contiguous ascending tuple ids, so reading them in block
    order *is* id order — used by the coordinator for end-of-epoch
    evaluation and by the single-process reference run.
    """
    with BlockFileReader(path) as reader:
        batches = [reader.read_block_batch(b) for b in range(reader.n_blocks)]
        y = np.concatenate([b.labels for b in batches])
        if batches[0].is_sparse:
            from .worker import _stack_sparse

            X = _stack_sparse(batches)
        else:
            X = np.concatenate([b.dense for b in batches])
    return Dataset(X, y, name=Path(path).stem, task=task)


@dataclass
class ParallelResult:
    """Everything one parallel training run produces."""

    model: SupervisedModel
    history: ConvergenceHistory
    mode: str
    n_workers: int
    epochs_run: int
    sync_steps: int
    tuples_processed: int
    epoch_walls: list[float]
    loader_stats: LoaderMetrics
    storage_stats: StorageMetrics
    per_worker: list[dict] = field(default_factory=list)
    plan: dict = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return float(sum(self.epoch_walls))

    @property
    def tuples_per_second(self) -> float:
        wall = self.wall_seconds
        return self.tuples_processed / wall if wall > 0 else 0.0

    def describe(self) -> dict:
        """A JSON-able report (used by the CLI and the scaling bench)."""
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "epochs_run": self.epochs_run,
            "sync_steps": self.sync_steps,
            "tuples_processed": self.tuples_processed,
            "wall_seconds": self.wall_seconds,
            "tuples_per_second": self.tuples_per_second,
            "epoch_walls": [round(w, 6) for w in self.epoch_walls],
            "final_train_score": (
                self.history.final.train_score if self.history.records else None
            ),
            "final_train_loss": (
                self.history.final.train_loss if self.history.records else None
            ),
            "loader": self.loader_stats.as_dict(),
            "storage": self.storage_stats.as_dict(),
            "per_worker": self.per_worker,
            "plan": self.plan,
        }


class ParallelTrainer:
    """Multi-process data-parallel SGD over one block file."""

    def __init__(
        self,
        path: str | Path,
        model: SupervisedModel,
        *,
        n_workers: int,
        mode: str = "sync",
        epochs: int = 5,
        global_batch_size: int = 32,
        buffer_blocks: int = 2,
        seed: int = 0,
        schedule=None,
        optimizer: Optimizer | None = None,
        test: Dataset | None = None,
        checkpoint: CheckpointConfig | None = None,
        fault_plan=None,
        start_method: str = "spawn",
        task: str = "binary",
    ):
        if mode not in AGGREGATION_MODES:
            raise ValueError(f"unknown mode {mode!r}; one of {AGGREGATION_MODES}")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.path = str(path)
        self.model = model
        self.mode = mode
        self.epochs = int(epochs)
        self.global_batch_size = int(global_batch_size)
        self.seed = int(seed)
        self.schedule = schedule if schedule is not None else ExponentialDecay(0.01)
        self.optimizer = optimizer if optimizer is not None else SGD(model)
        self.test_set = test
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.start_method = start_method
        self.planner = ShardPlanner.for_block_file(
            self.path, n_workers, buffer_blocks, seed=self.seed
        )
        self.n_workers = self.planner.n_workers
        self.planner.per_worker_batch(self.global_batch_size)  # validates divisibility
        self.eval_set = load_block_dataset(self.path, task=task)
        self._tuples_seen = 0
        self._last_checkpoint_tuples = 0

    # ------------------------------------------------------------------
    def run(self, resume_from: CheckpointState | str | Path | None = None) -> ParallelResult:
        history = ConvergenceHistory(
            strategy=f"parallel-{self.mode}", model=type(self.model).__name__
        )
        start_epoch = 0
        start_step = 0
        self._tuples_seen = 0
        if resume_from is not None:
            state = (
                resume_from
                if isinstance(resume_from, CheckpointState)
                else load_checkpoint(resume_from)
            )
            start_epoch, start_step = self._restore(state, history)
        self._save_checkpoint(start_epoch, start_step * self.global_batch_size, history)

        ctx = mp.get_context(self.start_method)
        dim = int(self.model.parameter_vector().size)
        param_raw = alloc_vector(dim)
        grad_raw = alloc_vector(self.n_workers * dim)
        write_vector(param_raw, self.model.parameter_vector())
        barrier = ctx.Barrier(self.n_workers + 1)
        stop = ctx.Event()
        results = ctx.Queue()
        blob = model_to_bytes(self.model)
        procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    WorkerConfig(
                        worker_id=w,
                        n_workers=self.n_workers,
                        path=self.path,
                        model_blob=blob,
                        seed=self.seed,
                        epochs=self.epochs,
                        buffer_blocks=self.planner.buffer_blocks,
                        mode=self.mode,
                        global_batch_size=self.global_batch_size,
                        schedule=self.schedule,
                        start_epoch=start_epoch,
                        start_step=start_step,
                        # Workers trace locally iff the coordinator traces;
                        # their spans ship home in the stats message.
                        extra={"trace": obs.enabled()},
                    ),
                    param_raw,
                    grad_raw,
                    barrier,
                    stop,
                    results,
                ),
                daemon=True,
                name=f"repro-parallel-w{w}",
            )
            for w in range(self.n_workers)
        ]
        for proc in procs:
            proc.start()

        epoch_walls: list[float] = []
        total_steps = 0
        epochs_run = 0
        try:
            for epoch in range(start_epoch, self.epochs):
                t0 = time.perf_counter()
                lr = float(self.schedule(epoch))
                skip = start_step if epoch == start_epoch else 0
                with obs.span(
                    "parallel.epoch", epoch=epoch, mode=self.mode
                ) as sp:
                    if self.mode == "sync":
                        total_steps += self._sync_epoch(
                            epoch, lr, skip, param_raw, grad_raw, barrier, stop, results, history
                        )
                    elif self.mode == "epoch":
                        self._epoch_mode_epoch(epoch, param_raw, barrier, stop, results)
                        total_steps += 1
                    else:
                        self._async_epoch(param_raw, barrier, stop, results)
                        total_steps += 1
                    wall = time.perf_counter() - t0
                    sp.set(wall_s=wall)
                epoch_walls.append(wall)
                obs.inc("parallel.epochs")
                record = self._evaluate(epoch, lr)
                history.append(record)
                epochs_run += 1
                self._save_checkpoint(epoch + 1, 0, history)
        except BaseException:
            stop.set()
            barrier.abort()
            raise
        finally:
            per_worker, merged_loader, merged_storage, worker_tuples = self._collect(
                procs, results, stop, barrier
            )

        return ParallelResult(
            model=self.model,
            history=history,
            mode=self.mode,
            n_workers=self.n_workers,
            epochs_run=epochs_run,
            sync_steps=total_steps,
            tuples_processed=worker_tuples,
            epoch_walls=epoch_walls,
            loader_stats=merged_loader,
            storage_stats=merged_storage,
            per_worker=per_worker,
            plan=self.planner.describe(),
        )

    # ------------------------------------------------------------------
    def _rendezvous(self, barrier, results) -> None:
        try:
            barrier.wait(timeout=BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            raise self._worker_failure(results) from None

    def _worker_failure(self, results) -> WorkerError:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                msg = results.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            if msg[0] == "error":
                return WorkerError(f"worker {msg[1]} failed:\n{msg[2]}")
        return WorkerError("a worker died without reporting an error")

    def _sync_epoch(
        self, epoch, lr, start_step, param_raw, grad_raw, barrier, stop, results, history
    ) -> int:
        params = vector_view(param_raw)
        grads = slab_view(grad_raw, self.n_workers)
        n_steps = self.planner.sync_steps(epoch, self.global_batch_size)
        bs = self.global_batch_size
        for step in range(start_step, n_steps):
            if self.fault_plan is not None:
                budget = self.fault_plan.tuples_before_crash(self._tuples_seen)
                if budget is not None and budget < bs:
                    # The crash lands inside the next global batch: abort the
                    # fleet at the last durable sync point and die like a
                    # killed process would (the checkpoint already exists).
                    stop.set()
                    barrier.abort()
                    self.fault_plan.fire_crash(
                        f"parallel sync epoch {epoch}, step {step}"
                    )
            self._rendezvous(barrier, results)  # A: params published
            self._rendezvous(barrier, results)  # B: gradient slots ready
            mean = average_gradient_slots(grads)
            self.optimizer.step(unpack_gradients(mean, self.model), lr)
            params[:] = self.model.parameter_vector()
            self._tuples_seen += bs
            if (
                self.checkpoint is not None
                and self.checkpoint.every_tuples > 0
                and step + 1 < n_steps
                and self._tuples_seen - self._last_checkpoint_tuples
                >= self.checkpoint.every_tuples
            ):
                self._save_checkpoint(epoch, (step + 1) * bs, history)
        return max(0, n_steps - start_step)

    def _epoch_mode_epoch(self, epoch, param_raw, barrier, stop, results) -> None:
        self._rendezvous(barrier, results)  # A: averaged params published
        vectors: dict[int, np.ndarray] = {}
        counts: dict[int, int] = {}
        while len(vectors) < self.n_workers:
            try:
                msg = results.get(timeout=BARRIER_TIMEOUT_S)
            except queue_mod.Empty:
                raise WorkerError(
                    f"epoch {epoch}: only {len(vectors)}/{self.n_workers} "
                    "worker models arrived"
                ) from None
            if msg[0] == "error":
                stop.set()
                barrier.abort()
                raise WorkerError(f"worker {msg[1]} failed:\n{msg[2]}")
            _, worker_id, msg_epoch, vec, count = msg
            if msg_epoch != epoch:
                raise WorkerError(
                    f"protocol error: got epoch {msg_epoch} model during epoch {epoch}"
                )
            vectors[worker_id] = vec
            counts[worker_id] = count
        order = sorted(vectors)
        averaged = weighted_average_models(
            [vectors[w] for w in order], [counts[w] for w in order]
        )
        self.model.load_parameter_vector(averaged)
        write_vector(param_raw, averaged)
        self._tuples_seen += int(sum(counts.values()))
        self._rendezvous(barrier, results)  # B: release workers into next epoch

    def _async_epoch(self, param_raw, barrier, stop, results) -> None:
        self._rendezvous(barrier, results)  # A: epoch start
        self._rendezvous(barrier, results)  # B: all workers finished the epoch
        self.model.load_parameter_vector(vector_view(param_raw))
        self._tuples_seen += int(self.eval_set.n_tuples)

    # ------------------------------------------------------------------
    def _collect(self, procs, results, stop, barrier):
        """Drain worker stats and reap every child (leak-free by contract)."""
        per_worker: list[dict] = []
        merged_loader = LoaderMetrics("parallel")
        merged_storage = StorageMetrics("parallel")
        worker_tuples = 0
        deadline = time.monotonic() + _COLLECT_TIMEOUT_S
        got = 0
        error: WorkerError | None = None
        while got < len(procs) and time.monotonic() < deadline:
            try:
                msg = results.get(timeout=0.5)
            except queue_mod.Empty:
                if not any(p.is_alive() for p in procs) and results.empty():
                    break
                continue
            if msg[0] == "error":
                error = error or WorkerError(f"worker {msg[1]} failed:\n{msg[2]}")
                got += 1
                continue
            if msg[0] != "stats":
                continue  # stale model message from an aborted epoch
            # Pre-obs workers sent 5-tuples; the optional 6th element is the
            # worker's telemetry payload (local tracer + registry).
            _, worker_id, loader, storage, tuples_done = msg[:5]
            payload = msg[5] if len(msg) > 5 else None
            merged_loader.merge(loader)
            merged_storage.merge(storage)
            self._merge_obs_payload(worker_id, payload)
            worker_tuples += int(tuples_done)
            per_worker.append(
                {
                    "worker_id": worker_id,
                    "tuples": int(tuples_done),
                    "loader": loader.as_dict(),
                    "storage": storage.as_dict(),
                }
            )
            got += 1
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - defensive reaping
                proc.terminate()
                proc.join(timeout=5.0)
        per_worker.sort(key=lambda d: d["worker_id"])
        if error is not None and not stop.is_set():
            raise error
        return per_worker, merged_loader, merged_storage, worker_tuples

    @staticmethod
    def _merge_obs_payload(worker_id: int, payload: dict | None) -> None:
        """Fold one worker's shipped telemetry into the session obs state.

        Worker spans keep their parent links and are stamped with
        ``worker=<id>``; counters/gauges/histograms fold into the session
        registry — so a parallel run produces one merged timeline and one
        metrics snapshot.
        """
        if not payload:
            return
        tracer = payload.get("tracer")
        if tracer is not None and obs.enabled():
            obs.get_tracer().merge(tracer, worker=worker_id)
        registry = payload.get("registry")
        if registry is not None:
            obs.get_registry().merge(registry)

    # ------------------------------------------------------------------
    def _evaluate(self, epoch: int, lr: float) -> EpochRecord:
        ev = self.eval_set
        return EpochRecord(
            epoch=epoch,
            lr=lr,
            train_loss=self.model.loss(ev.X, ev.y),
            train_score=self.model.score(ev.X, ev.y),
            test_score=(
                self.model.score(self.test_set.X, self.test_set.y)
                if self.test_set is not None
                else None
            ),
            tuples_seen=self._tuples_seen,
        )

    def _save_checkpoint(self, epoch: int, cursor: int, history: ConvergenceHistory) -> None:
        if self.checkpoint is None:
            return
        save_checkpoint(
            self.checkpoint.path,
            self.model,
            epoch=epoch,
            cursor=cursor,
            tuples_seen=self._tuples_seen,
            optimizer_state=self.optimizer.state_dict(),
            history=[asdict(r) for r in history.records],
            meta={
                "strategy": f"parallel-{self.mode}",
                "model": type(self.model).__name__,
                "mode": self.mode,
                "n_workers": self.n_workers,
                "global_batch_size": self.global_batch_size,
                "buffer_blocks": self.planner.buffer_blocks,
                "index_seed": self.seed,
            },
        )
        self._last_checkpoint_tuples = self._tuples_seen

    def _restore(self, state: CheckpointState, history: ConvergenceHistory) -> tuple[int, int]:
        meta = state.meta
        for knob, have in (
            ("mode", self.mode),
            ("n_workers", self.n_workers),
            ("global_batch_size", self.global_batch_size),
            ("buffer_blocks", self.planner.buffer_blocks),
            ("index_seed", self.seed),
            ("model", type(self.model).__name__),
        ):
            want = meta.get(knob)
            if want is not None and want != have:
                raise ValueError(
                    f"checkpoint was taken with {knob}={want!r}; resuming with "
                    f"{have!r} would change the update sequence"
                )
        if state.cursor % self.global_batch_size != 0:
            raise ValueError(
                f"cursor {state.cursor} is not a sync-point multiple of the "
                f"global batch size {self.global_batch_size}"
            )
        if self.mode == "async" and state.cursor:
            raise ValueError("async mode only supports epoch-boundary resume")
        for key, value in state.model.params.items():
            self.model.params[key][...] = value
        self.optimizer.load_state_dict(state.optimizer_state)
        for record in state.history:
            history.append(EpochRecord(**record))
        self._tuples_seen = state.tuples_seen
        self._last_checkpoint_tuples = state.tuples_seen
        return state.epoch, state.cursor // self.global_batch_size


# ----------------------------------------------------------------------
# Single-process reference (Section 5.2 equivalence)
# ----------------------------------------------------------------------


def sync_reference_trainer(
    path: str | Path,
    model: SupervisedModel,
    *,
    n_workers: int,
    epochs: int,
    global_batch_size: int,
    buffer_blocks: int = 2,
    seed: int = 0,
    schedule=None,
    task: str = "binary",
) -> Trainer:
    """The single-process run a sync parallel run must match (≈1e-12).

    Mini-batch SGD of ``global_batch_size`` over the interleaved multi-
    process stream: mean-of-equal-slice-means equals the global batch
    mean, so per-batch gradient averaging across ``PN`` processes applies
    numerically the same update sequence as this trainer.
    """
    planner = ShardPlanner.for_block_file(path, n_workers, buffer_blocks, seed=seed)
    orders = [planner.epoch_indices(e, global_batch_size) for e in range(epochs)]
    train = load_block_dataset(path, task=task)
    return Trainer(
        model,
        train,
        fixed_order_source(f"mp-sim-{n_workers}w", orders),
        epochs=epochs,
        schedule=schedule if schedule is not None else ExponentialDecay(0.01),
        batch_size=global_batch_size,
        optimizer=SGD(model),
    )
