"""Shard planning: which blocks, tuples, and sync steps each worker owns.

The planner is the bridge between the Section 5 *simulation*
(:class:`~repro.core.distributed.MultiProcessCorgiPile`) and the executing
engine (:mod:`repro.parallel.engine`): it wraps the simulation and exposes
exactly the derived quantities the coordinator and the worker processes
need — per-worker block shards from the shared per-epoch permutation,
per-buffer-fill visit orders, and the synchronised step count.  Because
every answer is delegated to ``MultiProcessCorgiPile``, the executed tuple
order provably matches the simulated stream (pinned by
``tests/test_parallel_plan.py``).

The planner is a plain picklable value object: the coordinator builds one,
and every spawned worker rebuilds an identical one from the same
``(n_tuples, tuples_per_block, n_workers, buffer_blocks, seed)`` — no
coordination is ever needed to agree on the plan, which is the heart of the
paper's multi-process design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..core.distributed import MultiProcessCorgiPile
from ..data.dataset import BlockLayout

__all__ = ["ShardPlanner"]

_INDEX_SUFFIX = ".index.json"


@dataclass(frozen=True)
class ShardPlanner:
    """Deterministic partitioning of a block file across ``n_workers``."""

    n_tuples: int
    tuples_per_block: int
    n_workers: int
    buffer_blocks: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be positive")
        # Validates n_tuples / tuples_per_block via BlockLayout.
        object.__setattr__(self, "_mp", MultiProcessCorgiPile(
            BlockLayout(self.n_tuples, self.tuples_per_block),
            self.n_workers,
            self.buffer_blocks,
            seed=self.seed,
        ))

    # ------------------------------------------------------------------
    @classmethod
    def for_block_file(
        cls,
        path: str | Path,
        n_workers: int,
        buffer_blocks: int,
        seed: int = 0,
    ) -> "ShardPlanner":
        """Build a planner from a block file's sidecar index.

        Block files store contiguous fixed-size blocks (a short final block
        is fine — that is exactly :class:`BlockLayout`'s shape), so the
        index pins the layout without reading any data bytes.
        """
        with open(str(Path(path)) + _INDEX_SUFFIX) as f:
            doc = json.load(f)
        blocks = doc["blocks"]
        if not blocks:
            raise ValueError(f"block file {path} has no blocks")
        tuples_per_block = max(int(b["n_tuples"]) for b in blocks)
        return cls(int(doc["n_tuples"]), tuples_per_block, n_workers, buffer_blocks, seed)

    # ------------------------------------------------------------------
    @property
    def layout(self) -> BlockLayout:
        return self._mp.layout

    @property
    def n_blocks(self) -> int:
        return self._mp.layout.n_blocks

    def worker_blocks(self, epoch: int) -> list[np.ndarray]:
        """Per-worker shard of the shared epoch block permutation."""
        return self._mp.worker_blocks(epoch)

    def worker_buffer_fills(self, epoch: int, worker_id: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Worker ``worker_id``'s ``(block_group, shuffled_indices)`` fills."""
        return self._mp.worker_buffer_fills(epoch, worker_id)

    def worker_epoch_indices(self, epoch: int, worker_id: int) -> np.ndarray:
        """Worker ``worker_id``'s flat visit order for ``epoch``."""
        return self._mp.worker_epoch_indices(epoch, worker_id)

    def shard_sizes(self, epoch: int) -> list[int]:
        """Tuples owned by each worker this epoch (uneven splits allowed)."""
        layout = self._mp.layout
        return [
            int(sum(layout.block_size(int(b)) for b in blocks))
            for blocks in self.worker_blocks(epoch)
        ]

    # -- synchronous mode ------------------------------------------------
    def per_worker_batch(self, global_batch_size: int) -> int:
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if global_batch_size % self.n_workers != 0:
            raise ValueError("global_batch_size must be divisible by n_workers")
        return global_batch_size // self.n_workers

    def sync_steps(self, epoch: int, global_batch_size: int) -> int:
        """Gradient-sync steps this epoch (limited by the smallest shard).

        Every worker derives the same number independently, so the barrier
        protocol needs no negotiation; ``0`` means the epoch has no full
        global batch (e.g. fewer tuples per shard than ``bs/PN``).
        """
        per_worker = self.per_worker_batch(global_batch_size)
        smallest = min(self.shard_sizes(epoch))
        return smallest // per_worker

    def global_batches(self, epoch: int, global_batch_size: int) -> Iterator[np.ndarray]:
        return self._mp.global_batches(epoch, global_batch_size)

    def epoch_indices(self, epoch: int, global_batch_size: int) -> np.ndarray:
        """The equivalent single-process visit order (for reference runs)."""
        return self._mp.epoch_indices(epoch, global_batch_size)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "n_tuples": self.n_tuples,
            "tuples_per_block": self.tuples_per_block,
            "n_blocks": self.n_blocks,
            "n_workers": self.n_workers,
            "buffer_blocks": self.buffer_blocks,
            "seed": self.seed,
        }
