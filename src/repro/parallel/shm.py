"""Shared-memory vectors for cross-process parameter/gradient exchange.

The engine's hot state lives in ``multiprocessing`` ``RawArray`` buffers —
one flat float64 vector for the model parameters, one slab of ``PN``
per-worker gradient slots — created before the workers spawn and inherited
by them as process arguments.  ``RawArray`` is deliberate: the barrier
protocol provides all ordering (sync mode never has concurrent writers to
the same slot), so the per-element lock of ``Array`` would be pure
overhead, and the async Hogwild mode *wants* lock-free racy updates.

Everything here works under the ``spawn`` start method (no fork-only
inheritance tricks), which is the engine's portability requirement.
"""

from __future__ import annotations

import ctypes
from multiprocessing import sharedctypes

import numpy as np

__all__ = ["alloc_vector", "vector_view", "slab_view", "write_vector"]


def alloc_vector(size: int):
    """Allocate a zeroed shared float64 vector of ``size`` entries."""
    if size <= 0:
        raise ValueError("size must be positive")
    return sharedctypes.RawArray(ctypes.c_double, int(size))


def vector_view(raw) -> np.ndarray:
    """A numpy view over a shared vector (no copy; writes are visible)."""
    return np.frombuffer(raw, dtype=np.float64)


def slab_view(raw, n_slots: int) -> np.ndarray:
    """View a shared slab as ``(n_slots, slot_size)`` rows (one per worker)."""
    flat = vector_view(raw)
    if n_slots <= 0 or flat.size % n_slots != 0:
        raise ValueError(f"slab of {flat.size} entries does not split into {n_slots} slots")
    return flat.reshape(int(n_slots), -1)


def write_vector(raw, values: np.ndarray) -> None:
    """Copy ``values`` into a shared vector (sizes must match)."""
    view = vector_view(raw)
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size != view.size:
        raise ValueError(f"cannot write {values.size} values into vector of {view.size}")
    view[:] = values
