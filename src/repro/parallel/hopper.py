"""Model-hopper parallelism: S models hopping across P CorgiPile shards.

Cerebro-style model-hopper parallelism trains many model configurations in
roughly one data pass: each worker keeps streaming *its own* shard's
blocks (CorgiPile's §5 buffer-fill order, untouched), and it is the model
states — small parameter vectors — that move between workers at sub-epoch
barriers, not the data.

The schedule is a **staggered pipeline**, not a rotation.  Every model's
canonical visit stream is::

    [(epoch e, shard w) for e in range(E) for w in range(P)]

and model ``m`` simply runs ``m`` slots behind model ``0``: at global slot
``t`` it processes stream position ``p = t - m`` (when ``0 <= p < E*P``),
i.e. epoch ``p // P`` on shard ``p % P``.  Two facts fall out:

* with ``S <= P`` no two models ever want the same shard in the same slot
  (distinct ``m`` at fixed ``t`` give distinct ``p % P``), so the slot
  assignment is collision-free and every model visits every shard exactly
  once per epoch; and
* every model traverses the *identical* stream a solo run (``S = 1``,
  same ``P``, same seed) traverses — so each grid config's final weights
  are bit-identical to training that config alone.  The price is a
  pipeline fill/drain bubble: ``E*P + S - 1`` slots instead of ``E*P``.

Runtime protocol (mirrors :class:`~repro.parallel.engine.ParallelTrainer`):
an ``S x dim`` shared-memory slab holds the hopping parameter vectors; per
slot the coordinator and the ``P`` workers meet at two barriers::

    coordinator                          worker w
    barrier A  ──────────┬───────────▶   barrier A
                         │               m = model_at(w, t): load slab[m],
                         │               step over this epoch's fills,
    barrier B  ◀─────────┴───────────    write slab[m], barrier B
    evaluate models that completed an epoch, checkpoint, on_slot()

Checkpoints persist the whole slab plus per-model histories atomically
(:func:`~repro.ml.persistence.durable_write`), so a SIGKILLed grid resumes
at the last completed slot and finishes bit-exact.

:func:`run_hopper_inprocess` executes the same schedule serially in one
process — the reference for equivalence tests and the per-unit timing
source for ``benchmarks/bench_mop.py``'s modeled critical-path wall.
"""

from __future__ import annotations

import io
import json
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..obs import LoaderMetrics, StorageMetrics
from ..ml.models.base import SupervisedModel
from ..ml.persistence import durable_write, model_from_bytes, model_to_bytes
from ..ml.trainer import ConvergenceHistory, EpochRecord
from ..storage.blockfile import BlockFileReader
from .engine import WorkerError, load_block_dataset
from .plan import ShardPlanner
from .shm import alloc_vector, slab_view
from .worker import (
    BARRIER_TIMEOUT_S,
    ShardFetcher,
    _CoordinatorAbort,
    _obs_payload,
    _sync_point,
)

__all__ = [
    "HopperSchedule",
    "HopperWorkerConfig",
    "HopperResult",
    "HopperEngine",
    "hopper_worker_main",
    "run_hopper_inprocess",
    "modeled_walls",
]

_CKPT_VERSION = 1


# ----------------------------------------------------------------------
# The schedule (pure arithmetic; shared by workers, coordinator, tests)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HopperSchedule:
    """The staggered-pipeline slot assignment for S models over P shards."""

    n_models: int
    n_workers: int
    epochs: int

    def __post_init__(self) -> None:
        if self.n_models <= 0:
            raise ValueError("n_models must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.n_workers < self.n_models:
            raise ValueError(
                f"need n_workers >= n_models for a collision-free hop "
                f"schedule (got P={self.n_workers} < S={self.n_models})"
            )

    # -- derived sizes ---------------------------------------------------
    @property
    def stream_length(self) -> int:
        """Positions in one model's canonical visit stream (``E * P``)."""
        return self.epochs * self.n_workers

    @property
    def total_slots(self) -> int:
        """Global slots including the pipeline fill/drain bubble."""
        return self.stream_length + self.n_models - 1

    @property
    def bubble_ratio(self) -> float:
        """Slot overhead vs a single model's data pass: ``>= 1.0``."""
        return self.total_slots / self.stream_length

    # -- the assignment --------------------------------------------------
    def position(self, model: int, slot: int) -> int | None:
        """Model ``model``'s stream position at ``slot`` (None = bubble)."""
        p = slot - model
        return p if 0 <= p < self.stream_length else None

    def model_at(self, worker: int, slot: int) -> int | None:
        """Which model worker ``worker`` hosts at ``slot`` (None = idle).

        At most one model matches because distinct models at a fixed slot
        sit at distinct stream positions, hence distinct shards mod P.
        """
        for m in range(self.n_models):
            p = self.position(m, slot)
            if p is not None and p % self.n_workers == worker:
                return m
        return None

    def epoch_of(self, position: int) -> int:
        return position // self.n_workers

    def shard_of(self, position: int) -> int:
        return position % self.n_workers

    def completes_epoch(self, model: int, slot: int) -> int | None:
        """The epoch ``model`` finishes at the end of ``slot``, if any."""
        p = self.position(model, slot)
        if p is not None and (p + 1) % self.n_workers == 0:
            return (p + 1) // self.n_workers - 1
        return None

    def visits(self, model: int) -> list[tuple[int, int]]:
        """``(epoch, shard)`` visit order for one model — the canonical
        stream, identical for every model (that is the bit-exactness
        argument in one line)."""
        return [
            (self.epoch_of(p), self.shard_of(p)) for p in range(self.stream_length)
        ]

    def to_doc(self) -> dict:
        return {
            "n_models": self.n_models,
            "n_workers": self.n_workers,
            "epochs": self.epochs,
            "total_slots": self.total_slots,
            "stream_length": self.stream_length,
            "bubble_ratio": round(self.bubble_ratio, 6),
        }

    def render(self, max_slots: int = 12) -> list[str]:
        """Human-oriented hop table for EXPLAIN (one line per slot)."""
        lines = []
        for t in range(min(self.total_slots, max_slots)):
            cells = []
            for w in range(self.n_workers):
                m = self.model_at(w, t)
                cells.append(f"w{w}:{'-' if m is None else f'm{m}'}")
            lines.append(f"slot {t:>3}  " + "  ".join(cells))
        if self.total_slots > max_slots:
            lines.append(f"... ({self.total_slots - max_slots} more slots)")
        return lines


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HopperWorkerConfig:
    """Everything one hopper worker needs, as picklable plain data."""

    worker_id: int
    n_workers: int
    n_models: int
    path: str
    model_blobs: tuple  # S serialized models (constructor config travels too)
    lrs: tuple  # S base learning rates
    decays: tuple  # S per-epoch decay factors
    seed: int
    epochs: int
    buffer_blocks: int
    start_slot: int = 0
    extra: dict = field(default_factory=dict)


def hopper_worker_main(cfg: HopperWorkerConfig, slab_raw, barrier, stop, results) -> None:
    """Entry point executed inside each spawned hopper worker process."""
    if cfg.extra.get("trace"):
        obs.enable()
    loader_stats = LoaderMetrics(f"hopper-worker{cfg.worker_id}")
    storage_stats = StorageMetrics(f"hopper-worker{cfg.worker_id}")
    tuples_done = 0
    reader = None
    try:
        models = [model_from_bytes(blob) for blob in cfg.model_blobs]
        reader = BlockFileReader(cfg.path, storage_stats=storage_stats)
        planner = ShardPlanner.for_block_file(
            cfg.path, cfg.n_workers, cfg.buffer_blocks, seed=cfg.seed
        )
        fetcher = ShardFetcher(reader, planner.tuples_per_block, loader_stats)
        schedule = HopperSchedule(cfg.n_models, cfg.n_workers, cfg.epochs)
        loader_stats.record_thread_started()
        slab = slab_view(slab_raw, cfg.n_models)
        with obs.span("hopper.worker", worker=cfg.worker_id):
            for slot in range(cfg.start_slot, schedule.total_slots):
                _sync_point(barrier, stop)  # A: slab rows current
                m = schedule.model_at(cfg.worker_id, slot)
                if m is None:
                    obs.inc("hopper.bubbles")
                else:
                    tuples_done += _run_slot(
                        cfg, schedule, planner, fetcher, models[m], slab, m, slot
                    )
                _sync_point(barrier, stop)  # B: coordinator reads the slab
    except _CoordinatorAbort:
        pass  # clean shutdown requested; fall through to ship stats
    except BaseException:
        import traceback

        barrier.abort()
        results.put(("error", cfg.worker_id, traceback.format_exc()))
        return
    finally:
        if reader is not None:
            reader.close()
        loader_stats.record_thread_joined()
    results.put(
        (
            "stats",
            cfg.worker_id,
            loader_stats,
            storage_stats,
            tuples_done,
            _obs_payload(),
        )
    )


def _run_slot(cfg, schedule, planner, fetcher, model, slab, m, slot) -> int:
    """Host model ``m`` for one slot: load, step this epoch's fills, store."""
    p = schedule.position(m, slot)
    epoch = schedule.epoch_of(p)
    lr = float(cfg.lrs[m]) * float(cfg.decays[m]) ** epoch
    with obs.span(
        "hopper.slot", slot=slot, worker=cfg.worker_id, model=m, epoch=epoch
    ) as sp:
        t0 = time.perf_counter()
        model.load_parameter_vector(slab[m].copy())
        obs.observe("hopper.serialize_s", time.perf_counter() - t0)
        count = 0
        for group, indices in planner.worker_buffer_fills(epoch, cfg.worker_id):
            X, y = fetcher.fetch_fill(group, indices)
            model.step_block(X, y, lr)  # fused per-tuple kernels, visit order
            count += int(y.size)
        t1 = time.perf_counter()
        slab[m, :] = model.parameter_vector()
        obs.observe("hopper.serialize_s", time.perf_counter() - t1)
        sp.set(tuples=count)
    obs.inc("hopper.hops")
    return count


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


@dataclass
class HopperResult:
    """Everything one model-hopper grid run produces."""

    models: list
    histories: list
    labels: list
    schedule: HopperSchedule
    slots_run: int
    tuples_processed: int
    slot_walls: list
    wall_seconds: float
    loader_stats: LoaderMetrics
    storage_stats: StorageMetrics
    per_worker: list = field(default_factory=list)
    plan: dict = field(default_factory=dict)

    def leaderboard(self) -> list[dict]:
        """Per-config summaries, best (lowest final loss) first."""
        rows = []
        for i, (label, history) in enumerate(zip(self.labels, self.histories)):
            final = history.final if history.records else None
            rows.append(
                {
                    "config": i,
                    "label": label,
                    "final_train_loss": None if final is None else final.train_loss,
                    "final_train_score": None if final is None else final.train_score,
                    "epochs_run": len(history.records),
                    "curve": [
                        {
                            "epoch": r.epoch,
                            "train_loss": r.train_loss,
                            "train_score": r.train_score,
                        }
                        for r in history.records
                    ],
                }
            )
        rows.sort(
            key=lambda r: (
                r["final_train_loss"] is None,
                r["final_train_loss"],
                r["config"],
            )
        )
        for rank, row in enumerate(rows):
            row["rank"] = rank
        return rows

    def describe(self) -> dict:
        return {
            "schedule": self.schedule.to_doc(),
            "slots_run": self.slots_run,
            "tuples_processed": self.tuples_processed,
            "wall_seconds": round(self.wall_seconds, 6),
            "leaderboard": self.leaderboard(),
            "plan": self.plan,
        }


class HopperEngine:
    """Multi-process model-hopper training of S models over one block file."""

    def __init__(
        self,
        path: str | Path,
        models: list,
        *,
        lrs: list,
        decays: list,
        epochs: int,
        n_workers: int,
        buffer_blocks: int = 2,
        seed: int = 0,
        labels: list | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every_slots: int = 1,
        task: str = "binary",
        on_slot=None,
        start_method: str = "spawn",
    ):
        if not models:
            raise ValueError("need at least one model")
        if not (len(models) == len(lrs) == len(decays)):
            raise ValueError("models, lrs and decays must align")
        dims = {int(m.parameter_vector().size) for m in models}
        if len(dims) != 1:
            raise ValueError(
                f"all hopper models must share one parameter dimension, got {sorted(dims)}"
            )
        self.path = str(path)
        self.models = list(models)
        self.lrs = [float(x) for x in lrs]
        self.decays = [float(x) for x in decays]
        self.labels = (
            list(labels) if labels is not None else [f"config {i}" for i in range(len(models))]
        )
        self.epochs = int(epochs)
        self.seed = int(seed)
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.checkpoint_every_slots = max(1, int(checkpoint_every_slots))
        self.on_slot = on_slot
        self.start_method = start_method
        self.planner = ShardPlanner.for_block_file(
            self.path, n_workers, buffer_blocks, seed=self.seed
        )
        self.schedule = HopperSchedule(
            len(models), self.planner.n_workers, self.epochs
        )
        self.dim = dims.pop()
        self.eval_set = load_block_dataset(self.path, task=task)

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> HopperResult:
        S = self.schedule.n_models
        histories = [
            ConvergenceHistory(strategy="hopper", model=type(m).__name__)
            for m in self.models
        ]
        start_slot = 0
        slab_init = np.stack([m.parameter_vector() for m in self.models])
        if resume:
            loaded = self._load_checkpoint(histories)
            if loaded is not None:
                start_slot, slab_init = loaded

        ctx = mp.get_context(self.start_method)
        slab_raw = alloc_vector(S * self.dim)
        slab = slab_view(slab_raw, S)
        slab[:, :] = slab_init
        barrier = ctx.Barrier(self.planner.n_workers + 1)
        stop = ctx.Event()
        results = ctx.Queue()
        blobs = tuple(model_to_bytes(m) for m in self.models)
        procs = [
            ctx.Process(
                target=hopper_worker_main,
                args=(
                    HopperWorkerConfig(
                        worker_id=w,
                        n_workers=self.planner.n_workers,
                        n_models=S,
                        path=self.path,
                        model_blobs=blobs,
                        lrs=tuple(self.lrs),
                        decays=tuple(self.decays),
                        seed=self.seed,
                        epochs=self.epochs,
                        buffer_blocks=self.planner.buffer_blocks,
                        start_slot=start_slot,
                        extra={"trace": obs.enabled()},
                    ),
                    slab_raw,
                    barrier,
                    stop,
                    results,
                ),
                daemon=True,
                name=f"repro-hopper-w{w}",
            )
            for w in range(self.planner.n_workers)
        ]
        for proc in procs:
            proc.start()

        slot_walls: list[float] = []
        slots_run = 0
        t_start = time.perf_counter()
        try:
            for slot in range(start_slot, self.schedule.total_slots):
                t0 = time.perf_counter()
                with obs.span("hopper.coordinator_slot", slot=slot) as sp:
                    self._rendezvous(barrier, results)  # A: workers step
                    self._rendezvous(barrier, results)  # B: slab rows written
                    self._evaluate_completions(slot, slab, histories)
                    if (
                        self.checkpoint_path is not None
                        and (slot + 1 - start_slot) % self.checkpoint_every_slots == 0
                    ):
                        self._save_checkpoint(slot + 1, slab, histories)
                    wall = time.perf_counter() - t0
                    sp.set(wall_s=wall)
                slot_walls.append(wall)
                slots_run += 1
                obs.inc("hopper.slots")
                if self.on_slot is not None:
                    self.on_slot(slot, self._progress_doc(slot + 1, histories))
        except BaseException:
            stop.set()
            barrier.abort()
            raise
        finally:
            per_worker, merged_loader, merged_storage, worker_tuples = self._collect(
                procs, results, stop, barrier
            )
        wall_seconds = time.perf_counter() - t_start

        for m, model in enumerate(self.models):
            model.load_parameter_vector(slab[m].copy())
        if self.checkpoint_path is not None:
            self._save_checkpoint(self.schedule.total_slots, slab, histories)
        return HopperResult(
            models=self.models,
            histories=histories,
            labels=self.labels,
            schedule=self.schedule,
            slots_run=slots_run,
            tuples_processed=worker_tuples,
            slot_walls=slot_walls,
            wall_seconds=wall_seconds,
            loader_stats=merged_loader,
            storage_stats=merged_storage,
            per_worker=per_worker,
            plan=self.planner.describe(),
        )

    # ------------------------------------------------------------------
    def _evaluate_completions(self, slot, slab, histories) -> None:
        ev = self.eval_set
        for m in range(self.schedule.n_models):
            epoch = self.schedule.completes_epoch(m, slot)
            if epoch is None:
                continue
            model = self.models[m]
            model.load_parameter_vector(slab[m].copy())
            histories[m].append(
                EpochRecord(
                    epoch=epoch,
                    lr=self.lrs[m] * self.decays[m] ** epoch,
                    train_loss=model.loss(ev.X, ev.y),
                    train_score=model.score(ev.X, ev.y),
                    test_score=None,
                    tuples_seen=(epoch + 1) * int(ev.n_tuples),
                )
            )
            obs.inc("hopper.epochs_completed")

    def _progress_doc(self, slots_done, histories) -> dict:
        return {
            "slots_done": int(slots_done),
            "total_slots": self.schedule.total_slots,
            "epochs_completed": [len(h.records) for h in histories],
        }

    # -- checkpointing ---------------------------------------------------
    def _checkpoint_meta(self) -> dict:
        return {
            "n_models": self.schedule.n_models,
            "n_workers": self.planner.n_workers,
            "epochs": self.epochs,
            "buffer_blocks": self.planner.buffer_blocks,
            "seed": self.seed,
        }

    def _save_checkpoint(self, slots_done, slab, histories) -> None:
        header = {
            "hopper_checkpoint_version": _CKPT_VERSION,
            "slots_done": int(slots_done),
            "labels": self.labels,
            "lrs": self.lrs,
            "decays": self.decays,
            "histories": [
                [
                    {
                        "epoch": r.epoch,
                        "lr": r.lr,
                        "train_loss": r.train_loss,
                        "train_score": r.train_score,
                        "test_score": r.test_score,
                        "tuples_seen": r.tuples_seen,
                    }
                    for r in h.records
                ]
                for h in histories
            ],
            "meta": self._checkpoint_meta(),
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            slab=np.asarray(slab, dtype=np.float64),
            __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        durable_write(self.checkpoint_path, buffer.getvalue())

    def _load_checkpoint(self, histories):
        """Restore ``(start_slot, slab)`` from disk; None if no checkpoint."""
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return None
        with np.load(io.BytesIO(self.checkpoint_path.read_bytes())) as archive:
            header = json.loads(bytes(archive["__header__"].tobytes()).decode())
            slab = np.array(archive["slab"], dtype=np.float64)
        if header.get("hopper_checkpoint_version") != _CKPT_VERSION:
            raise ValueError(
                f"unsupported hopper checkpoint version "
                f"{header.get('hopper_checkpoint_version')!r}"
            )
        meta = header.get("meta", {})
        for knob, have in self._checkpoint_meta().items():
            want = meta.get(knob)
            if want is not None and want != have:
                raise ValueError(
                    f"hopper checkpoint was taken with {knob}={want!r}; resuming "
                    f"with {have!r} would change the update sequence"
                )
        if slab.shape != (self.schedule.n_models, self.dim):
            raise ValueError(
                f"hopper checkpoint slab shape {slab.shape} does not match "
                f"(S={self.schedule.n_models}, dim={self.dim})"
            )
        for h, records in zip(histories, header.get("histories", [])):
            for record in records:
                h.append(EpochRecord(**record))
        return int(header["slots_done"]), slab

    # -- worker management (same discipline as ParallelTrainer) ----------
    def _rendezvous(self, barrier, results) -> None:
        import threading

        try:
            barrier.wait(timeout=BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            raise self._worker_failure(results) from None

    def _worker_failure(self, results) -> WorkerError:
        import queue as queue_mod

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                msg = results.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            if msg[0] == "error":
                return WorkerError(f"hopper worker {msg[1]} failed:\n{msg[2]}")
        return WorkerError("a hopper worker died without reporting an error")

    def _collect(self, procs, results, stop, barrier):
        import queue as queue_mod

        per_worker: list[dict] = []
        merged_loader = LoaderMetrics("hopper")
        merged_storage = StorageMetrics("hopper")
        worker_tuples = 0
        deadline = time.monotonic() + 60.0
        got = 0
        error: WorkerError | None = None
        while got < len(procs) and time.monotonic() < deadline:
            try:
                msg = results.get(timeout=0.5)
            except queue_mod.Empty:
                if not any(p.is_alive() for p in procs) and results.empty():
                    break
                continue
            if msg[0] == "error":
                error = error or WorkerError(f"hopper worker {msg[1]} failed:\n{msg[2]}")
                got += 1
                continue
            if msg[0] != "stats":
                continue
            _, worker_id, loader, storage, tuples_done, payload = msg
            merged_loader.merge(loader)
            merged_storage.merge(storage)
            self._merge_obs_payload(worker_id, payload)
            worker_tuples += int(tuples_done)
            per_worker.append(
                {
                    "worker_id": worker_id,
                    "tuples": int(tuples_done),
                    "loader": loader.as_dict(),
                    "storage": storage.as_dict(),
                }
            )
            got += 1
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - defensive reaping
                proc.terminate()
                proc.join(timeout=5.0)
        per_worker.sort(key=lambda d: d["worker_id"])
        if error is not None and not stop.is_set():
            raise error
        return per_worker, merged_loader, merged_storage, worker_tuples

    @staticmethod
    def _merge_obs_payload(worker_id: int, payload: dict | None) -> None:
        if not payload:
            return
        tracer = payload.get("tracer")
        if tracer is not None and obs.enabled():
            obs.get_tracer().merge(tracer, worker=worker_id)
        registry = payload.get("registry")
        if registry is not None:
            obs.get_registry().merge(registry)


# ----------------------------------------------------------------------
# In-process reference executor (equivalence tests + modeled bench wall)
# ----------------------------------------------------------------------


def run_hopper_inprocess(
    path: str | Path,
    models: list,
    *,
    lrs: list,
    decays: list,
    epochs: int,
    n_workers: int,
    buffer_blocks: int = 2,
    seed: int = 0,
    task: str = "binary",
):
    """Execute the hop schedule serially in this process.

    Work units are independent across workers within a slot (distinct
    models, private readers), so serial execution produces bit-identical
    models to :class:`HopperEngine` while also timing every ``(slot,
    worker)`` unit — the inputs to the modeled critical-path wall used by
    ``bench_mop`` on single-core hosts.

    Returns ``(models, histories, unit_times)`` where ``unit_times`` maps
    ``(slot, worker) -> seconds`` for every *active* unit.
    """
    path = str(path)
    planner = ShardPlanner.for_block_file(path, n_workers, buffer_blocks, seed=seed)
    schedule = HopperSchedule(len(models), planner.n_workers, int(epochs))
    eval_set = load_block_dataset(path, task=task)
    histories = [
        ConvergenceHistory(strategy="hopper-ref", model=type(m).__name__)
        for m in models
    ]
    unit_times: dict[tuple[int, int], float] = {}
    with BlockFileReader(path) as reader:
        fetcher = ShardFetcher(reader, planner.tuples_per_block)
        for slot in range(schedule.total_slots):
            for worker in range(planner.n_workers):
                m = schedule.model_at(worker, slot)
                if m is None:
                    continue
                p = schedule.position(m, slot)
                epoch = schedule.epoch_of(p)
                lr = float(lrs[m]) * float(decays[m]) ** epoch
                t0 = time.perf_counter()
                for group, indices in planner.worker_buffer_fills(epoch, worker):
                    X, y = fetcher.fetch_fill(group, indices)
                    models[m].step_block(X, y, lr)
                unit_times[(slot, worker)] = time.perf_counter() - t0
            for m in range(schedule.n_models):
                epoch = schedule.completes_epoch(m, slot)
                if epoch is None:
                    continue
                histories[m].append(
                    EpochRecord(
                        epoch=epoch,
                        lr=float(lrs[m]) * float(decays[m]) ** epoch,
                        train_loss=models[m].loss(eval_set.X, eval_set.y),
                        train_score=models[m].score(eval_set.X, eval_set.y),
                        test_score=None,
                        tuples_seen=(epoch + 1) * int(eval_set.n_tuples),
                    )
                )
    return models, histories, unit_times


def modeled_walls(schedule: HopperSchedule, unit_times: dict) -> dict:
    """Critical-path wall model from per-unit serial timings.

    * ``hopper_wall``: sum over slots of the slowest active unit in that
      slot — what a perfectly-scheduled P-core host would take.
    * ``serial_wall``: plain sum of all unit times — what S sequential
      solo runs cost (they execute the same multiset of units).
    """
    per_slot: dict[int, float] = {}
    for (slot, _worker), secs in unit_times.items():
        per_slot[slot] = max(per_slot.get(slot, 0.0), secs)
    hopper_wall = float(sum(per_slot.values()))
    serial_wall = float(sum(unit_times.values()))
    return {
        "hopper_wall_s": hopper_wall,
        "serial_wall_s": serial_wall,
        "speedup": serial_wall / hopper_wall if hopper_wall > 0 else 0.0,
        "bubble_ratio": schedule.bubble_ratio,
        "slots": schedule.total_slots,
    }
