"""CorgiPile reproduction: SGD without full data shuffle (SIGMOD 2022).

Top-level convenience namespace.  The commonly used entry points are
re-exported here; subsystems live in their own subpackages:

* :mod:`repro.core` -- the CorgiPile shuffle and data-loading stack,
* :mod:`repro.shuffle` -- the baseline shuffling strategies,
* :mod:`repro.ml` -- models, optimisers, and the trainer,
* :mod:`repro.data` -- synthetic datasets and physical orderings,
* :mod:`repro.storage` -- pages, block files, buffer pool, I/O models,
* :mod:`repro.db` -- the miniature in-DB ML engine,
* :mod:`repro.parallel` -- the executing multi-process engine,
* :mod:`repro.theory` -- the h_D factor and convergence bounds,
* :mod:`repro.bench` -- the experiment harness,
* :mod:`repro.obs` -- the unified observability layer (metrics + tracing).
"""

from . import bench, core, data, db, ml, obs, parallel, shuffle, storage, theory
from .core import CorgiPileDataset, CorgiPileShuffle, DataLoader, MultiProcessCorgiPile
from .data import BlockLayout, Dataset, clustered_by_label, load
from .ml import (
    Adam,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    SoftmaxRegression,
    Trainer,
)
from .shuffle import STRATEGY_NAMES, make_strategy
from .storage import HDD, MEMORY, SSD

__version__ = "1.0.0"

__all__ = [
    "bench",
    "core",
    "db",
    "obs",
    "parallel",
    "theory",
    "data",
    "ml",
    "shuffle",
    "storage",
    "CorgiPileShuffle",
    "CorgiPileDataset",
    "DataLoader",
    "MultiProcessCorgiPile",
    "Dataset",
    "BlockLayout",
    "clustered_by_label",
    "load",
    "Trainer",
    "LogisticRegression",
    "LinearSVM",
    "LinearRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "Adam",
    "make_strategy",
    "STRATEGY_NAMES",
    "HDD",
    "SSD",
    "MEMORY",
    "__version__",
]
