"""The Python client for the training daemon (and the CLI's backend).

One :class:`ReproClient` is one session: connect, handshake, issue
requests, close.  Not thread-safe — the protocol is strict
request/response per connection, so share nothing or open one client per
thread (sessions are cheap; that is the point of the daemon).

    with ReproClient.from_server_file("~/.repro-serve") as db:
        db.load("higgs_sub", order="clustered")
        job = db.sql("SELECT * FROM higgs_sub TRAIN BY lr WITH max_epoch_num = 5")
        final = db.wait(job["job_id"])
        model = db.fetch_model(job["job_id"])
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

from ..ml.persistence import model_from_bytes
from .protocol import (
    PROTOCOL_VERSION,
    decode_blob,
    recv_frame,
    send_frame,
)
from .server import read_server_file

__all__ = ["ReproClient", "ServerError", "SaturatedError"]

#: Job states that will never change again.
_TERMINAL = ("done", "failed", "cancelled")


class ServerError(RuntimeError):
    """The daemon answered ``ok: false``; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str, response: dict):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.response = response


class SaturatedError(ServerError):
    """Admission control said no; wait ``retry_after_s`` and resubmit."""

    def __init__(self, code: str, message: str, response: dict):
        super().__init__(code, message, response)
        self.retry_after_s = float(response.get("retry_after_s", 1.0))


class ReproClient:
    """One connection / one session against a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = self._roundtrip({"type": "hello", "version": PROTOCOL_VERSION})
        self.session_id = hello["session"]

    @classmethod
    def from_server_file(cls, data_dir: str | Path, timeout: float = 60.0):
        """Connect using the daemon's ``server.json`` advertisement."""
        info = read_server_file(data_dir)
        return cls(info["host"], info["port"], timeout=timeout)

    # ------------------------------------------------------------------
    def _roundtrip(self, request: dict) -> dict:
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if not response.get("ok"):
            code = response.get("code", "internal")
            message = response.get("error", "unknown server error")
            if code == "saturated":
                raise SaturatedError(code, message, response)
            raise ServerError(code, message, response)
        return response

    # ------------------------------------------------------------------
    # The request surface, one method per protocol type
    # ------------------------------------------------------------------
    def load(
        self,
        dataset: str,
        table: str | None = None,
        order: str = "shuffled",
        seed: int = 0,
    ) -> dict:
        """Materialise a bundled dataset as a table in this session."""
        return self._roundtrip(
            {
                "type": "load",
                "dataset": dataset,
                "table": table or dataset,
                "order": order,
                "seed": seed,
            }
        )

    def sql(self, statement: str) -> dict:
        """Run one statement; TRAIN BY returns ``{"job_id": ...}``."""
        return self._roundtrip({"type": "sql", "sql": statement})

    def submit(self, statement: str, retries: int = 0) -> str:
        """Submit a TRAIN statement; returns the job id.

        ``retries > 0`` honours ``saturated`` rejections by sleeping the
        server's ``retry_after_s`` hint and resubmitting.
        """
        attempt = 0
        while True:
            try:
                return self.sql(statement)["job_id"]
            except SaturatedError as exc:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(exc.retry_after_s)

    def status(self, job_id: str) -> dict:
        return self._roundtrip({"type": "status", "job_id": job_id})["job"]

    def jobs(self, all_sessions: bool = False) -> list[dict]:
        return self._roundtrip({"type": "jobs", "all": all_sessions})["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._roundtrip({"type": "cancel", "job_id": job_id})["job"]

    def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.1) -> dict:
        """Poll until ``job_id`` reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in _TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {job['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_s)

    def fetch_model(self, job_id: str):
        """Download and deserialise a finished job's model."""
        response = self._roundtrip({"type": "fetch_model", "job_id": job_id})
        return model_from_bytes(decode_blob(response["model"]))

    def stats(self) -> dict:
        return self._roundtrip({"type": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the daemon to stop (acknowledged before it exits)."""
        send_frame(self._sock, {"type": "shutdown"})
        recv_frame(self._sock)

    def close(self) -> None:
        try:
            send_frame(self._sock, {"type": "bye"})
            recv_frame(self._sock)
        except (OSError, ConnectionError):
            pass
        finally:
            self._sock.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReproClient(session={self.session_id!r})"
