"""One connected client = one :class:`Session` with its own catalog.

Each session owns a private :class:`~repro.db.engine.MiniDB` — tables and
models created over one connection are invisible to every other, exactly
like per-connection temp schemas in a real database.  The only shared
state is the server-wide job queue (jobs carry their ``session_id`` so
listings stay scoped) and the process-wide :mod:`repro.obs` registry,
which the session feeds with per-session labelled meters.

Statement routing
-----------------
``SELECT`` / ``EXPLAIN`` / ``PREDICT BY`` / ``EVALUATE BY`` are cheap and
run inline on the connection thread.  ``TRAIN BY`` is a multi-epoch scan —
it goes to the :class:`~repro.serve.jobs.JobManager` and the client gets a
``job_id`` back immediately (or a ``saturated`` rejection with a
``retry_after_s`` hint).  When a job finishes, the server registers the
trained model into the *owning* session's engine under the job id, so
``... PREDICT BY job_3`` works on the same connection that submitted it.
"""

from __future__ import annotations

import time

from .. import obs
from ..data import registry as data_registry
from ..data.orderings import clustered_by_label
from ..db.engine import MiniDB
from ..db.errors import EngineError, ParseError
from ..db.query import (
    CreateIndexQuery,
    DeleteQuery,
    DropIndexQuery,
    EvaluateQuery,
    ExplainQuery,
    InsertQuery,
    PredictQuery,
    SelectQuery,
    TrainQuery,
    UpdateQuery,
    parse_query,
)
from .jobs import Saturated
from .protocol import encode_blob, err, ok

__all__ = ["Session"]


class Session:
    """Per-connection state + the request dispatch table."""

    def __init__(self, session_id: str, server):
        self.session_id = session_id
        self.server = server
        self.db = MiniDB(page_bytes=4096)
        self.connected_at = time.time()
        # Same-process tracer sharing the coordinator's wall anchor, so the
        # disconnect-time merge shifts spans by exactly zero (see
        # repro.obs.trace.Tracer).
        self.tracer = obs.get_tracer().fork()
        self._handlers = {
            "load": self._handle_load,
            "sql": self._handle_sql,
            "status": self._handle_status,
            "jobs": self._handle_jobs,
            "cancel": self._handle_cancel,
            "fetch_model": self._handle_fetch_model,
            "stats": self._handle_stats,
        }

    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Dispatch one decoded request frame to its handler."""
        rtype = request.get("type")
        handler = self._handlers.get(rtype)
        if handler is None:
            return err("bad_request", f"unknown request type {rtype!r}")
        obs.inc(f"serve.session.{self.session_id}.requests")
        t0 = time.perf_counter()
        try:
            with self.tracer.span(
                "serve.request", type=rtype, session=self.session_id
            ):
                return handler(request)
        except Saturated as exc:
            return err(
                "saturated",
                str(exc),
                retry_after_s=exc.retry_after_s,
                queue_depth=exc.depth,
            )
        except ParseError as exc:
            return err("parse_error", str(exc))
        except KeyError as exc:
            return err("not_found", str(exc.args[0]) if exc.args else str(exc))
        except (EngineError, ValueError) as exc:
            return err("engine_error", str(exc))
        except Exception as exc:  # noqa: BLE001 - one bad request must not
            # take the connection (let alone the daemon) down with it.
            return err("internal", f"{type(exc).__name__}: {exc}")
        finally:
            obs.observe(
                f"serve.session.{self.session_id}.request_s",
                time.perf_counter() - t0,
            )

    def close(self) -> None:
        """Fold this session's spans into the global tracer and drop state."""
        obs.get_tracer().merge(self.tracer, worker=self.session_id)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_load(self, request: dict) -> dict:
        name = request.get("dataset")
        if not name:
            return err("bad_request", "load requires a 'dataset' field")
        table = request.get("table") or name
        seed = int(request.get("seed", 0))
        try:
            dataset = data_registry.load(name, seed=seed)
        except KeyError as exc:
            return err("not_found", str(exc.args[0]))
        order = request.get("order", "shuffled")
        if order == "clustered":
            dataset = clustered_by_label(dataset, seed=seed)
        elif order != "shuffled":
            return err("bad_request", f"unknown order {order!r}")
        if table in self.db.catalog:
            self.db.catalog.drop_table(table)
        info = self.db.create_table(table, dataset)
        return ok(
            table=table,
            n_tuples=dataset.n_tuples,
            n_features=dataset.n_features,
            task=dataset.task,
            order=order,
            bytes=info.table_bytes,
        )

    def _handle_sql(self, request: dict) -> dict:
        sql = request.get("sql")
        if not sql or not isinstance(sql, str):
            return err("bad_request", "sql requires a 'sql' string field")
        query = parse_query(sql)
        if isinstance(query, TrainQuery):
            table = self.db.catalog.get(query.table)
            job = self.server.jobs.submit(self.session_id, sql, query, table)
            return ok(job_id=job.job_id, state=job.state)
        if isinstance(query, SelectQuery):
            return ok(result=self.db.select(query))
        if isinstance(query, ExplainQuery):
            return ok(plan=self.db.explain(query.inner))
        if isinstance(query, PredictQuery):
            predictions = self.db.predict(query)
            preview = predictions[:100]
            return ok(
                n_predictions=int(predictions.size),
                predictions=preview,
                truncated=bool(predictions.size > preview.size),
            )
        if isinstance(query, EvaluateQuery):
            return ok(result=self.db.evaluate(query))
        # DML and index DDL are cheap slot/tree mutations: run inline, like
        # SELECT — only multi-epoch TRAINs go through the job queue.
        if isinstance(query, InsertQuery):
            return ok(result=self.db.insert(query))
        if isinstance(query, DeleteQuery):
            return ok(result=self.db.delete(query))
        if isinstance(query, UpdateQuery):
            return ok(result=self.db.update(query))
        if isinstance(query, CreateIndexQuery):
            return ok(result=self.db.create_index(query))
        if isinstance(query, DropIndexQuery):
            return ok(result=self.db.drop_index(query))
        return err("bad_request", f"unsupported statement {type(query).__name__}")

    def _handle_status(self, request: dict) -> dict:
        job = self.server.jobs.get(self._job_id(request))
        return ok(job=job.describe())

    def _handle_jobs(self, request: dict) -> dict:
        scope = None if request.get("all") else self.session_id
        return ok(jobs=self.server.jobs.list(scope))

    def _handle_cancel(self, request: dict) -> dict:
        return ok(job=self.server.jobs.cancel(self._job_id(request)))

    def _handle_fetch_model(self, request: dict) -> dict:
        job_id = self._job_id(request)
        blob = self.server.jobs.model_bytes(job_id)
        return ok(job_id=job_id, model=encode_blob(blob))

    def _handle_stats(self, request: dict) -> dict:
        return ok(stats=self.server.stats())

    @staticmethod
    def _job_id(request: dict) -> str:
        job_id = request.get("job_id")
        if not job_id:
            raise ParseError("request requires a 'job_id' field")
        return str(job_id)
