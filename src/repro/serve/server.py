"""The daemon: a socket server multiplexing sessions over one job queue.

``ReproServer`` binds a TCP socket (``127.0.0.1`` by default, port ``0``
for an ephemeral test port), accepts connections on a listener thread, and
runs each connection on its own thread speaking the
:mod:`repro.serve.protocol` framing.  Every connection gets a
:class:`~repro.serve.session.Session` (private catalog + models); every
``TRAIN BY`` goes through the shared :class:`~repro.serve.jobs.JobManager`
whose journal lives under ``data_dir`` — kill the process at any instant,
restart over the same directory, and in-flight jobs resume bit-exactly
from their checkpoints.

The bound address is advertised in ``<data_dir>/server.json`` so clients
(and the ``repro client`` CLI) can connect without being told a port.

Shutdown discipline: ``stop()`` closes the listener, shuts down every live
session socket, drains the job workers (running jobs re-journal as
``queued``), and joins all threads — a clean stop leaks nothing, which the
CI smoke job asserts.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import threading
import time
from pathlib import Path

from .. import obs
from ..ml.persistence import durable_write, model_from_bytes
from .jobs import JobManager
from .protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    err,
    ok,
    recv_frame,
    send_frame,
)
from .session import Session

__all__ = ["ReproServer", "SERVER_FILE", "read_server_file"]

#: Advertisement file written under the data dir once the socket is bound.
SERVER_FILE = "server.json"


class ReproServer:
    """The long-lived training daemon."""

    def __init__(
        self,
        data_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queued: int = 8,
        job_workers: int = 2,
        checkpoint_every_tuples: int = 256,
        device: str = "ssd",
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = int(port)
        self.jobs = JobManager(
            self.data_dir,
            max_queued=max_queued,
            workers=job_workers,
            checkpoint_every_tuples=checkpoint_every_tuples,
            on_done=self._register_job_model,
            device=device,
        )
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._sessions: dict[str, Session] = {}
        self._session_sockets: dict[str, socket.socket] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._shutdown_requested = threading.Event()
        self._session_counter = 0
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        """Bind, recover journalled jobs, and begin accepting sessions."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        resumed = self.jobs.recover()
        self.jobs.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        # A short timeout turns accept() into a poll against the stop flag.
        listener.settimeout(0.5)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        self._stop.clear()
        self._started_at = time.time()
        durable_write(
            self.data_dir / SERVER_FILE,
            json.dumps(
                {"host": self.host, "port": self.port, "pid": os.getpid()}
            ).encode(),
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        obs.inc("serve.starts")
        if resumed:
            obs.set_gauge("serve.jobs.resumed_on_boot", len(resumed))
        return self

    def serve_forever(self) -> None:
        """Block until a client sends ``shutdown`` or :meth:`stop` is called."""
        self._shutdown_requested.wait()
        self.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop; joins every thread, leaks nothing."""
        if self._listener is None:
            return
        self._stop.set()
        self._shutdown_requested.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            sockets = list(self._session_sockets.values())
        for sock in sockets:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        for t in list(self._conn_threads):
            t.join(timeout=timeout)
        self.jobs.stop(timeout=timeout)
        leaked = [
            t.name
            for t in ([self._accept_thread] if self._accept_thread else [])
            + self._conn_threads
            if t.is_alive()
        ]
        self._listener = None
        self._accept_thread = None
        self._conn_threads = []
        if leaked:
            raise RuntimeError(f"server threads failed to stop: {leaked}")

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="serve-conn",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session: Session | None = None
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = self._handshake(conn)
            if session is None:
                return
            thread = threading.current_thread()
            thread.name = f"serve-conn-{session.session_id}"
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (ConnectionClosed, ProtocolError):
                    return
                rtype = request.get("type")
                if rtype == "bye":
                    send_frame(conn, ok(session=session.session_id))
                    return
                if rtype == "shutdown":
                    send_frame(conn, ok(stopping=True))
                    self._shutdown_requested.set()
                    return
                try:
                    send_frame(conn, session.handle(request))
                except ConnectionClosed:
                    return
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            if session is not None:
                with self._lock:
                    self._session_sockets.pop(session.session_id, None)
                session.close()
                obs.inc("serve.sessions.closed")

    def _handshake(self, conn: socket.socket) -> Session | None:
        """First frame must be a compatible ``hello``; reply with the sid."""
        try:
            hello = recv_frame(conn)
        except (ConnectionClosed, ProtocolError):
            return None
        if hello.get("type") != "hello":
            with contextlib.suppress(ConnectionClosed):
                send_frame(conn, err("bad_handshake", "first frame must be hello"))
            return None
        client_version = hello.get("version")
        if (
            not isinstance(client_version, int)
            or not MIN_PROTOCOL_VERSION <= client_version <= PROTOCOL_VERSION
        ):
            with contextlib.suppress(ConnectionClosed):
                send_frame(
                    conn,
                    err(
                        "version_mismatch",
                        f"server speaks protocols "
                        f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}",
                        server_version=PROTOCOL_VERSION,
                        min_version=MIN_PROTOCOL_VERSION,
                    ),
                )
            return None
        with self._lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
            session = Session(session_id, self)
            self._sessions[session_id] = session
            self._session_sockets[session_id] = conn
        obs.inc("serve.sessions.opened")
        try:
            send_frame(
                conn,
                ok(session=session_id, version=client_version),
            )
        except ConnectionClosed:
            return None
        return session

    # ------------------------------------------------------------------
    # Job completion -> session model registry
    # ------------------------------------------------------------------
    def _register_job_model(self, job, model) -> None:
        """Expose a finished job's model as ``PREDICT BY <job_id>``.

        Runs on the job worker thread — the engine's model registry is
        lock-protected precisely for this write (see MiniDB).  The owning
        session may already be gone (or the job may predate this daemon
        incarnation); the model file on disk remains fetchable either way.
        """
        with self._lock:
            session = self._sessions.get(job.session_id)
        if session is not None:
            session.db.register_model(model, model_id=job.job_id)

    def restore_model(self, job_id: str):
        """Load a finished job's model from its durable file."""
        return model_from_bytes(self.jobs.model_bytes(job_id))

    # ------------------------------------------------------------------
    # The live stats surface (the ``\\bpstat`` idea)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-ready snapshot of daemon, queue, job, and session state."""
        registry = obs.get_registry()
        with self._lock:
            session_ids = sorted(
                self._session_sockets, key=lambda s: int(s.lstrip("s"))
            )
        sessions = {}
        for sid in session_ids:
            sessions[sid] = {
                "requests": registry.counter(f"serve.session.{sid}.requests"),
                "jobs_submitted": registry.counter(
                    f"serve.session.{sid}.jobs_submitted"
                ),
                "jobs_completed": registry.counter(
                    f"serve.session.{sid}.jobs_completed"
                ),
            }
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "uptime_s": round(time.time() - (self._started_at or time.time()), 3),
                "sessions_open": len(session_ids),
                "sessions_total": self._session_counter,
            },
            "queue": {
                "depth": self.jobs.queue_depth(),
                "capacity": self.jobs.max_queued,
                "workers": self.jobs.n_workers,
                "running": self.jobs.running(),
            },
            "jobs": {
                **self.jobs.counts(),
                "rejected": registry.counter("serve.jobs.rejected"),
                "queue_wait_s": registry.histogram("serve.queue.wait_s"),
            },
            "sessions": sessions,
        }


def read_server_file(data_dir: str | Path) -> dict:
    """Read the daemon advertisement written by :meth:`ReproServer.start`."""
    path = Path(data_dir) / SERVER_FILE
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no {SERVER_FILE} under {data_dir} — is the daemon running?"
        ) from None
