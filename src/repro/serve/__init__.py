"""The multi-client training service: daemon, wire protocol, client.

The in-DB setting of the paper implies a *server*: a database is a
long-lived process that many clients connect to, submit work against, and
disconnect from — not a batch script.  This package promotes the MiniDB
engine into exactly that shape:

* :mod:`~repro.serve.protocol` — length-prefixed JSON frames;
* :mod:`~repro.serve.session` — per-connection catalogs and model stores;
* :mod:`~repro.serve.jobs` — the durable async TRAIN queue with admission
  control, cancellation, and crash-safe bit-exact resume;
* :mod:`~repro.serve.server` — the socket daemon tying them together;
* :mod:`~repro.serve.client` — the Python/CLI client.

``repro serve`` / ``repro client`` on the command line wrap these.
"""

from .client import ReproClient, SaturatedError, ServerError
from .jobs import Job, JobManager, Saturated
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    decode_blob,
    decode_frame,
    encode_blob,
    encode_frame,
    err,
    ok,
    recv_frame,
    send_frame,
)
from .server import SERVER_FILE, ReproServer, read_server_file
from .session import Session

__all__ = [
    "ReproServer",
    "ReproClient",
    "Session",
    "Job",
    "JobManager",
    "Saturated",
    "SaturatedError",
    "ServerError",
    "SERVER_FILE",
    "read_server_file",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "ok",
    "err",
    "encode_blob",
    "decode_blob",
]
