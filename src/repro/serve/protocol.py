"""The serve wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Every request carries a
``type`` field; every response carries ``ok`` (bool) plus type-specific
payload fields, or ``error``/``code`` when ``ok`` is false.  The framing is
deliberately the smallest thing that survives partial reads, interleaved
sessions, and megabyte model blobs — the PostgreSQL frontend/backend
protocol's message shape, minus everything this daemon doesn't need.

Requests (client → server)
--------------------------
``hello``        handshake: ``{"type": "hello", "version": 2}`` — must be
                 the first frame on a connection; the reply carries the
                 assigned ``session`` id and the *negotiated* ``version``
                 (the min of both sides, never below
                 :data:`MIN_PROTOCOL_VERSION`).  Version 2 adds the
                 canonical typed TrainSpec document (``spec``) to job
                 status/describe payloads and ``TRAIN ... WITH grid``
                 job support; version-1 clients still connect and simply
                 never see the extra fields (see docs/serve_protocol.md).
``load``         materialise a bundled dataset as a session table:
                 ``{"type": "load", "dataset": ..., "table": ...,
                 "order": "shuffled|clustered", "seed": 0}``.
``sql``          one statement.  SELECT / EXPLAIN / PREDICT BY /
                 EVALUATE BY run inline and return their result; TRAIN BY
                 is submitted to the job queue and returns ``job_id``
                 immediately (or ``code = "saturated"`` with
                 ``retry_after_s`` when admission control rejects it).
``status``       poll one job: ``{"type": "status", "job_id": ...}``.
``jobs``         list this session's jobs (or all with ``"all": true``).
``cancel``       cancel a queued or running job.
``fetch_model``  download a finished job's model blob (base64 npz).
``stats``        the live server stats surface (the ``\\bpstat`` idea):
                 sessions, queue depth, job counts, per-session meters.
``bye``          close the session cleanly.
``shutdown``     ask the daemon to stop (used by tests/CI; a real
                 deployment would gate this on an admin flag).

Model blobs travel base64-encoded inside the JSON frame rather than as a
side-channel binary message: at the scale of this engine's models (KBs to
a few MBs) the 4/3 inflation is irrelevant and the protocol stays
single-framed.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "ok",
    "err",
    "encode_blob",
    "decode_blob",
]

PROTOCOL_VERSION = 2

#: Oldest client protocol the server still speaks.  A v1 hello is answered
#: with ``version = 1`` and the v2-only payload fields are harmless extras
#: the old client never reads.
MIN_PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload; a peer announcing more is treated as
#: corrupt/hostile and the connection is dropped before allocating.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """Malformed frame or protocol-state violation; the connection dies."""


class ConnectionClosed(ConnectionError):
    """The peer closed the socket (mid-frame or between frames)."""


def _default(value):
    """JSON fallback for the numpy scalars/arrays results tend to carry."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} on the wire")


def encode_frame(message: dict) -> bytes:
    """One message → length prefix + UTF-8 JSON bytes."""
    payload = json.dumps(message, default=_default).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _LEN.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Payload bytes (no length prefix) → message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must encode an object, got {type(message).__name__}")
    return message


def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one frame; raises :class:`ConnectionClosed` on a dead peer."""
    try:
        sock.sendall(encode_frame(message))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ConnectionClosed(f"peer gone during send: {exc}") from exc


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except (ConnectionResetError, OSError) as exc:
            raise ConnectionClosed(f"peer gone during recv: {exc}") from exc
        if not chunk:
            if remaining == n and not chunks:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(f"connection died {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one complete frame (blocking)."""
    header = _recv_exactly(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"announced frame of {length} bytes exceeds cap")
    return decode_frame(_recv_exactly(sock, length))


# ----------------------------------------------------------------------
# Response constructors
# ----------------------------------------------------------------------


def ok(**fields) -> dict:
    """A success response."""
    return {"ok": True, **fields}


def err(code: str, message: str, **fields) -> dict:
    """A failure response; ``code`` is machine-readable (``saturated``,
    ``parse_error``, ``unknown_table``, ``unknown_job``, ``internal``...)."""
    return {"ok": False, "code": code, "error": message, **fields}


# ----------------------------------------------------------------------
# Binary payloads inside JSON frames
# ----------------------------------------------------------------------


def encode_blob(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def decode_blob(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"corrupt blob field: {exc}") from exc
