"""The async TRAIN job queue: submit/poll/cancel with durable state.

A ``TRAIN BY`` statement arriving at the daemon is not run inline — it is
*admitted* (or rejected with a retry-after when the queue is full), written
durably to the server's data directory, and executed by a worker-thread
pool.  Clients poll by job id.  The paper's in-DB setting motivates the
shape: a database is a long-lived server, and a multi-epoch SGD scan is the
kind of statement you submit and poll, not hold a connection open for
(MADlib runs it as an aggregate over many transactions for the same
reason).

Durability contract
-------------------
Every job owns three files under ``<data_dir>/jobs/``:

* ``<id>.json``    — the job spec + state, rewritten via
  :func:`repro.ml.persistence.durable_write` on every transition;
* ``<id>.blocks``  — the training table materialised as a block file at
  submit time (plus its ``.index.json``), so the job is self-contained and
  survives its session;
* ``<id>.ckpt.npz`` — the crash-safe training checkpoint, written on the
  ``checkpoint_every_tuples`` cadence by the streaming trainer;
* ``<id>.model.npz`` — the finished model (fetchable after any restart).

Kill the daemon at any instant and restart it over the same data dir:
``recover()`` re-enqueues every job found in a non-terminal state, and the
streaming trainer resumes from the checkpoint **bit-exactly** — the visit
order is a pure function of ``(seed, epoch)`` and checkpoint cadence never
changes the numeric result (see :mod:`repro.ml.streaming`).

Admission control
-----------------
The queue is bounded.  ``submit`` on a full queue raises
:class:`Saturated` carrying a ``retry_after_s`` estimate derived from the
recent per-job runtime and the backlog depth — the protocol layer turns it
into a ``saturated`` error response, so a flooded daemon degrades into
explicit backpressure instead of unbounded memory growth or hung clients.
"""

from __future__ import annotations

import contextlib
import json
import queue
import re
import threading
import time
from collections import deque
from pathlib import Path

import numpy as np

from .. import obs
from ..core.dataloader import DataLoader
from ..core.dataset import CorgiPileDataset
from ..db.query import TrainQuery
from ..ml.models.linear import LinearRegression, LinearSVM, LogisticRegression
from ..ml.models.softmax import SoftmaxRegression
from ..ml.persistence import durable_write, model_to_bytes
from ..ml.schedules import ExponentialDecay
from ..ml.streaming import train_streaming
from ..ml.trainer import CheckpointConfig
from ..storage.blockfile import write_block_file

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Saturated",
    "JobCancelled",
    "DaemonStopping",
    "Job",
    "JobManager",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Loader batch size when the query asks for per-tuple SGD; part of the
#: numeric contract (fused kernels flush at batch boundaries), so it is
#: recorded in the job spec and reused verbatim on resume.
_DEFAULT_LOADER_BATCH = 64


class Saturated(RuntimeError):
    """Admission control rejected the job; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float, depth: int):
        super().__init__(
            f"job queue full ({depth} queued); retry in {retry_after_s:.1f}s"
        )
        self.retry_after_s = retry_after_s
        self.depth = depth


class JobCancelled(Exception):
    """Raised inside the training loop when a cancel lands mid-TRAIN."""


class DaemonStopping(Exception):
    """Raised inside the training loop on graceful daemon shutdown."""


def _l2_kwargs(spec: dict, l2=None) -> dict:
    """The regulariser kwarg for a job's model, when the spec carries one."""
    value = spec.get("l2") if l2 is None else l2
    return {} if value is None else {"l2": float(value)}


_MODEL_CONSTRUCTORS = {
    "lr": lambda spec, l2=None: LogisticRegression(
        spec["n_features"], **_l2_kwargs(spec, l2)
    ),
    "svm": lambda spec, l2=None: LinearSVM(spec["n_features"], **_l2_kwargs(spec, l2)),
    "linreg": lambda spec, l2=None: LinearRegression(
        spec["n_features"], **_l2_kwargs(spec, l2)
    ),
    "softmax": lambda spec, l2=None: SoftmaxRegression(
        spec["n_features"], spec["n_classes"], **_l2_kwargs(spec, l2)
    ),
}


class Job:
    """One TRAIN job: the durable spec plus in-process control state."""

    def __init__(self, spec: dict, jobs_dir: Path):
        self.spec = spec
        self.jobs_dir = Path(jobs_dir)
        self.cancel_event = threading.Event()
        self._lock = threading.Lock()

    # -- identity and paths ---------------------------------------------
    @property
    def job_id(self) -> str:
        return self.spec["job_id"]

    @property
    def state(self) -> str:
        return self.spec["state"]

    @property
    def session_id(self) -> str:
        return self.spec["session_id"]

    @property
    def spec_path(self) -> Path:
        return self.jobs_dir / f"{self.job_id}.json"

    @property
    def blocks_path(self) -> Path:
        return self.jobs_dir / f"{self.job_id}.blocks"

    @property
    def ckpt_path(self) -> Path:
        return self.jobs_dir / f"{self.job_id}.ckpt.npz"

    @property
    def model_path(self) -> Path:
        return self.jobs_dir / f"{self.job_id}.model.npz"

    # -- durable state transitions --------------------------------------
    def transition(self, state: str, **fields) -> None:
        """Move to ``state`` (journalled durably before it is visible)."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            spec = dict(self.spec, state=state, **fields)
            durable_write(self.spec_path, json.dumps(spec, indent=2).encode())
            self.spec = spec

    def describe(self) -> dict:
        """The poll/status view (JSON-ready, no local paths)."""
        with self._lock:
            spec = dict(self.spec)
        keep = (
            "job_id", "session_id", "state", "sql", "table", "model",
            "strategy", "advisor", "where", "warm_start", "seed", "epochs",
            "error", "result", "spec", "grid", "grid_progress",
            "submitted_at", "started_at", "finished_at", "queue_wait_s",
        )
        return {k: spec.get(k) for k in keep if spec.get(k) is not None}


class JobManager:
    """Bounded queue + worker pool + durable journal for TRAIN jobs."""

    def __init__(
        self,
        data_dir: str | Path,
        max_queued: int = 8,
        workers: int = 2,
        checkpoint_every_tuples: int = 256,
        on_done=None,
        device: str = "ssd",
    ):
        self.jobs_dir = Path(data_dir) / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.max_queued = int(max_queued)
        self.n_workers = int(workers)
        self.checkpoint_every_tuples = int(checkpoint_every_tuples)
        #: Device model name the plan-time advisor charges for ``strategy =
        #: auto`` statements (per-query ``WITH device = '...'`` overrides it).
        self.device = str(device)
        #: Called as ``on_done(job, model)`` from the worker thread when a
        #: job finishes training (the server registers the model into the
        #: owning session's engine so PREDICT BY can address it).
        self.on_done = on_done
        self._queue: queue.Queue = queue.Queue(maxsize=self.max_queued)
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._running: set[str] = set()
        self._recent_runtimes: deque[float] = deque(maxlen=16)
        self._counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"serve-job-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop: interrupt running jobs at their next batch.

        Interrupted jobs transition back to ``queued`` — their checkpoint
        carries the progress, and the next ``recover()`` resumes them.
        """
        self._stop.set()
        for _ in self._threads:
            with contextlib.suppress(queue.Full):
                self._queue.put_nowait(None)
        for t in self._threads:
            t.join(timeout=timeout)
        leaked = [t.name for t in self._threads if t.is_alive()]
        self._threads = []
        if leaked:
            raise RuntimeError(f"job workers failed to stop: {leaked}")

    def recover(self) -> list[str]:
        """Load the journal; re-enqueue every non-terminal job.

        Returns the ids that were resumed.  Call before :meth:`start` so
        recovered jobs keep their original submission order (specs sort by
        id ordinal).
        """
        resumed = []
        # Only true spec files: "job_<n>.json" — the glob must not pick up
        # the block-file indexes ("job_<n>.blocks.index.json") beside them.
        spec_paths = [
            p
            for p in self.jobs_dir.glob("job_*.json")
            if re.fullmatch(r"job_\d+", p.stem)
        ]
        for spec_path in sorted(spec_paths, key=lambda p: self._ordinal(p.stem)):
            try:
                spec = json.loads(spec_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # a spec mid-write when the power died; skip
            job = Job(spec, self.jobs_dir)
            with self._jobs_lock:
                self._jobs[job.job_id] = job
                self._counter = max(self._counter, self._ordinal(job.job_id))
            if job.state in TERMINAL_STATES:
                continue
            if not job.blocks_path.exists():
                job.transition("failed", error="block file lost before recovery")
                continue
            job.transition("queued", recovered=True)
            self._queue.put(job)  # recovery happens before clients connect
            resumed.append(job.job_id)
            obs.inc("serve.jobs.recovered")
        return resumed

    @staticmethod
    def _ordinal(job_id: str) -> int:
        try:
            return int(job_id.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # Submission / polling / cancellation
    # ------------------------------------------------------------------
    def submit(self, session_id: str, sql: str, query: TrainQuery, table) -> Job:
        """Admit one TRAIN statement; raises :class:`Saturated` when full.

        ``table`` is the session's :class:`~repro.db.catalog.TableInfo`;
        its dataset is materialised into the job's own block file so the
        job survives the session (and the daemon).
        """
        if query.model not in _MODEL_CONSTRUCTORS:
            raise ValueError(f"unknown model {query.model!r}")
        depth = self._queue.qsize()
        if depth >= self.max_queued:
            retry_after = self._retry_after(depth)
            obs.inc("serve.jobs.rejected")
            raise Saturated(retry_after, depth)

        # Canonical typed spec: validates the statement (bad grids, grid
        # with WHERE, etc.) at admission and rides the journal/wire so any
        # poll or post-crash recovery sees exactly what was asked for.
        train_spec = query.spec()
        train_spec.apply_to_query(query)

        dataset = table.dataset
        where_doc = None
        if query.where is not None:
            # Resolve the filter at admission: the job's block file IS the
            # filtered subset, so the worker (and any post-crash incarnation)
            # trains exactly the rows that qualified at submit time, immune
            # to later DML on the session's table.
            from ..db.where import choose_where_path, plan_where_access
            from ..storage.iomodel import device_by_name

            device = device_by_name(self.device)
            positions, index, access_doc = plan_where_access(
                table, query.where, device
            )
            if len(positions) == 0:
                raise ValueError(
                    f"TRAIN ... WHERE {query.where.render()} matches no tuples"
                )
            where_doc = choose_where_path(
                table, query.where, positions, device, index=index,
                access=access_doc["access"],
            )
            where_doc.update(access_doc)
            where_doc["predicate_doc"] = query.where.to_doc()
            dataset = dataset.subset(positions, suffix="where")

        warm_start = getattr(query, "warm_start", None) or query.extra.get("warm_start")
        warm_start_path = None
        if warm_start:
            warm_start_path = self._resolve_warm_start(str(warm_start), query)

        advisor_doc = None
        strategy = query.strategy
        if strategy == "auto" and query.where is not None:
            # Match the engine: a filtered subset trains with the
            # shuffle-safe default instead of probing the subset's h_D.
            strategy = "corgipile"
        elif strategy == "auto":
            # Resolve the plan-time decision NOW (admission, not execution):
            # the journalled spec records which access path the advisor
            # chose and its full evidence table, so a poll — or a post-crash
            # recovery — can always answer "why did this job run that way".
            from ..db.planner import plan_train
            from ..storage.iomodel import device_by_name

            decision = plan_train(
                table, query, device_by_name(self.device)
            )
            strategy = decision.strategy
            advisor_doc = decision.to_doc()
        grid = train_spec.grid
        hopper_workers = (
            max(query.workers, grid.n_configs) if grid is not None else 1
        )
        tuples_per_block = max(
            1, min(dataset.n_tuples, round(query.block_size / max(1.0, table.tuple_bytes)))
        )
        # Keep at least four blocks so the block shuffle has something to
        # permute (mirrors the engine's parallel-path fair-share cap).  A
        # grid job shards the file across its hopper workers, so each of
        # them needs that floor.
        tuples_per_block = min(
            tuples_per_block, max(1, dataset.n_tuples // (4 * hopper_workers))
        )
        buffer_tuples = max(1, round(query.buffer_fraction * dataset.n_tuples))
        buffer_blocks = max(
            1, round(buffer_tuples / (hopper_workers * tuples_per_block))
        )
        with self._jobs_lock:
            self._counter += 1
            job_id = f"job_{self._counter}"
        spec = {
            "job_id": job_id,
            "session_id": session_id,
            "state": "queued",
            "sql": sql,
            "table": query.table,
            "model": query.model,
            "task": dataset.task,
            "n_features": dataset.n_features,
            "n_classes": (
                dataset.n_classes if dataset.task != "regression" else None
            ),
            "n_tuples": dataset.n_tuples,
            "strategy": strategy,
            "advisor": advisor_doc,
            "where": where_doc,
            "warm_start": str(warm_start) if warm_start else None,
            "warm_start_path": warm_start_path,
            "seed": query.seed,
            "epochs": query.max_epoch_num,
            "learning_rate": query.learning_rate,
            "decay": query.decay,
            "l2": train_spec.l2,
            "spec": train_spec.to_doc(),
            "grid": None if grid is None else grid.to_doc(),
            "hopper_workers": hopper_workers if grid is not None else None,
            "loader_batch": (
                query.batch_size if query.batch_size > 1 else _DEFAULT_LOADER_BATCH
            ),
            "tuples_per_block": tuples_per_block,
            "buffer_blocks": buffer_blocks,
            "checkpoint_every_tuples": self.checkpoint_every_tuples,
            "submitted_at": time.time(),
        }
        job = Job(spec, self.jobs_dir)
        # Blocks first, then the spec: a job whose spec exists always has
        # its data, so recovery never sees a spec pointing at nothing.
        write_block_file(dataset, job.blocks_path, tuples_per_block)
        job.transition("queued")
        with self._jobs_lock:
            self._jobs[job_id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            # Lost the race against other submitters between the depth
            # check and the put; reject exactly like the early check.
            job.transition("cancelled", error="rejected: queue saturated")
            obs.inc("serve.jobs.rejected")
            raise Saturated(self._retry_after(self._queue.qsize()), self.max_queued)
        obs.inc("serve.jobs.submitted")
        obs.inc(f"serve.session.{session_id}.jobs_submitted")
        return job

    def _resolve_warm_start(self, warm_start: str, query: TrainQuery) -> str:
        """Map ``WITH warm_start = 'job_N'`` to that job's model file.

        A bare path to a ``.npz`` saved by :mod:`repro.ml.persistence` is
        accepted too.  The path (not the id) is journalled, so recovery
        keeps working even if the source job is later pruned from memory.
        """
        if re.fullmatch(r"job_\d+", warm_start):
            try:
                source = self.get(warm_start)
            except KeyError:
                # Not in memory (e.g. pre-restart job) — fall back to the
                # journal's model file if it survived.
                path = self.jobs_dir / f"{warm_start}.model.npz"
                if not path.exists():
                    raise ValueError(
                        f"warm_start {warm_start!r}: unknown job and no model file"
                    ) from None
                return str(path)
            if source.state != "done":
                raise ValueError(
                    f"warm_start {warm_start!r}: job is {source.state}, not done"
                )
            if source.spec.get("model") != query.model:
                raise ValueError(
                    f"warm_start {warm_start!r} trained {source.spec.get('model')!r}; "
                    f"this query trains {query.model!r}"
                )
            return str(source.model_path)
        path = Path(warm_start)
        if path.is_file():
            return str(path)
        raise ValueError(f"warm_start {warm_start!r}: no such job or model file")

    def _retry_after(self, depth: int) -> float:
        recent = list(self._recent_runtimes)
        per_job = (sum(recent) / len(recent)) if recent else 1.0
        return round(max(0.5, per_job * (depth + 1) / max(1, self.n_workers)), 2)

    def get(self, job_id: str) -> Job:
        with self._jobs_lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def list(self, session_id: str | None = None) -> list[dict]:
        with self._jobs_lock:
            jobs = sorted(self._jobs.values(), key=lambda j: self._ordinal(j.job_id))
        return [
            j.describe()
            for j in jobs
            if session_id is None or j.session_id == session_id
        ]

    def cancel(self, job_id: str) -> dict:
        job = self.get(job_id)
        job.cancel_event.set()
        if job.state == "queued":
            # The worker loop skips cancelled jobs; journal it now so a
            # crash between here and the dequeue stays cancelled.
            job.transition("cancelled", finished_at=time.time())
            obs.inc("serve.jobs.cancelled")
        return job.describe()

    def model_bytes(self, job_id: str) -> bytes:
        job = self.get(job_id)
        if job.state != "done":
            raise ValueError(f"{job_id} is {job.state}, not done")
        return job.model_path.read_bytes()

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def running(self) -> list[str]:
        with self._jobs_lock:
            return sorted(self._running)

    def counts(self) -> dict:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        out = {state: 0 for state in JOB_STATES}
        for j in jobs:
            out[j.state] = out.get(j.state, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None or self._stop.is_set():
                    if job is not None:
                        # Drained during shutdown: leave it queued for the
                        # next recover().
                        pass
                    return
                self._execute(job)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        if job.cancel_event.is_set() or job.state == "cancelled":
            if job.state != "cancelled":
                job.transition("cancelled", finished_at=time.time())
                obs.inc("serve.jobs.cancelled")
            return
        spec = job.spec
        wait_s = max(0.0, time.time() - spec.get("submitted_at", time.time()))
        obs.observe("serve.queue.wait_s", wait_s)
        obs.inc(f"serve.session.{job.session_id}.jobs_started")
        job.transition("running", started_at=time.time(), queue_wait_s=round(wait_s, 4))
        with self._jobs_lock:
            self._running.add(job.job_id)
        t0 = time.perf_counter()
        try:
            with obs.span("serve.job", job_id=job.job_id, model=spec["model"]):
                model, summary = self._train(job)
        except JobCancelled:
            job.transition("cancelled", finished_at=time.time())
            obs.inc("serve.jobs.cancelled")
        except DaemonStopping:
            # Progress lives in the checkpoint; hand the job back to the
            # journal so the restarted daemon resumes it.
            job.transition("queued", interrupted=True)
        except Exception as exc:  # noqa: BLE001 - job failure is data
            job.transition("failed", error=str(exc), finished_at=time.time())
            obs.inc("serve.jobs.failed")
        else:
            durable_write(job.model_path, model_to_bytes(model))
            job.transition(
                "done",
                finished_at=time.time(),
                result=dict(summary, wall_s=round(time.perf_counter() - t0, 4)),
            )
            with contextlib.suppress(OSError):
                job.ckpt_path.unlink()
            obs.inc("serve.jobs.completed")
            obs.inc(f"serve.session.{job.session_id}.jobs_completed")
            if self.on_done is not None:
                self.on_done(job, model)
        finally:
            self._recent_runtimes.append(max(1e-3, time.perf_counter() - t0))
            with self._jobs_lock:
                self._running.discard(job.job_id)

    def _train(self, job: Job):
        """Run (or resume) one TRAIN job through the streaming trainer."""
        spec = job.spec
        if spec.get("grid"):
            return self._train_grid(job)
        model = _MODEL_CONSTRUCTORS[spec["model"]](spec)
        if spec.get("warm_start_path"):
            from ..ml.persistence import load_model

            warm = load_model(spec["warm_start_path"])
            if type(warm).__name__ != type(model).__name__ or getattr(
                warm, "n_features", None
            ) != getattr(model, "n_features", None):
                raise ValueError(
                    f"warm_start {spec.get('warm_start')!r} is a "
                    f"{type(warm).__name__}; the job trains a "
                    f"{type(model).__name__} over {spec['n_features']} features"
                )
            model = warm
        resume = job.ckpt_path if job.ckpt_path.exists() else None
        epoch_marks: list[float] = []
        with CorgiPileDataset(
            job.blocks_path, buffer_blocks=spec["buffer_blocks"], seed=spec["seed"]
        ) as view:

            def loader_factory(epoch: int):
                epoch_marks.append(time.perf_counter())
                view.set_epoch(epoch)
                return self._interruptible(
                    DataLoader(view, batch_size=spec["loader_batch"]), job
                )

            history = train_streaming(
                model,
                loader_factory,
                epochs=spec["epochs"],
                schedule=ExponentialDecay(spec["learning_rate"], spec["decay"]),
                per_tuple=True,
                fused=True,
                checkpoint=CheckpointConfig(
                    job.ckpt_path, every_tuples=spec["checkpoint_every_tuples"]
                ),
                resume_from=resume,
            )
        marks = epoch_marks + [time.perf_counter()]
        summary = {
            "epochs": len(history.records),
            "tuples_seen": (
                history.records[-1].tuples_seen if history.records else 0
            ),
            # Measured per-epoch walls (loader-to-loader boundaries) — the
            # journal-side twin of the engine's advisor "observed" doc.
            "observed": {
                "epoch_wall_s": [
                    round(b - a, 6) for a, b in zip(marks, marks[1:])
                ],
                "total_wall_s": round(marks[-1] - marks[0], 6) if epoch_marks else 0.0,
            },
        }
        # Final quality numbers come from the job's own on-disk copy, so
        # they are identical no matter which daemon incarnation ran it.
        eval_set = _block_file_arrays(job.blocks_path, spec)
        if eval_set is not None:
            X, y = eval_set
            summary["final_train_loss"] = float(model.loss(X, y))
            summary["final_train_score"] = float(model.score(X, y))
        return model, summary

    def _train_grid(self, job: Job):
        """Run (or resume) a ``TRAIN ... WITH grid`` job via the model hopper.

        Progress is journalled per sub-epoch slot (``grid_progress``), the
        hopper checkpoint lives at the job's usual ``.ckpt.npz`` path, and a
        SIGKILL + ``recover()`` resumes the slot loop bit-exactly — the
        same durability contract as a plain streaming job.
        """
        from ..db.spec import TrainSpec
        from ..parallel import HopperEngine

        spec = job.spec
        tspec = TrainSpec.from_doc(spec["spec"])
        configs = tspec.grid.configs()
        resolved = [c.resolve(tspec) for c in configs]
        models = [
            _MODEL_CONSTRUCTORS[spec["model"]](spec, l2=r["l2"]) for r in resolved
        ]
        stop = self._stop

        def on_slot(slot: int, progress: dict) -> None:
            if stop.is_set():
                raise DaemonStopping()
            if job.cancel_event.is_set():
                raise JobCancelled()
            job.transition(job.state, grid_progress=progress)

        result = HopperEngine(
            job.blocks_path,
            models,
            lrs=[r["lr"] for r in resolved],
            decays=[r["decay"] for r in resolved],
            epochs=spec["epochs"],
            n_workers=spec["hopper_workers"],
            buffer_blocks=spec["buffer_blocks"],
            seed=spec["seed"],
            labels=[c.label() for c in configs],
            checkpoint_path=job.ckpt_path,
            task=spec.get("task", "binary"),
            on_slot=on_slot,
        ).run(resume=True)
        leaderboard = result.leaderboard()
        best = leaderboard[0]
        model = result.models[best["config"]]
        summary = {
            "epochs": spec["epochs"],
            "tuples_seen": result.tuples_processed,
            "schedule": result.schedule.to_doc(),
            "grid": {
                "n_configs": len(configs),
                "best": {k: v for k, v in best.items() if k != "curve"},
                "leaderboard": [
                    {k: v for k, v in row.items() if k != "curve"}
                    for row in leaderboard
                ],
            },
            "observed": {
                "slot_wall_s": [round(w, 6) for w in result.slot_walls],
                "total_wall_s": round(result.wall_seconds, 6),
            },
        }
        if best["final_train_loss"] is not None:
            summary["final_train_loss"] = best["final_train_loss"]
            summary["final_train_score"] = best["final_train_score"]
        return model, summary

    def _interruptible(self, loader, job: Job):
        """Yield batches, surfacing cancel/stop between batches."""
        stop = self._stop

        def generate():
            for batch in loader:
                if stop.is_set():
                    raise DaemonStopping()
                if job.cancel_event.is_set():
                    raise JobCancelled()
                yield batch

        return generate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobManager(queued={self._queue.qsize()}/{self.max_queued}, "
            f"workers={self.n_workers}, jobs={len(self._jobs)})"
        )


def _block_file_arrays(path: Path, spec: dict):
    """Materialise (X, y) from a job's block file for final evaluation."""
    try:
        from ..parallel.engine import load_block_dataset

        dataset = load_block_dataset(path, task=spec.get("task", "binary"))
    except Exception:  # noqa: BLE001 - evaluation is best-effort
        return None
    return dataset.X, np.asarray(dataset.y)
