"""Convergence-bound calculators for Theorems 1 and 2 (Section 4.2).

These evaluate the *shape* of the paper's bounds — the α/β/γ factors and the
resulting rate expressions — so benchmarks can show how the predicted rate
improves with the buffered-block count ``n`` and degrades with the
clustering factor ``h_D``, and how the two limiting cases recover known
results (``α = 1``: full-shuffle SGD; ``α = 0``: mini-batch-like SGD).

The ``≲`` in the paper hides absolute constants; we evaluate the bounds with
those constants set to 1, which preserves every comparison the paper makes
(monotonicity in ``n``, ``h_D``, ``T``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "alpha_factor",
    "strongly_convex_factors",
    "theorem1_bound",
    "nonconvex_factors",
    "theorem2_bound",
    "PhysicalCost",
    "vanilla_sgd_physical_time",
    "corgipile_physical_time",
]


def _validate(n_blocks_buffered: int, n_blocks_total: int, block_size: int) -> None:
    if n_blocks_total < 2:
        raise ValueError("the analysis assumes N >= 2 blocks")
    if not 1 <= n_blocks_buffered <= n_blocks_total:
        raise ValueError("need 1 <= n <= N")
    if block_size < 1:
        raise ValueError("block size must be at least 1")


def alpha_factor(n_blocks_buffered: int, n_blocks_total: int) -> float:
    """α = (n − 1) / (N − 1): the buffer's coverage of the block population."""
    if n_blocks_total < 2:
        raise ValueError("the analysis assumes N >= 2 blocks")
    return (n_blocks_buffered - 1) / (n_blocks_total - 1)


@dataclass(frozen=True)
class RateFactors:
    """The (α, β, γ) triple of a bound."""

    alpha: float
    beta: float
    gamma: float


def strongly_convex_factors(
    n_blocks_buffered: int, n_blocks_total: int, block_size: int
) -> RateFactors:
    """Theorem 1's factors: β = α² + (1−α)²(b−1)², γ = n³/N³."""
    _validate(n_blocks_buffered, n_blocks_total, block_size)
    a = alpha_factor(n_blocks_buffered, n_blocks_total)
    beta = a**2 + (1 - a) ** 2 * (block_size - 1) ** 2
    gamma = (n_blocks_buffered / n_blocks_total) ** 3
    return RateFactors(a, beta, gamma)


def theorem1_bound(
    total_samples: int,
    n_blocks_buffered: int,
    n_blocks_total: int,
    block_size: int,
    sigma2: float,
    hd: float,
) -> float:
    """The Theorem 1 rate (constants = 1):

    (1 − α) h_D σ² / T  +  β / T²  +  γ m³ / T³,  with m = N·b.
    """
    if total_samples <= 0:
        raise ValueError("total_samples must be positive")
    if sigma2 < 0 or hd < 0:
        raise ValueError("sigma2 and hd must be non-negative")
    f = strongly_convex_factors(n_blocks_buffered, n_blocks_total, block_size)
    m = n_blocks_total * block_size
    T = float(total_samples)
    return (1 - f.alpha) * hd * sigma2 / T + f.beta / T**2 + f.gamma * m**3 / T**3


def nonconvex_factors(
    n_blocks_buffered: int,
    n_blocks_total: int,
    block_size: int,
    sigma2: float,
    hd: float,
) -> RateFactors:
    """Theorem 2 case 1 factors (requires α ≤ (N−2)/(N−1), i.e. n < N)."""
    _validate(n_blocks_buffered, n_blocks_total, block_size)
    a = alpha_factor(n_blocks_buffered, n_blocks_total)
    if a >= 1.0:
        raise ValueError("case 1 of Theorem 2 requires n < N (alpha < 1)")
    if sigma2 <= 0 or hd <= 0:
        raise ValueError("sigma2 and hd must be positive for the nonconvex factors")
    hs2 = hd * sigma2
    beta = a**2 / (1 - a) / hs2 + (1 - a) * (block_size - 1) ** 2 / hs2
    gamma = n_blocks_buffered**3 / ((1 - a) * n_blocks_total**3)
    return RateFactors(a, beta, gamma)


def theorem2_bound(
    total_samples: int,
    n_blocks_buffered: int,
    n_blocks_total: int,
    block_size: int,
    sigma2: float,
    hd: float,
) -> float:
    """Theorem 2's ergodic gradient-norm rate (constants = 1).

    Case 1 (n < N): (1−α)^{1/2} √(h_D) σ / √T + β/T + γ m³ / T^{3/2}.
    Case 2 (n = N): 1/T^{2/3} + γ' m³ / T with γ' = n³/N³ = 1.
    """
    if total_samples <= 0:
        raise ValueError("total_samples must be positive")
    m = n_blocks_total * block_size
    T = float(total_samples)
    a = alpha_factor(n_blocks_buffered, n_blocks_total)
    if a >= 1.0:
        return 1 / T ** (2 / 3) + m**3 / T
    f = nonconvex_factors(n_blocks_buffered, n_blocks_total, block_size, sigma2, hd)
    return (
        (1 - f.alpha) ** 0.5 * (hd**0.5) * (sigma2**0.5) / T**0.5
        + f.beta / T
        + f.gamma * m**3 / T**1.5
    )


@dataclass(frozen=True)
class PhysicalCost:
    """Device timing constants of the Section 4.2 physical-time comparison."""

    t_latency_s: float  # one read/write positioning cost (t_lat)
    t_transfer_s: float  # time to transfer a single tuple (t_t)


def vanilla_sgd_physical_time(epsilon: float, sigma2: float, cost: PhysicalCost) -> float:
    """O(σ²/ε · t_lat + σ²/ε · t_t): one random tuple read per update."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    samples = sigma2 / epsilon
    return samples * (cost.t_latency_s + cost.t_transfer_s)


def corgipile_physical_time(
    epsilon: float,
    sigma2: float,
    hd: float,
    block_size: int,
    n_blocks_buffered: int,
    n_blocks_total: int,
    cost: PhysicalCost,
) -> float:
    """O((1−α)·h_D/b·σ²/ε·t_lat + (1−α)·h_D·σ²/ε·t_t).

    Latency amortises over the block (÷ b) and the sample complexity shrinks
    by (1 − α)·h_D; CorgiPile wins on latency-bound devices even with small
    buffers.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    a = alpha_factor(n_blocks_buffered, n_blocks_total)
    samples = (1 - a) * hd * sigma2 / epsilon
    return samples / block_size * cost.t_latency_s + samples * cost.t_transfer_s
