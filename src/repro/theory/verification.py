"""Monte Carlo verification of the proof's sampling identities.

The convergence proof (Appendix B) rests on closed-form moments of
CorgiPile's two-level sampling.  With indicator variables over the block
sample :math:`\\mathcal{B}_s` (|B_l| = b tuples per block, n of N blocks
drawn without replacement), the proof derives:

* **Expectation identity** (the I₂/I₅ computation)::

      E[ Σ_{k} ∇f_{ψ(k)}(x) ] = (n/N) · m · ∇F(x)

  — the buffered gradient sum is an unbiased (scaled) full gradient.

* **Variance identity** (the I₄ computation)::

      E‖ Σ_k ∇f_{ψ(k)}(x) − E Σ_k ∇f_{ψ(k)}(x) ‖²
          = n(N−n)/(N−1) · E_l ‖ Σ_{i∈B_l} ∇f_i(x) − b∇F(x) ‖²

  — block sampling without replacement has the classic finite-population
  correction, which is where the (1−α) factor of Theorem 1 comes from.

These functions verify both identities *numerically* for arbitrary
per-tuple gradient sets: exact combinatorial evaluation of the right-hand
sides against Monte Carlo estimates of the left-hand sides.  They take any
gradient matrix, so tests can feed adversarial inputs (clustered,
heavy-tailed, degenerate) and the benches can feed real model gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import BlockLayout

__all__ = [
    "SamplingMomentCheck",
    "buffered_gradient_sum_samples",
    "verify_expectation_identity",
    "verify_variance_identity",
]


def _block_sums(gradients: np.ndarray, layout: BlockLayout) -> np.ndarray:
    """Per-block gradient sums, shape (N, dim)."""
    sums = np.empty((layout.n_blocks, gradients.shape[1]))
    for block_id in range(layout.n_blocks):
        sums[block_id] = gradients[layout.block_slice(block_id)].sum(axis=0)
    return sums


def buffered_gradient_sum_samples(
    gradients: np.ndarray,
    layout: BlockLayout,
    n_blocks_buffered: int,
    n_samples: int,
    seed: int = 0,
) -> np.ndarray:
    """Monte Carlo draws of Σ_k ∇f_{ψ(k)}: sample n blocks, sum their tuples.

    The tuple-level shuffle does not change the *sum*, so each draw is the
    sum over a without-replacement block sample — exactly the quantity the
    proof takes moments of.
    """
    if not 1 <= n_blocks_buffered <= layout.n_blocks:
        raise ValueError("need 1 <= n <= N")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    block_sums = _block_sums(np.asarray(gradients, dtype=np.float64), layout)
    draws = np.empty((n_samples, block_sums.shape[1]))
    for s in range(n_samples):
        chosen = rng.choice(layout.n_blocks, size=n_blocks_buffered, replace=False)
        draws[s] = block_sums[chosen].sum(axis=0)
    return draws


@dataclass(frozen=True)
class SamplingMomentCheck:
    """Outcome of one identity verification."""

    analytic: float
    monte_carlo: float
    relative_error: float
    n_samples: int

    @property
    def ok(self) -> bool:
        return self.relative_error < 0.1


def verify_expectation_identity(
    gradients: np.ndarray,
    layout: BlockLayout,
    n_blocks_buffered: int,
    n_samples: int = 2000,
    seed: int = 0,
) -> SamplingMomentCheck:
    """Check E[Σ_k ∇f_{ψ(k)}] = (n/N)·m·∇F against Monte Carlo.

    The scalar compared is the norm of both sides (relative error of the
    vector difference over the analytic norm).
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    m = gradients.shape[0]
    full_grad = gradients.mean(axis=0)
    analytic_vector = (n_blocks_buffered / layout.n_blocks) * m * full_grad
    draws = buffered_gradient_sum_samples(
        gradients, layout, n_blocks_buffered, n_samples, seed
    )
    mc_vector = draws.mean(axis=0)
    analytic_norm = float(np.linalg.norm(analytic_vector))
    err = float(np.linalg.norm(mc_vector - analytic_vector))
    rel = err / analytic_norm if analytic_norm > 0 else err
    return SamplingMomentCheck(
        analytic=analytic_norm,
        monte_carlo=float(np.linalg.norm(mc_vector)),
        relative_error=rel,
        n_samples=n_samples,
    )


def verify_variance_identity(
    gradients: np.ndarray,
    layout: BlockLayout,
    n_blocks_buffered: int,
    n_samples: int = 4000,
    seed: int = 0,
) -> SamplingMomentCheck:
    """Check the finite-population variance formula against Monte Carlo.

    Analytic RHS: ``n(N−n)/(N−1) · (1/N) Σ_l ‖S_l − S̄‖²`` where ``S_l`` is
    block l's gradient sum and ``S̄`` their mean (equivalently
    ``Σ_{i∈B_l}∇f_i − b∇F`` for equal-size blocks).
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    N = layout.n_blocks
    n = n_blocks_buffered
    if N < 2:
        raise ValueError("variance identity needs at least two blocks")
    block_sums = _block_sums(gradients, layout)
    centred = block_sums - block_sums.mean(axis=0, keepdims=True)
    population_var = float(np.mean((centred**2).sum(axis=1)))
    analytic = n * (N - n) / (N - 1) * population_var

    draws = buffered_gradient_sum_samples(gradients, layout, n, n_samples, seed)
    mc = float(np.mean(((draws - draws.mean(axis=0)) ** 2).sum(axis=1)))
    denom = analytic if analytic > 0 else 1.0
    return SamplingMomentCheck(
        analytic=analytic,
        monte_carlo=mc,
        relative_error=abs(mc - analytic) / denom,
        n_samples=n_samples,
    )
