"""Theory: the h_D clustering factor, Theorem 1/2 bounds, order diagnostics."""

from .bounds import (
    PhysicalCost,
    RateFactors,
    alpha_factor,
    corgipile_physical_time,
    nonconvex_factors,
    strongly_convex_factors,
    theorem1_bound,
    theorem2_bound,
    vanilla_sgd_physical_time,
)
from .distributions import (
    distribution_report,
    label_mixing_deviation,
    label_window_counts,
    position_rank_correlation,
)
from .tracking import GradientStats, GradientStatsTracker
from .verification import (
    SamplingMomentCheck,
    buffered_gradient_sum_samples,
    verify_expectation_identity,
    verify_variance_identity,
)
from .hd import (
    block_gradient_variance,
    gradient_variance,
    hd_factor,
    per_example_gradients,
)
from .randomness import (
    chi_square_critical,
    chi_square_statistic,
    expected_mean_displacement,
    ks_critical,
    ks_statistic_uniform,
    mean_displacement,
    visit_position_matrix,
)

__all__ = [
    "alpha_factor",
    "RateFactors",
    "strongly_convex_factors",
    "theorem1_bound",
    "nonconvex_factors",
    "theorem2_bound",
    "PhysicalCost",
    "vanilla_sgd_physical_time",
    "corgipile_physical_time",
    "label_window_counts",
    "position_rank_correlation",
    "label_mixing_deviation",
    "distribution_report",
    "per_example_gradients",
    "gradient_variance",
    "block_gradient_variance",
    "hd_factor",
    "GradientStats",
    "GradientStatsTracker",
    "SamplingMomentCheck",
    "buffered_gradient_sum_samples",
    "verify_expectation_identity",
    "verify_variance_identity",
    "chi_square_statistic",
    "chi_square_critical",
    "ks_statistic_uniform",
    "ks_critical",
    "mean_displacement",
    "expected_mean_displacement",
    "visit_position_matrix",
]
