"""Shuffled-order diagnostics — the Figure 3/4 analyses.

Given the tuple visit order a strategy produces on a clustered table, these
helpers compute:

* the tuple-id scatter (position → original tuple id, Figures 3a-d / 4a);
* the per-window label histogram (#negative/#positive per run of 20 tuples,
  Figures 3e-h / 4b);
* two scalar randomness scores used by tests and the Table 1 bench: the
  rank correlation between position and tuple id (1 for No Shuffle, ≈0 for
  a full shuffle) and the label-mixing deviation (how far each window's
  class mix sits from the global mix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "label_window_counts",
    "position_rank_correlation",
    "label_mixing_deviation",
    "distribution_report",
]


def label_window_counts(
    order: np.ndarray, labels: np.ndarray, window: int = 20
) -> np.ndarray:
    """Per window of ``window`` consecutive visits, the count of each class.

    Returns an array of shape ``(n_windows, n_classes)`` with classes in
    sorted label order.  Ragged tails are dropped, as in the figures.
    """
    order = np.asarray(order, dtype=np.int64)
    labels = np.asarray(labels)
    if window <= 0:
        raise ValueError("window must be positive")
    classes = np.unique(labels)
    visited = labels[order]
    n_windows = order.size // window
    counts = np.zeros((n_windows, classes.size), dtype=np.int64)
    for w in range(n_windows):
        chunk = visited[w * window : (w + 1) * window]
        for c, cls in enumerate(classes):
            counts[w, c] = int(np.sum(chunk == cls))
    return counts


def position_rank_correlation(order: np.ndarray) -> float:
    """Spearman rank correlation between visit position and tuple id.

    ≈1 when tuples are visited nearly in storage order (No Shuffle, and —
    tellingly — Sliding-Window, Figure 3b), ≈0 under a full shuffle.
    """
    order = np.asarray(order, dtype=np.float64)
    n = order.size
    if n < 2:
        raise ValueError("need at least two positions")
    positions = np.arange(n, dtype=np.float64)
    order_ranks = np.argsort(np.argsort(order)).astype(np.float64)
    pc = np.corrcoef(positions, order_ranks)[0, 1]
    return float(pc)


def label_mixing_deviation(
    order: np.ndarray, labels: np.ndarray, window: int = 20
) -> float:
    """Mean absolute deviation of window class fractions from global fractions.

    0 means every window reproduces the global label mix (ideal shuffle);
    for a two-class clustered table visited in order it approaches
    ``2 · p · (1 − p)``-style worst-case values (~0.5 for balanced classes).
    """
    counts = label_window_counts(order, labels, window)
    if counts.size == 0:
        raise ValueError("order shorter than one window")
    fractions = counts / counts.sum(axis=1, keepdims=True)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    global_fractions = np.array([np.mean(labels == c) for c in classes])
    return float(np.mean(np.abs(fractions - global_fractions)))


def distribution_report(
    name: str, order: np.ndarray, labels: np.ndarray, window: int = 20
) -> dict:
    """The summary record the Figure 3/4 benches print per strategy."""
    return {
        "strategy": name,
        "rank_correlation": round(position_rank_correlation(order), 4),
        "label_mixing_deviation": round(label_mixing_deviation(order, labels, window), 4),
        "n_windows": int(np.asarray(order).size // window),
    }
