"""The block-wise data-variance factor ``h_D`` (Section 4.2).

The convergence analysis bounds the block-level gradient variance as

    (1/N) Σ_l || ∇f_{B_l}(x) − ∇F(x) ||²  ≤  h_D σ² / b,

where σ² is the per-example gradient variance and ``b`` the block size.
``h_D`` measures how *clustered* the data is at block granularity:
``h_D = 1`` when every block looks like the full distribution (fully
shuffled data) and ``h_D = b`` when blocks are internally homogeneous
(e.g. all tuples in a block share a label).  The leading term of
Theorem 1 scales with ``(1 − α) h_D σ²``, which is why CorgiPile converges
fast on shuffled data and why clustered layouts need the tuple-level
shuffle.

These functions compute σ², the block variance, and the implied (smallest
valid) ``h_D`` for a concrete model/dataset/layout, evaluated at a given
parameter point.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import BlockLayout, Dataset
from ..data.sparse import SparseMatrix
from ..ml.models.base import SupervisedModel
from ..ml.models.linear import GeneralizedLinearModel

__all__ = [
    "per_example_gradients",
    "gradient_variance",
    "block_gradient_variance",
    "hd_factor",
]


def per_example_gradients(model: SupervisedModel, dataset: Dataset) -> np.ndarray:
    """The matrix of per-example gradients, one flattened row per tuple.

    GLMs use a closed form (``dL/dz_i · x_i`` plus the bias component);
    other models fall back to one ``gradient`` call per row.
    """
    X, y = dataset.X, dataset.y
    if isinstance(model, GeneralizedLinearModel):
        z = model.decision_function(X)
        coef = model.loss_fn.dloss_dz(z, np.asarray(y, dtype=np.float64))
        dense = X.to_dense() if isinstance(X, SparseMatrix) else np.asarray(X)
        grads_w = coef[:, None] * dense
        if model.l2:
            grads_w = grads_w + model.l2 * model.w
        if model.fit_intercept:
            return np.hstack([grads_w, coef[:, None]])
        return np.hstack([grads_w, np.zeros((len(coef), 1))])
    rows = []
    for i in range(dataset.n_tuples):
        xi = X.take_rows(np.array([i])) if isinstance(X, SparseMatrix) else X[i : i + 1]
        grads = model.gradient(xi, y[i : i + 1])
        rows.append(np.concatenate([g.ravel() for g in grads.values()]))
    return np.vstack(rows)


def gradient_variance(model: SupervisedModel, dataset: Dataset) -> float:
    """σ² = (1/m) Σ_i ||∇f_i(x) − ∇F(x)||² (Assumption 1.5)."""
    grads = per_example_gradients(model, dataset)
    centred = grads - grads.mean(axis=0, keepdims=True)
    return float(np.mean((centred**2).sum(axis=1)))


def block_gradient_variance(
    model: SupervisedModel, dataset: Dataset, layout: BlockLayout
) -> float:
    """(1/N) Σ_l ||∇f_{B_l}(x) − ∇F(x)||² with ∇f_{B_l} the block mean."""
    grads = per_example_gradients(model, dataset)
    full_mean = grads.mean(axis=0)
    total = 0.0
    for block_id in range(layout.n_blocks):
        block = grads[layout.block_slice(block_id)]
        diff = block.mean(axis=0) - full_mean
        total += float(diff @ diff)
    return total / layout.n_blocks


def hd_factor(model: SupervisedModel, dataset: Dataset, layout: BlockLayout) -> float:
    """The smallest ``h_D`` satisfying the block-variance bound.

    ``h_D = b · blockvar / σ²``; values near 1 indicate shuffled-looking
    blocks, values near ``b`` fully clustered blocks.  Degenerate zero
    variance returns 1 (the bound holds trivially).
    """
    sigma2 = gradient_variance(model, dataset)
    if sigma2 == 0.0:
        return 1.0
    blockvar = block_gradient_variance(model, dataset, layout)
    return layout.tuples_per_block * blockvar / sigma2
