"""Numpy-only statistical tests for shuffle quality.

The shuffle-quality suite needs classical goodness-of-fit machinery —
chi-square against a uniform visit distribution, Kolmogorov–Smirnov
against U(0,1) visit positions — but the tier-1 CI environment carries
only numpy.  This module implements exactly the pieces the tests use,
with standard closed-form critical-value approximations instead of a
scipy dependency:

* chi-square critical values via the Wilson–Hilferty cube transform
  (accurate to ~3 decimal places for dof ≥ 3, the regime the tests run
  in);
* one-sample KS critical values via the asymptotic ``c(α)/√n`` form with
  the small-n correction ``√n + 0.12 + 0.11/√n`` (Stephens 1974), good
  to ~2 decimals for n ≥ 20.

Both return *critical values at fixed α*, not p-values — the tests are
seeded, so they assert "statistic below the α = 0.01 critical value"
rather than doing a p-value dance on one draw.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "chi_square_statistic",
    "chi_square_critical",
    "ks_statistic_uniform",
    "ks_critical",
    "mean_displacement",
    "expected_mean_displacement",
    "visit_position_matrix",
]

# Standard normal upper quantiles z_{1-α} for the supported α levels.
_Z_UPPER = {0.10: 1.2816, 0.05: 1.6449, 0.01: 2.3263, 0.001: 3.0902}


def _z_upper(alpha: float) -> float:
    try:
        return _Z_UPPER[round(float(alpha), 4)]
    except KeyError:
        raise ValueError(
            f"unsupported alpha {alpha!r}; one of {sorted(_Z_UPPER)}"
        ) from None


def chi_square_statistic(observed, expected=None) -> tuple[float, int]:
    """Pearson's X² of ``observed`` counts against ``expected``.

    ``expected`` defaults to uniform over the bins (same total).  Returns
    ``(statistic, dof)`` with ``dof = bins − 1``.
    """
    obs = np.asarray(observed, dtype=np.float64)
    if obs.ndim != 1 or obs.size < 2:
        raise ValueError("observed must be a 1-D array of at least 2 bins")
    if expected is None:
        exp = np.full(obs.size, obs.sum() / obs.size)
    else:
        exp = np.asarray(expected, dtype=np.float64)
        if exp.shape != obs.shape:
            raise ValueError("expected must match observed's shape")
    if np.any(exp <= 0):
        raise ValueError("expected counts must be positive")
    stat = float(np.sum((obs - exp) ** 2 / exp))
    return stat, obs.size - 1


def chi_square_critical(dof: int, alpha: float = 0.01) -> float:
    """Upper-α critical value of χ²(dof), Wilson–Hilferty approximation.

    ``(X²/dof)^(1/3)`` is approximately normal with mean ``1 − 2/(9·dof)``
    and variance ``2/(9·dof)``; inverting gives the quantile in closed
    form — within ~0.3 % of the exact value for dof ≥ 3.
    """
    if dof < 1:
        raise ValueError("dof must be at least 1")
    z = _z_upper(alpha)
    h = 2.0 / (9.0 * dof)
    return float(dof * (1.0 - h + z * np.sqrt(h)) ** 3)


def ks_statistic_uniform(samples) -> float:
    """One-sample KS distance of ``samples`` from U(0, 1)."""
    x = np.sort(np.asarray(samples, dtype=np.float64))
    if x.size == 0:
        raise ValueError("samples must be non-empty")
    if x[0] < 0.0 or x[-1] > 1.0:
        raise ValueError("samples must lie in [0, 1]")
    n = x.size
    grid = np.arange(1, n + 1) / n
    d_plus = float(np.max(grid - x))
    d_minus = float(np.max(x - (grid - 1.0 / n)))
    return max(d_plus, d_minus)


def ks_critical(n: int, alpha: float = 0.01) -> float:
    """Upper-α critical value of the one-sample KS distance at size ``n``.

    ``c(α) / (√n + 0.12 + 0.11/√n)`` with ``c(α) = √(−ln(α/2)/2)`` — the
    Stephens small-sample correction of the asymptotic Kolmogorov law.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    c = float(np.sqrt(-0.5 * np.log(alpha / 2.0)))
    root_n = float(np.sqrt(n))
    return c / (root_n + 0.12 + 0.11 / root_n)


def mean_displacement(perm) -> float:
    """Mean |new position − old position| of a permutation.

    The headline mixing statistic: a full uniform shuffle moves a tuple
    ``≈ n/3`` positions on average (see
    :func:`expected_mean_displacement`); no-shuffle moves it 0; block-level
    schemes land in between, bounded by how far blocks travel.
    """
    p = np.asarray(perm, dtype=np.int64)
    n = p.size
    if n == 0:
        raise ValueError("perm must be non-empty")
    if not np.array_equal(np.sort(p), np.arange(n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    return float(np.mean(np.abs(p - np.arange(n))))


def expected_mean_displacement(n: int) -> float:
    """E|i − j| for i fixed, j uniform: exactly ``(n² − 1) / (3n)`` ≈ n/3."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return (n * n - 1.0) / (3.0 * n)


def visit_position_matrix(strategy, epochs: int) -> np.ndarray:
    """``M[e, t] =`` the position at which epoch ``e`` visits tuple ``t``.

    Row ``e`` is the inverse of ``strategy.epoch_indices(e)``.  Column
    ``t`` divided by ``n`` gives tuple ``t``'s visit-position samples in
    ``[0, 1)`` — the input to the KS/chi-square uniformity tests.
    """
    if epochs < 1:
        raise ValueError("epochs must be at least 1")
    first = np.asarray(strategy.epoch_indices(0))
    n = first.size
    out = np.empty((epochs, n), dtype=np.int64)
    for e in range(epochs):
        order = first if e == 0 else np.asarray(strategy.epoch_indices(e))
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n)
        out[e] = inverse
    return out
