"""Training-time theory diagnostics.

The convergence analysis of Section 4.2 is stated in terms of quantities —
the per-example gradient variance σ² and the block-variance factor ``h_D``
— that change as the model trains.  :class:`GradientStatsTracker` measures
them at the end of every epoch (as a Trainer callback), producing the data
needed to check that the bound's ingredients behave as assumed: σ² stays
bounded (Assumption 1.5) and ``h_D`` keeps separating clustered from
shuffled layouts along the whole trajectory, not just at initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.dataset import BlockLayout, Dataset
from ..ml.models.base import SupervisedModel
from .hd import block_gradient_variance, gradient_variance, hd_factor

__all__ = ["GradientStats", "GradientStatsTracker"]


@dataclass(frozen=True)
class GradientStats:
    """One epoch's theory snapshot."""

    epoch: int
    sigma2: float
    block_variance: float
    hd: float


@dataclass
class GradientStatsTracker:
    """Measures σ², block variance, and h_D after every epoch.

    Use as a Trainer callback::

        tracker = GradientStatsTracker(dataset, layout)
        Trainer(..., callbacks=[tracker]).run()
        tracker.history  # list[GradientStats]
    """

    dataset: Dataset
    layout: BlockLayout
    history: list[GradientStats] = field(default_factory=list)

    def __call__(self, epoch: int, model: SupervisedModel, record) -> None:
        sigma2 = gradient_variance(model, self.dataset)
        blockvar = block_gradient_variance(model, self.dataset, self.layout)
        self.history.append(
            GradientStats(
                epoch=epoch,
                sigma2=sigma2,
                block_variance=blockvar,
                hd=hd_factor(model, self.dataset, self.layout),
            )
        )

    @property
    def final(self) -> GradientStats:
        if not self.history:
            raise ValueError("tracker has not observed any epochs")
        return self.history[-1]

    def sigma2_series(self) -> list[float]:
        return [s.sigma2 for s in self.history]

    def hd_series(self) -> list[float]:
        return [s.hd for s in self.history]
