"""Canonical counter classes behind the legacy stats APIs.

The concrete loader/storage counters that PRs 1–4 grew in
``repro.core.stats`` now live here, under the observability layer they
always belonged to: :class:`LoaderMetrics` and :class:`StorageMetrics` are
the *non-deprecated* implementations, and ``repro.core.stats.LoaderStats``
/ ``StorageStats`` are thin subclasses whose only job is to emit a
``DeprecationWarning`` on construction.  Every counter name, ``as_dict``
key, pickle shape, and merge rule is unchanged, so existing tests and CLI
output stay byte-compatible.

Merging routes through the :func:`repro.obs.merge` facade — the single
entry point that also merges registries and tracers — and stays legal
across the deprecated/canonical boundary: a ``LoaderStats`` merges with a
``LoaderMetrics`` (same family), while loader/storage cross-family merges
still raise ``TypeError``.
"""

from __future__ import annotations

import threading

__all__ = ["MergeableStats", "LoaderMetrics", "StorageMetrics", "merge_stats"]


class MergeableStats:
    """Pickle + merge machinery shared by the counter classes.

    Counters must cross process boundaries for the multi-process engine
    (:mod:`repro.parallel`): workers pickle their stats back to the
    coordinator, which folds them into one report.  Pickling snapshots the
    counters and drops the lock (locks are not process-transportable); the
    unpickled copy gets a fresh lock and stays fully functional.

    Merging is declarative: ``_SUM_FIELDS`` add, ``_MAX_FIELDS`` take the
    max (queue depths don't add across processes).
    """

    _SUM_FIELDS: tuple[str, ...] = ()
    _MAX_FIELDS: tuple[str, ...] = ()

    name: str
    _lock: threading.Lock

    @classmethod
    def _family(cls) -> type:
        """The canonical base deciding merge compatibility.

        Deprecated shims subclass a canonical class; walking the MRO for
        the family root lets a shim merge with its canonical form while
        cross-family merges (loader vs storage) still fail loudly.
        """
        for base in cls.__mro__:
            if "_FAMILY_ROOT" in base.__dict__:
                return base
        return cls

    def _counter_snapshot(self) -> dict:
        with self._lock:
            return {f: getattr(self, f) for f in self._SUM_FIELDS + self._MAX_FIELDS}

    def __getstate__(self) -> dict:
        state = self._counter_snapshot()
        state["name"] = self.name
        return state

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._lock = threading.Lock()
        self.reset()
        for field in self._SUM_FIELDS + self._MAX_FIELDS:
            setattr(self, field, state[field])

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def merge(self, other: "MergeableStats") -> "MergeableStats":
        """Fold ``other``'s counters into this instance (in place).

        Routed through the public facade so *every* telemetry merge in the
        repo — stats, registries, tracers — goes through one API.
        """
        from . import merge as _facade_merge  # circular-safe at call time

        return _facade_merge(self, other)

    def _fold(self, other: "MergeableStats") -> "MergeableStats":
        if (
            not isinstance(other, MergeableStats)
            or other._family() is not self._family()
        ):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        snap = other._counter_snapshot()
        with self._lock:
            for field in self._SUM_FIELDS:
                setattr(self, field, getattr(self, field) + snap[field])
            for field in self._MAX_FIELDS:
                setattr(self, field, max(getattr(self, field), snap[field]))
        return self

    def __add__(self, other: "MergeableStats") -> "MergeableStats":
        if not isinstance(other, MergeableStats) or other._family() is not self._family():
            return NotImplemented
        name = self.name if self.name == other.name else f"{self.name}+{other.name}"
        # Build the result from the canonical family class so adding two
        # deprecated shims does not emit a third DeprecationWarning.
        total = self._family()(name)
        total._fold(self)
        total._fold(other)
        return total

    def __iadd__(self, other: "MergeableStats") -> "MergeableStats":
        if not isinstance(other, MergeableStats) or other._family() is not self._family():
            return NotImplemented
        return self._fold(other)

    # -- registry projection -------------------------------------------
    def to_registry(self, registry, prefix: str | None = None) -> None:
        """Project these counters into a :class:`~repro.obs.Registry`.

        Sum fields become counters, max fields become gauges, all under
        ``<prefix>.<field>`` (prefix defaults to the instance name).
        """
        prefix = self.name if prefix is None else prefix
        snap = self._counter_snapshot()
        for field in self._SUM_FIELDS:
            registry.inc(f"{prefix}.{field}", snap[field])
        for field in self._MAX_FIELDS:
            registry.set_max(f"{prefix}.{field}", snap[field])


def merge_stats(into: MergeableStats, other: MergeableStats) -> MergeableStats:
    """The stats arm of :func:`repro.obs.merge` (family-checked fold)."""
    return into._fold(other)


class LoaderMetrics(MergeableStats):
    """Thread-safe counters for one loader (or one family of loaders).

    A single instance may be shared by several producer threads (e.g. the
    per-worker prefetchers of a ``MultiWorkerLoader``); all counters then
    aggregate across them.  Instances pickle (snapshot, fresh lock on load)
    and merge across processes — see :class:`MergeableStats`.
    """

    _FAMILY_ROOT = True
    _SUM_FIELDS = (
        "items_produced",
        "items_consumed",
        "buffers_filled",
        "buffers_drained",
        "tuples_buffered",
        "producer_stall_s",
        "consumer_wait_s",
        "puts_cancelled",
        "threads_started",
        "threads_joined",
    )
    _MAX_FIELDS = ("max_queue_depth",)

    def __init__(self, name: str = "loader"):
        self.name = name
        self._lock = threading.Lock()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self.items_produced = 0
            self.items_consumed = 0
            self.buffers_filled = 0
            self.buffers_drained = 0
            self.tuples_buffered = 0
            self.producer_stall_s = 0.0
            self.consumer_wait_s = 0.0
            self.puts_cancelled = 0
            self.threads_started = 0
            self.threads_joined = 0
            self.max_queue_depth = 0

    # -- producer side --------------------------------------------------
    def record_put(self, depth_after: int, stalled_s: float, counted: bool = True) -> None:
        """One successful hand-over; ``stalled_s`` spent blocked on a full queue.

        Terminal sentinel puts pass ``counted=False``: their stall time is
        real but they are not produced items.
        """
        with self._lock:
            if counted:
                self.items_produced += 1
            self.producer_stall_s += stalled_s
            if depth_after > self.max_queue_depth:
                self.max_queue_depth = depth_after

    def record_cancelled_put(self, stalled_s: float) -> None:
        """A put abandoned because the consumer cancelled the producer."""
        with self._lock:
            self.puts_cancelled += 1
            self.producer_stall_s += stalled_s

    def record_buffer_filled(self, n_tuples: int) -> None:
        with self._lock:
            self.buffers_filled += 1
            self.tuples_buffered += int(n_tuples)

    # -- consumer side --------------------------------------------------
    def record_get(self, waited_s: float, counted: bool = True) -> None:
        """One item received; ``waited_s`` spent blocked on an empty queue."""
        with self._lock:
            self.consumer_wait_s += waited_s
            if counted:
                self.items_consumed += 1

    def record_buffer_drained(self, n_tuples: int) -> None:  # noqa: ARG002
        with self._lock:
            self.buffers_drained += 1

    # -- thread lifecycle ------------------------------------------------
    def record_thread_started(self) -> None:
        with self._lock:
            self.threads_started += 1

    def record_thread_joined(self) -> None:
        with self._lock:
            self.threads_joined += 1

    # ------------------------------------------------------------------
    @property
    def live_threads(self) -> int:
        """Producer threads started but not yet joined (0 after clean shutdown)."""
        return self.threads_started - self.threads_joined

    @property
    def overlap_fraction(self) -> float:
        """Share of cross-thread blocking borne by the producer.

        1.0 → loading fully hidden behind compute; 0.0 → consumer starved.
        With no measurable blocking on either side, reports 1.0 (perfect
        overlap by absence of waiting).
        """
        total = self.producer_stall_s + self.consumer_wait_s
        if total <= 0.0:
            return 1.0
        return self.producer_stall_s / total

    def as_dict(self) -> dict:
        """Snapshot every counter (plus derived fields) as a plain dict."""
        with self._lock:
            return {
                "name": self.name,
                "items_produced": self.items_produced,
                "items_consumed": self.items_consumed,
                "buffers_filled": self.buffers_filled,
                "buffers_drained": self.buffers_drained,
                "tuples_buffered": self.tuples_buffered,
                "producer_stall_s": self.producer_stall_s,
                "consumer_wait_s": self.consumer_wait_s,
                "puts_cancelled": self.puts_cancelled,
                "threads_started": self.threads_started,
                "threads_joined": self.threads_joined,
                "live_threads": self.threads_started - self.threads_joined,
                "max_queue_depth": self.max_queue_depth,
                "overlap_fraction": (
                    self.producer_stall_s
                    / (self.producer_stall_s + self.consumer_wait_s)
                    if (self.producer_stall_s + self.consumer_wait_s) > 0.0
                    else 1.0
                ),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.as_dict()
        body = ", ".join(f"{k}={v}" for k, v in d.items() if k != "name")
        return f"{type(self).__name__}({self.name!r}, {body})"


class StorageMetrics(MergeableStats):
    """Thread-safe counters for the fault-aware storage read path.

    One instance is shared by a fault injector
    (:class:`~repro.faults.store.FaultyBlockFileReader` /
    :class:`~repro.faults.store.FaultyHeapFile`), the verified readers, and
    the :class:`~repro.storage.retry.RetryPolicy` driving them, so a chaos
    run reports the full picture: how many faults were injected, how many
    retries absorbed them, and whether any read was abandoned.  The headline
    invariant (asserted by ``tests/test_faults.py``) is that for
    transient-only fault plans every counter except ``exhausted_reads`` may
    be nonzero while the trained model stays bit-identical to a fault-free
    run — retries are invisible above the storage layer.

    Instances pickle and merge across processes — see
    :class:`MergeableStats`.
    """

    _FAMILY_ROOT = True
    _SUM_FIELDS = (
        "read_attempts",
        "reads_ok",
        "transient_errors",
        "checksum_failures",
        "retries",
        "exhausted_reads",
        "latency_events",
        "latency_injected_s",
        "crashes_injected",
        "cache_invalidations",
    )

    def __init__(self, name: str = "storage"):
        self.name = name
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.read_attempts = 0
            self.reads_ok = 0
            self.transient_errors = 0
            self.checksum_failures = 0
            self.retries = 0
            self.exhausted_reads = 0
            self.latency_injected_s = 0.0
            self.latency_events = 0
            self.crashes_injected = 0
            self.cache_invalidations = 0

    # -- retry loop ------------------------------------------------------
    def record_attempt(self) -> None:
        with self._lock:
            self.read_attempts += 1

    def record_ok(self) -> None:
        with self._lock:
            self.reads_ok += 1

    def record_fault(self, error: Exception) -> None:
        """Classify one failed attempt by its error type."""
        # Late import would be circular at module load; classify by name so
        # this module keeps zero intra-package imports.
        kind = type(error).__name__
        with self._lock:
            if kind == "ChecksumError":
                self.checksum_failures += 1
            else:
                self.transient_errors += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_exhausted(self) -> None:
        with self._lock:
            self.exhausted_reads += 1

    # -- injection side --------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency_events += 1
            self.latency_injected_s += float(seconds)

    def record_crash(self) -> None:
        with self._lock:
            self.crashes_injected += 1

    def record_cache_invalidation(self) -> None:
        with self._lock:
            self.cache_invalidations += 1

    # --------------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        """Total injected fault events (errors + corruptions + latency)."""
        return self.transient_errors + self.checksum_failures + self.latency_events

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "read_attempts": self.read_attempts,
                "reads_ok": self.reads_ok,
                "transient_errors": self.transient_errors,
                "checksum_failures": self.checksum_failures,
                "retries": self.retries,
                "exhausted_reads": self.exhausted_reads,
                "latency_events": self.latency_events,
                "latency_injected_s": self.latency_injected_s,
                "crashes_injected": self.crashes_injected,
                "cache_invalidations": self.cache_invalidations,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.as_dict()
        body = ", ".join(f"{k}={v}" for k, v in d.items() if k != "name")
        return f"{type(self).__name__}({self.name!r}, {body})"
