"""The tracing half of :mod:`repro.obs`: structured spans.

A :class:`Span` is one timed interval with a name, monotonic start/end
timestamps, a parent id (spans nest per thread), and free-form attributes::

    with tracer.span("epoch", epoch=3):
        with tracer.span("fill", n_tuples=4096):
            ...

Design constraints, in priority order:

* **Near-zero overhead when disabled.**  ``tracer.span(...)`` on a disabled
  tracer returns a shared no-op singleton — no allocation, no lock, no
  timestamp.  Hot call sites stay unguarded.
* **Cross-process mergeable.**  Workers trace locally; the coordinator
  folds worker tracers into its own timeline with :meth:`Tracer.merge`,
  which remaps span ids (preserving parent links) and tags every imported
  span with its worker id.  Tracers pickle like the stats counters do:
  snapshot the spans, drop the lock, fresh lock on load.
* **Two clocks.**  Live spans use ``time.perf_counter()``; simulated-time
  producers (the analytic engine's :class:`~repro.db.timeline.Timeline`)
  record explicit intervals via :meth:`Tracer.add_span` with
  ``clock="simulated"``.  ``base_wall`` anchors monotonic times back to
  wall-clock for export.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Span", "Tracer", "NULL_SPAN", "MAX_SPANS"]

#: Per-tracer retention cap; spans past it are counted in ``dropped``.
MAX_SPANS = 100_000


class Span:
    """One finished interval (plain data; attrs is a JSON-able dict)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id, parent_id, name, start, end, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_s:.6f}s, attrs={self.attrs})"
        )


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        """Attribute writes vanish (matches :meth:`_ActiveSpan.set`)."""


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one live span into its tracer."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_parent_id", "span_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self.span_id = tracer._alloc_id()
        stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record(
            Span(self.span_id, self._parent_id, self.name, self._start, end, self.attrs)
        )
        return None


class Tracer:
    """Collects spans for one process (or one worker within a run).

    ``base_wall`` anchors this tracer's monotonic timestamps to wall-clock.
    Left to default, each tracer estimates its own anchor from a
    ``time.time() - time.perf_counter()`` read — two such estimates taken at
    different moments disagree by the read jitter plus any NTP step/slew in
    between, so spans merged across tracers misalign by that skew even when
    both live in one process and share a monotonic clock.  Same-process
    tracers (serve sessions, per-job tracers) must therefore be constructed
    with the coordinator's anchor (``Tracer(base_wall=coordinator.base_wall)``):
    :meth:`merge` re-anchors by the anchor *difference*, which is then
    exactly ``0.0`` and the merged timeline is skew-free.  Tracers in other
    processes keep their own anchor — their ``perf_counter`` epoch genuinely
    differs, and the anchor difference is precisely the cross-process shift.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_spans: int = MAX_SPANS,
        base_wall: float | None = None,
    ):
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.dropped = 0
        #: Anchors monotonic span times to wall-clock for export.
        self.base_wall = (
            float(base_wall)
            if base_wall is not None
            else time.time() - time.perf_counter()
        )
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 1

    def fork(self) -> "Tracer":
        """A fresh same-process tracer sharing this one's wall anchor.

        The canonical way to give a session/job its own span buffer that
        later merges back skew-free: ``child = parent.fork()`` then
        ``parent.merge(child)`` shifts by exactly 0.0.
        """
        return Tracer(
            enabled=self.enabled,
            max_spans=self.max_spans,
            base_wall=self.base_wall,
        )

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a span; returns the shared no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: int | None = None,
        **attrs,
    ) -> int | None:
        """Record a finished interval with explicit timestamps.

        Used for intervals that were timed out-of-band (barrier waits,
        producer stalls) or that live on a simulated clock (pass
        ``clock="simulated"`` in ``attrs``).  Returns the span id, or None
        while tracing is disabled.
        """
        if not self.enabled:
            return None
        span_id = self._alloc_id()
        self._record(Span(span_id, parent_id, name, float(start), float(end), attrs))
        return span_id

    def current_span_id(self) -> int | None:
        """Id of this thread's innermost open span (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- internals ------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _alloc_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(span)

    # -- aggregation ----------------------------------------------------
    def total_s(self, name: str) -> float:
        """Summed duration of every finished span called ``name``."""
        with self._lock:
            return sum(s.duration_s for s in self.spans if s.name == name)

    def by_name(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self.spans = []
            self.dropped = 0
            self._next_id = 1
        self._tls = threading.local()

    def merge(self, other: "Tracer", worker=None) -> "Tracer":
        """Fold ``other``'s spans into this timeline (in place).

        Span ids are remapped past this tracer's id space so parent links
        survive; ``worker`` (if given) is stamped on every imported span so
        a merged multi-process trace stays attributable.  Timestamps are
        re-anchored by the difference of the two wall-clock anchors — a
        tracer constructed with this coordinator's anchor (see class
        docstring) merges with an exact-zero shift, so same-process
        session/job tracers never skew.
        """
        if not isinstance(other, Tracer):
            raise TypeError(f"cannot merge {type(other).__name__} into Tracer")
        theirs = other.__getstate__()
        # Shared anchor -> shift is exactly 0.0 (same monotonic timebase);
        # foreign anchor -> shift re-bases the other process's clock onto
        # ours.  Computed once, outside the per-span loop.
        shift = theirs["base_wall"] - self.base_wall
        with self._lock:
            offset = self._next_id
            max_seen = 0
            for s in theirs["spans"]:
                attrs = dict(s.attrs)
                if worker is not None and "worker" not in attrs:
                    attrs["worker"] = worker
                clone = Span(
                    s.span_id + offset,
                    s.parent_id + offset if s.parent_id is not None else None,
                    s.name,
                    s.start + shift,
                    s.end + shift,
                    attrs,
                )
                max_seen = max(max_seen, s.span_id)
                if len(self.spans) >= self.max_spans:
                    self.dropped += 1
                else:
                    self.spans.append(clone)
            self.dropped += theirs["dropped"]
            self._next_id = offset + max_seen + 1
        return self

    # -- pickle ---------------------------------------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "max_spans": self.max_spans,
                "spans": list(self.spans),
                "dropped": self.dropped,
                "base_wall": self.base_wall,
                "next_id": self._next_id,
            }

    def __setstate__(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self.max_spans = state["max_spans"]
        self.spans = list(state["spans"])
        self.dropped = state["dropped"]
        self.base_wall = state["base_wall"]
        self._next_id = state["next_id"]
        self._lock = threading.Lock()
        self._tls = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(enabled={self.enabled}, spans={len(self.spans)}, "
            f"dropped={self.dropped})"
        )
