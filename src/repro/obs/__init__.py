"""``repro.obs`` — the one observability API for the whole repo.

Everything the paper's evaluation needs to attribute wall-clock time —
I/O vs shuffle vs SGD, producer stall vs consumer wait, retries, barrier
waits — reports through this package:

* a process-wide metrics :class:`Registry` (counters / gauges / bounded
  histograms; picklable, cross-process mergeable);
* a structured :class:`Tracer` of nested :func:`span`\\ s with monotonic
  timestamps, parent ids, and per-span attributes — near-zero overhead
  while disabled (the default);
* exporters: JSONL trace (:func:`trace_to`), flat JSON metrics snapshot,
  and the human ``repro obs-report`` summary tree (:func:`report`).

The legacy stats surfaces (``repro.core.stats.LoaderStats`` /
``StorageStats``, ``overlap_report``, ``chaos_report``, ``Timeline``) are
thin adapters over this package; their canonical implementations live in
:mod:`repro.obs.adapters`.

Layering: this package imports **nothing** from the rest of ``repro`` —
it sits at the bottom of the dependency graph so every other layer (storage,
db, ml, parallel, faults, cli, bench) can instrument itself freely.

Typical use::

    from repro import obs

    with obs.trace_to("run.trace.jsonl", metrics_path="run.metrics.json"):
        with obs.span("epoch", epoch=0):
            ...
        obs.inc("ml.tuples_trained", 4096)
    print(obs.report("run.trace.jsonl"))
"""

from __future__ import annotations

from contextlib import contextmanager

from .adapters import LoaderMetrics, MergeableStats, StorageMetrics, merge_stats
from .export import (
    DEFAULT_SCHEMA_PATH,
    load_schema,
    read_trace_jsonl,
    render_report,
    span_event,
    validate_events,
    write_metrics_json,
    write_trace_jsonl,
)
from .registry import Registry
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    # facade
    "Registry",
    "span",
    "trace_to",
    "merge",
    "report",
    # session state
    "enabled",
    "enable",
    "disable",
    "reset",
    "get_registry",
    "get_tracer",
    # recording helpers
    "add_span",
    "current_span_id",
    "inc",
    "observe",
    "set_gauge",
    "set_max",
    # building blocks
    "Tracer",
    "Span",
    "NULL_SPAN",
    "MergeableStats",
    "LoaderMetrics",
    "StorageMetrics",
    # exporters
    "write_trace_jsonl",
    "write_metrics_json",
    "read_trace_jsonl",
    "render_report",
    "validate_events",
    "load_schema",
    "span_event",
    "DEFAULT_SCHEMA_PATH",
]

#: The process-wide session telemetry.  The registry always records (its
#: call sites are per-block / per-epoch, never per-tuple); the tracer is
#: disabled until :func:`enable` / :func:`trace_to` turns it on, and a
#: disabled ``span()`` costs one attribute check.
_REGISTRY = Registry("session")
_TRACER = Tracer(enabled=False)


def get_registry() -> Registry:
    return _REGISTRY


def get_tracer() -> Tracer:
    return _TRACER


def enabled() -> bool:
    """Is span tracing currently on?  (Hot paths gate extra work on this.)"""
    return _TRACER.enabled


def enable() -> None:
    _TRACER.enabled = True


def disable() -> None:
    _TRACER.enabled = False


def reset() -> None:
    """Clear the session registry and tracer (tests; fresh CLI runs)."""
    _REGISTRY.reset()
    _TRACER.reset()


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


def span(name: str, **attrs):
    """Open a session span: ``with obs.span("epoch", epoch=3): ...``."""
    return _TRACER.span(name, **attrs)


def add_span(name: str, start: float, end: float, **attrs):
    """Record an out-of-band interval into the session tracer."""
    return _TRACER.add_span(name, start, end, **attrs)


def current_span_id():
    return _TRACER.current_span_id()


def inc(name: str, n: float = 1) -> None:
    _REGISTRY.inc(name, n)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    _REGISTRY.set_gauge(name, value)


def set_max(name: str, value: float) -> None:
    _REGISTRY.set_max(name, value)


# ----------------------------------------------------------------------
# Merge — the single fold for every telemetry object in the repo
# ----------------------------------------------------------------------


def merge(into, other):
    """Fold ``other`` into ``into`` (in place) and return ``into``.

    Dispatches on type: two registries, two tracers, or two stats objects
    of the same family (loader with loader, storage with storage — a
    cross-family merge raises ``TypeError``, as do mismatched kinds).
    """
    if isinstance(into, Registry) and isinstance(other, Registry):
        return into.merge(other)
    if isinstance(into, Tracer) and isinstance(other, Tracer):
        return into.merge(other)
    if isinstance(into, MergeableStats):
        return merge_stats(into, other)
    raise TypeError(
        f"cannot merge {type(other).__name__} into {type(into).__name__}"
    )


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


@contextmanager
def trace_to(trace_path=None, metrics_path=None):
    """Trace the enclosed block and export on exit.

    Enables the session tracer for the duration (restoring its previous
    state afterwards), then writes the JSONL trace to ``trace_path`` and/or
    the flat metrics snapshot to ``metrics_path``.  Either path may be
    None; with both None this is just a scoped ``enable()``.
    Yields ``(tracer, registry)``.
    """
    prev = _TRACER.enabled
    _TRACER.enabled = True
    try:
        yield (_TRACER, _REGISTRY)
    finally:
        _TRACER.enabled = prev
        if trace_path is not None:
            write_trace_jsonl(trace_path, _TRACER, _REGISTRY)
        if metrics_path is not None:
            write_metrics_json(metrics_path, _REGISTRY)


def report(source=None, registry=None, **kwargs) -> str:
    """The human summary tree for a tracer, event list, or trace file.

    With no arguments, reports the live session tracer and registry.
    """
    if source is None:
        source = _TRACER
        registry = _REGISTRY if registry is None else registry
    return render_report(source, registry=registry, **kwargs)
