"""The metrics half of :mod:`repro.obs`: one process-safe registry.

A :class:`Registry` holds three metric kinds under dotted names
(``"storage.bufferpool.hits"``):

* **counters** — monotonically increasing sums (``inc``);
* **gauges** — last-observed level where *merging* keeps the max (queue
  depths, pool occupancy — values that do not add across processes);
* **histograms** — count/sum/min/max kept exactly, plus a bounded
  reservoir of raw observations for percentile estimates.

Like the legacy ``_MergeableStats`` counters, a registry is picklable
(snapshot the values, drop the lock, fresh lock on load) and cross-process
mergeable: workers ship theirs home and the coordinator folds them into one.
The merge is associative — counters add, gauges max, histogram moments fold
exactly and reservoirs concatenate-then-truncate — so any fold order over
worker registries produces the same snapshot (asserted by
``tests/test_obs.py``).
"""

from __future__ import annotations

import threading

__all__ = ["Registry", "RESERVOIR_MAX"]

#: Per-histogram cap on retained raw observations.  Concatenate-then-truncate
#: keeps the merge associative (the survivors depend only on insertion order,
#: which the fold preserves left-to-right).
RESERVOIR_MAX = 512


def _new_hist() -> dict:
    return {"count": 0, "sum": 0.0, "min": None, "max": None, "reservoir": []}


class Registry:
    """A named bag of counters, gauges, and histograms behind one lock."""

    def __init__(self, name: str = "registry"):
        self.name = name
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current level of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def set_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high-water mark."""
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name``."""
        value = float(value)
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = _new_hist()
            h["count"] += 1
            h["sum"] += value
            h["min"] = value if h["min"] is None else min(h["min"], value)
            h["max"] = value if h["max"] is None else max(h["max"], value)
            if len(h["reservoir"]) < RESERVOIR_MAX:
                h["reservoir"].append(value)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> dict | None:
        """A summary dict for histogram ``name`` (or None if never observed)."""
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                return None
            return self._hist_summary(h)

    @staticmethod
    def _hist_summary(h: dict) -> dict:
        res = sorted(h["reservoir"])
        summary = {
            "count": h["count"],
            "sum": h["sum"],
            "min": h["min"],
            "max": h["max"],
            "mean": h["sum"] / h["count"] if h["count"] else None,
        }
        if res:
            summary["p50"] = res[len(res) // 2]
            summary["p95"] = res[min(len(res) - 1, int(len(res) * 0.95))]
        return summary

    def snapshot(self) -> dict:
        """Everything, as one JSON-able dict (the flat metrics export)."""
        with self._lock:
            return {
                "name": self.name,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: self._hist_summary(h) for name, h in self._hists.items()
                },
            }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Registry":
        """Rebuild a registry from a :meth:`snapshot` dict (e.g. a metrics
        export read back from disk).  Histogram moments are restored exactly;
        the percentile reservoir is not part of the snapshot, so re-derived
        percentiles are unavailable on the rebuilt registry.
        """
        reg = cls(snapshot.get("name", "snapshot"))
        reg._counters = dict(snapshot.get("counters", {}))
        reg._gauges = dict(snapshot.get("gauges", {}))
        for name, s in snapshot.get("histograms", {}).items():
            reg._hists[name] = {
                "count": s["count"],
                "sum": s["sum"],
                "min": s["min"],
                "max": s["max"],
                "reservoir": [],
            }
        return reg

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._hists)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    # -- merge / pickle -------------------------------------------------
    def merge(self, other: "Registry") -> "Registry":
        """Fold ``other`` into this registry (in place); returns self."""
        if not isinstance(other, Registry):
            raise TypeError(f"cannot merge {type(other).__name__} into Registry")
        state = other.__getstate__()
        with self._lock:
            for name, value in state["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in state["gauges"].items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
            for name, theirs in state["hists"].items():
                h = self._hists.get(name)
                if h is None:
                    h = self._hists[name] = _new_hist()
                h["count"] += theirs["count"]
                h["sum"] += theirs["sum"]
                for key, pick in (("min", min), ("max", max)):
                    if theirs[key] is not None:
                        h[key] = (
                            theirs[key]
                            if h[key] is None
                            else pick(h[key], theirs[key])
                        )
                h["reservoir"] = (h["reservoir"] + theirs["reservoir"])[:RESERVOIR_MAX]
        return self

    def __add__(self, other: "Registry") -> "Registry":
        if not isinstance(other, Registry):
            return NotImplemented
        name = self.name if self.name == other.name else f"{self.name}+{other.name}"
        total = Registry(name)
        total.merge(self)
        total.merge(other)
        return total

    def __iadd__(self, other: "Registry") -> "Registry":
        if not isinstance(other, Registry):
            return NotImplemented
        return self.merge(other)

    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                # Deep-copy the mutable histogram cells so the pickled
                # snapshot cannot alias live state.
                "hists": {
                    k: {**h, "reservoir": list(h["reservoir"])}
                    for k, h in self._hists.items()
                },
            }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._lock = threading.Lock()
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._hists = {
            k: {**h, "reservoir": list(h["reservoir"])}
            for k, h in state["hists"].items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.name!r}, {len(self)} metrics)"
