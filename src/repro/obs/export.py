"""Exporters for :mod:`repro.obs`: JSONL traces, JSON metrics, text reports.

Three output shapes, one source of truth (the session tracer + registry):

* :func:`write_trace_jsonl` — one JSON object per line: a ``meta`` header
  followed by one ``span`` event per finished span.  The format is pinned
  by ``docs/obs_trace.schema.json`` and validated in CI.
* :func:`write_metrics_json` — the registry's flat snapshot as one JSON
  document (counters/gauges/histogram summaries).
* :func:`render_report` — the human ``repro obs-report`` summary: spans
  aggregated into a tree by call path with count/total/mean per node.

The schema validator is a deliberately small hand-rolled subset of JSON
Schema (type/required/properties/enum) — enough to pin the trace format in
CI without adding a dependency.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "DEFAULT_SCHEMA_PATH",
    "span_event",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_metrics_json",
    "render_report",
    "validate_events",
    "load_schema",
]

#: The checked-in schema the CI ``obs-smoke`` job validates traces against.
DEFAULT_SCHEMA_PATH = (
    Path(__file__).resolve().parents[3] / "docs" / "obs_trace.schema.json"
)

_TRACE_VERSION = 1


# ----------------------------------------------------------------------
# JSONL trace
# ----------------------------------------------------------------------


def span_event(span, base_wall: float) -> dict:
    """One span as its wire-format JSON object."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_s": span.start,
        "end_s": span.end,
        "duration_s": span.end - span.start,
        "wall_start": base_wall + span.start,
        "attrs": dict(span.attrs),
    }


def write_trace_jsonl(path, tracer, registry=None) -> int:
    """Write ``tracer`` (and optionally a metrics snapshot) as JSONL.

    Returns the number of span events written.  The first line is always
    the ``meta`` header; a ``metrics`` line follows it when a registry is
    given, so one trace file can carry the whole telemetry picture.
    """
    state = tracer.__getstate__()
    spans = state["spans"]
    with open(path, "w") as fh:
        json.dump(
            {
                "type": "meta",
                "version": _TRACE_VERSION,
                "base_wall": state["base_wall"],
                "span_count": len(spans),
                "dropped": state["dropped"],
            },
            fh,
        )
        fh.write("\n")
        if registry is not None:
            json.dump({"type": "metrics", **registry.snapshot()}, fh)
            fh.write("\n")
        for span in spans:
            json.dump(span_event(span, state["base_wall"]), fh)
            fh.write("\n")
    return len(spans)


def read_trace_jsonl(path) -> tuple[dict, list[dict]]:
    """Load a trace file back as ``(meta, events)``.

    ``events`` keeps every non-meta line (span and metrics events alike) in
    file order.
    """
    meta: dict = {}
    events: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "meta" and not meta:
                meta = obj
            else:
                events.append(obj)
    return meta, events


# ----------------------------------------------------------------------
# Metrics snapshot
# ----------------------------------------------------------------------


def write_metrics_json(path, registry) -> dict:
    """Write the registry snapshot as one JSON document; returns it."""
    snapshot = registry.snapshot()
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot


# ----------------------------------------------------------------------
# Human summary tree
# ----------------------------------------------------------------------


def _span_events(source) -> list[dict]:
    """Normalise a tracer / event list / trace path into span events."""
    if hasattr(source, "__getstate__") and hasattr(source, "spans"):
        state = source.__getstate__()
        return [span_event(s, state["base_wall"]) for s in state["spans"]]
    if isinstance(source, (str, Path)):
        _, events = read_trace_jsonl(source)
        return [e for e in events if e.get("type") == "span"]
    return [e for e in source if e.get("type") == "span"]


def render_report(source, registry=None, max_depth: int = 6) -> str:
    """The ``repro obs-report`` text: a span tree plus top counters.

    Spans are aggregated by *call path* (root span name / child name / …);
    each tree node shows invocation count, total seconds, and mean.
    ``source`` may be a live tracer, a list of span events, or a trace file
    path.
    """
    events = _span_events(source)
    by_id = {e["id"]: e for e in events}

    def path_of(event: dict) -> tuple:
        path = [event["name"]]
        seen = {event["id"]}
        parent = event.get("parent")
        while parent is not None and parent in by_id and len(path) < max_depth:
            if parent in seen:  # defensive: a cycle would hang the report
                break
            seen.add(parent)
            node = by_id[parent]
            path.append(node["name"])
            parent = node.get("parent")
        return tuple(reversed(path))

    agg: dict[tuple, dict] = {}
    for event in events:
        node = agg.setdefault(path_of(event), {"count": 0, "total": 0.0})
        node["count"] += 1
        node["total"] += float(event["duration_s"])

    lines = [f"spans: {len(events)} across {len(agg)} call paths"]
    if not events:
        lines.append("  (no spans recorded — was tracing enabled?)")
    # Children sort under their parents because tuple order is prefix order;
    # ties broken by total time so hot paths surface first at each level.
    for path in sorted(agg, key=lambda p: (p[:-1], -agg[p]["total"])):
        node = agg[path]
        mean = node["total"] / node["count"]
        indent = "  " * len(path)
        lines.append(
            f"{indent}{path[-1]:<28s} n={node['count']:<6d} "
            f"total={node['total']:>10.4f}s  mean={mean:.6f}s"
        )
    if registry is not None:
        snap = registry.snapshot()
        if snap["counters"]:
            lines.append("\ncounters:")
            for name in sorted(snap["counters"]):
                lines.append(f"  {name:<44s} {snap['counters'][name]}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name in sorted(snap["gauges"]):
                lines.append(f"  {name:<44s} {snap['gauges'][name]}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name in sorted(snap["histograms"]):
                h = snap["histograms"][name]
                lines.append(
                    f"  {name:<44s} n={h['count']} mean={h['mean']:.6f} "
                    f"min={h['min']:.6f} max={h['max']:.6f}"
                )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Minimal JSON-schema-subset validator (no external dependency)
# ----------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def _validate(value, schema: dict, where: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_check_type(value, t) for t in allowed):
            errors.append(f"{where}: expected {expected}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{where}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate(value[key], sub, f"{where}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{where}[{i}]", errors)


def load_schema(path=None) -> dict:
    with open(path or DEFAULT_SCHEMA_PATH) as fh:
        return json.load(fh)


def validate_events(meta: dict, events: list[dict], schema: dict | None = None) -> list[str]:
    """Validate one loaded trace against the (subset) JSON schema.

    Returns a list of human-readable problems — empty means valid.  Beyond
    per-line shape checks, cross-line invariants are enforced: parent ids
    must resolve, and span intervals must not be negative.
    """
    if schema is None:
        schema = load_schema()
    errors: list[str] = []
    _validate(meta, schema["definitions"]["meta"], "meta", errors)
    span_schema = schema["definitions"]["span"]
    metrics_schema = schema["definitions"]["metrics"]
    ids = set()
    for i, event in enumerate(events):
        kind = event.get("type")
        if kind == "span":
            _validate(event, span_schema, f"events[{i}]", errors)
            if isinstance(event.get("id"), int):
                ids.add(event["id"])
        elif kind == "metrics":
            _validate(event, metrics_schema, f"events[{i}]", errors)
        else:
            errors.append(f"events[{i}]: unknown event type {kind!r}")
    for i, event in enumerate(events):
        if event.get("type") != "span":
            continue
        parent = event.get("parent")
        if parent is not None and parent not in ids:
            errors.append(f"events[{i}]: parent {parent} does not resolve to a span")
        if (
            isinstance(event.get("start_s"), (int, float))
            and isinstance(event.get("end_s"), (int, float))
            and event["end_s"] < event["start_s"]
        ):
            errors.append(f"events[{i}]: negative duration")
    return errors
