"""High-level experiment runners shared by the benchmark targets.

Each paper figure is a sweep over (dataset ordering × shuffle strategy ×
model), reporting either convergence curves or end-to-end timelines.  The
runners here encapsulate those sweeps so individual bench files stay small
and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..data.dataset import Dataset
from ..ml.models.base import SupervisedModel
from ..ml.optim import Adam, Optimizer, SGD
from ..ml.schedules import ExponentialDecay
from ..ml.trainer import ConvergenceHistory, Trainer
from ..shuffle.registry import make_strategy

__all__ = ["ConvergenceSweep", "run_convergence_sweep", "history_row"]


@dataclass
class ConvergenceSweep:
    """The outcome of one strategy sweep on one dataset."""

    dataset: str
    model: str
    histories: dict[str, ConvergenceHistory]

    def final_scores(self) -> dict[str, float]:
        return {
            name: history.final.test_score
            if history.final.test_score is not None
            else history.final.train_score
            for name, history in self.histories.items()
        }

    def converged_scores(self, tail: int = 4) -> dict[str, float]:
        """Tail-averaged test scores (the stable converged-accuracy estimate)."""
        return {
            name: history.converged_test_score(tail)
            for name, history in self.histories.items()
        }

    def rows(self) -> list[dict]:
        return [
            history_row(self.dataset, self.model, name, history)
            for name, history in self.histories.items()
        ]


def history_row(dataset: str, model: str, strategy: str, history: ConvergenceHistory) -> dict:
    final = history.final
    return {
        "dataset": dataset,
        "model": model,
        "strategy": strategy,
        "epochs": history.epochs,
        "train_loss": round(final.train_loss, 4),
        "train_acc": round(final.train_score, 4),
        "test_acc": round(final.test_score, 4) if final.test_score is not None else None,
    }


def run_convergence_sweep(
    train: Dataset,
    test: Dataset | None,
    model_factory: Callable[[], SupervisedModel],
    strategies: Sequence[str],
    *,
    epochs: int,
    learning_rate: float,
    decay: float = 0.95,
    tuples_per_block: int | None = None,
    buffer_fraction: float = 0.1,
    batch_size: int = 1,
    use_adam: bool = False,
    seed: int = 0,
    dataset_name: str | None = None,
) -> ConvergenceSweep:
    """Train one fresh model per strategy over ``train`` and collect histories.

    Every strategy sees the same initial model (fresh factory call with the
    same seed inside the factory), the same hyper-parameters, and the same
    buffer budget — the paper's controlled-comparison protocol.
    """
    per_block = tuples_per_block or max(1, train.n_tuples // 100)
    layout = train.layout(per_block)
    histories: dict[str, ConvergenceHistory] = {}
    for name in strategies:
        model = model_factory()
        strategy = make_strategy(name, layout, buffer_fraction=buffer_fraction, seed=seed)
        optimizer: Optimizer | None
        if use_adam:
            optimizer = Adam(model)
        elif batch_size > 1:
            optimizer = SGD(model)
        else:
            optimizer = None
        trainer = Trainer(
            model,
            train,
            strategy,
            epochs=epochs,
            schedule=ExponentialDecay(learning_rate, decay),
            batch_size=batch_size,
            optimizer=optimizer,
            test=test,
        )
        histories[name] = trainer.run()
    return ConvergenceSweep(
        dataset=dataset_name or train.name,
        model=type(model_factory()).__name__,
        histories=histories,
    )
