"""Result rendering and persistence for the benchmark harness.

Every bench target prints the rows/series its paper table or figure reports
(ASCII, one table per experiment) and can persist the raw records as JSON
next to the benchmarks for later inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["format_table", "print_table", "save_records", "format_curve"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    print()
    print(format_table(rows, columns, title))


def format_curve(label: str, values: Sequence[float], width: int = 50) -> str:
    """A one-line sparkline-ish rendering of a metric series."""
    if not values:
        return f"{label}: (empty)"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    chars = "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in list(values)[:width]
    )
    return f"{label:24s} [{chars}] {values[-1]:.4f}"


def save_records(records: object, path: str | Path) -> Path:
    """Persist benchmark records as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(records, f, indent=2, default=str)
    return path
