"""Benchmark harness: sweep runners, kernel microbenchmarks, result reporting."""

from .kernelbench import FULL_SIZES, QUICK_SIZES, kernel_bench_rows, run_kernel_bench
from .mopbench import mop_bench_rows, run_mop_bench
from .parallelbench import parallel_bench_rows, run_parallel_bench
from .reporting import format_curve, format_table, print_table, save_records
from .runners import ConvergenceSweep, history_row, run_convergence_sweep
from .timing import ThroughputRecord, compare_throughput, time_best

__all__ = [
    "format_table",
    "format_curve",
    "print_table",
    "save_records",
    "ConvergenceSweep",
    "run_convergence_sweep",
    "history_row",
    "time_best",
    "ThroughputRecord",
    "compare_throughput",
    "run_kernel_bench",
    "kernel_bench_rows",
    "run_parallel_bench",
    "parallel_bench_rows",
    "run_mop_bench",
    "mop_bench_rows",
    "QUICK_SIZES",
    "FULL_SIZES",
]
