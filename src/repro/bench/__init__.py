"""Benchmark harness: sweep runners and result reporting."""

from .reporting import format_curve, format_table, print_table, save_records
from .runners import ConvergenceSweep, history_row, run_convergence_sweep

__all__ = [
    "format_table",
    "format_curve",
    "print_table",
    "save_records",
    "ConvergenceSweep",
    "run_convergence_sweep",
    "history_row",
]
