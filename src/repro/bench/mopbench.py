"""Model-hopper grid bench (``BENCH_mop.json``).

Measures the cost of training an S-config grid with the model hopper
against the cost of one plain data pass.  The pipelined hop schedule fills
``E*P + S - 1`` sub-epoch slots where a solo run fills ``E*P``, so the
whole grid should cost barely more than training *one* configuration —
that is the paper's "train S models for the price of one data pass" claim,
and the acceptance gate pins it: ``hopper_wall <= 1.4x one_pass_wall`` at
the quick S=4 scale.

Wall accounting: the schedule is executed serially in-process
(:func:`repro.parallel.run_hopper_inprocess`), timing every ``(slot,
worker)`` work unit, and the hopper wall is the *modeled critical path* —
the sum over slots of the slowest active unit in each slot, i.e. what a
perfectly-scheduled P-core host would take.  The serial execution is
bit-identical to the multi-process :class:`~repro.parallel.HopperEngine`
(the equivalence tests pin that), so the model times real work; only the
division across cores is modeled.  This keeps the bench deterministic on
single-core CI hosts — ``wall_source`` says so explicitly.

The bench also re-trains every grid config solo over the same block file
and asserts the hopper weights are bit-identical (``bit_exact``), so the
speedup is never bought with a different answer.
"""

from __future__ import annotations

import os
import platform
import tempfile
from pathlib import Path

import numpy as np

from ..data.generators import make_binary_dense
from ..ml.models.linear import LogisticRegression
from ..storage import write_block_file

__all__ = ["QUICK_CONFIG", "FULL_CONFIG", "run_mop_bench", "mop_bench_rows"]

#: The quick S=4 config the acceptance gate runs (seconds on one core).
QUICK_CONFIG = {
    "n_tuples": 4000,
    "n_features": 16,
    "tuples_per_block": 50,
    "epochs": 3,
    "n_workers": 4,
    "buffer_blocks": 2,
}

FULL_CONFIG = {
    "n_tuples": 20000,
    "n_features": 32,
    "tuples_per_block": 100,
    "epochs": 4,
    "n_workers": 4,
    "buffer_blocks": 2,
}

#: The S=4 learning-rate axis the gate trains (decay fixed at 0.95).
GRID_LRS = (0.1, 0.05, 0.01, 0.005)
_DECAY = 0.95

#: Acceptance gate: the whole grid may cost at most this multiple of one
#: data pass (the schedule's own bubble is (E*P + S - 1) / (E*P) = 1.25 at
#: the quick scale; 1.4 leaves headroom for unit-time variance).
GATE_RATIO = 1.4


def run_mop_bench(quick: bool = True, seed: int = 0, repeats: int = 3) -> dict:
    """Run the grid-vs-one-pass bench and return the JSON-ready document.

    The critical-path model takes a max over P workers per slot, which
    amplifies per-unit scheduler jitter, so each unit's time is the best
    of ``repeats`` identical executions (the work is deterministic; the
    min filters the noise, same as the steady-state epoch wall in the
    parallel bench).
    """
    from ..parallel import HopperSchedule, modeled_walls, run_hopper_inprocess

    sizes = QUICK_CONFIG if quick else FULL_CONFIG
    host_cores = os.cpu_count() or 1
    n_models = len(GRID_LRS)
    dataset = make_binary_dense(sizes["n_tuples"], sizes["n_features"], seed=seed)
    lrs = list(GRID_LRS)
    decays = [_DECAY] * n_models

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mop_bench.blocks"
        write_block_file(dataset, path, sizes["tuples_per_block"])

        unit_times: dict = {}
        for _rep in range(max(1, repeats)):
            grid_models = [
                LogisticRegression(sizes["n_features"], seed=1)
                for _ in range(n_models)
            ]
            grid_models, histories, rep_units = run_hopper_inprocess(
                path,
                grid_models,
                lrs=lrs,
                decays=decays,
                epochs=sizes["epochs"],
                n_workers=sizes["n_workers"],
                buffer_blocks=sizes["buffer_blocks"],
                seed=seed,
            )
            for unit, secs in rep_units.items():
                unit_times[unit] = min(unit_times.get(unit, secs), secs)
        schedule = HopperSchedule(n_models, sizes["n_workers"], sizes["epochs"])
        walls = modeled_walls(schedule, unit_times)

        # Every config re-trained alone over the same file must land on the
        # same bits — the hopper may only reorder *when* work happens.
        bit_exact = True
        records: list[dict] = []
        for m, lr in enumerate(lrs):
            solo = [LogisticRegression(sizes["n_features"], seed=1)]
            solo, _, solo_units = run_hopper_inprocess(
                path,
                solo,
                lrs=[lr],
                decays=[_DECAY],
                epochs=sizes["epochs"],
                n_workers=sizes["n_workers"],
                buffer_blocks=sizes["buffer_blocks"],
                seed=seed,
            )
            exact = bool(
                np.array_equal(
                    grid_models[m].parameter_vector(), solo[0].parameter_vector()
                )
            )
            bit_exact &= exact
            records.append(
                {
                    "config": m,
                    "lr": lr,
                    "decay": _DECAY,
                    "final_train_loss": histories[m].final.train_loss,
                    "final_train_score": histories[m].final.train_score,
                    "solo_wall_s": round(float(sum(solo_units.values())), 6),
                    "bit_exact_vs_solo": exact,
                }
            )

    one_pass_wall = walls["serial_wall_s"] / n_models
    overhead_ratio = (
        walls["hopper_wall_s"] / one_pass_wall if one_pass_wall > 0 else 0.0
    )
    return {
        "bench": "model-hopper-grid",
        "config": "quick" if quick else "full",
        "seed": seed,
        "sizes": sizes,
        "grid_lrs": lrs,
        "host_cores": host_cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "schedule": schedule.to_doc(),
        "records": records,
        "summary": {
            "n_models": n_models,
            "hopper_wall_s": round(walls["hopper_wall_s"], 6),
            "one_pass_wall_s": round(one_pass_wall, 6),
            "sequential_wall_s": round(walls["serial_wall_s"], 6),
            "overhead_vs_one_pass": round(overhead_ratio, 4),
            "gate_ratio": GATE_RATIO,
            "gate_pass": overhead_ratio <= GATE_RATIO,
            "speedup_vs_sequential": round(walls["speedup"], 3),
            "schedule_bubble_ratio": round(schedule.bubble_ratio, 4),
            "bit_exact": bit_exact,
            "wall_source": "modeled-critical-path",
        },
    }


def mop_bench_rows(doc: dict) -> list[dict]:
    """Flatten a bench document into printable table rows."""
    return [
        {
            "config": f"grid_{rec['config']}",
            "lr": rec["lr"],
            "train_loss": round(rec["final_train_loss"], 4),
            "train_score": round(rec["final_train_score"], 4),
            "solo wall (s)": rec["solo_wall_s"],
            "bit-exact": "yes" if rec["bit_exact_vs_solo"] else "NO",
        }
        for rec in doc["records"]
    ]
