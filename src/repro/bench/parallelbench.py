"""Scaling bench for the multi-process parallel engine (``BENCH_parallel.json``).

Trains the dense quick config with real worker processes at ``PN ∈ {1, 2, 4}``
and records per-epoch wall times and tuple throughput for the ``epoch``
(local-SGD, one sync per epoch — the throughput-oriented mode) and ``sync``
(per-batch gradient averaging) aggregation modes.

Speedup accounting is honest about the host.  On a machine with at least
``PN`` cores the reported speedup is purely measured.  On a smaller host the
``PN`` worker processes time-slice one core, so the measured wall cannot
shrink; there the bench *measures* both ingredients of the scaling model and
combines them:

* ``T1`` — the steady-state single-worker epoch wall (pure shard compute,
  no coordination), measured;
* ``coord(PN)`` — the coordination cost of a ``PN``-worker epoch
  (spawn-amortised IPC, barriers, queue traffic), measured as the excess of
  the ``PN``-worker epoch wall over ``T1`` (on one core the compute total is
  unchanged, so the excess *is* the coordination);
* ``modeled_wall(PN) = T1 / PN + coord(PN)`` — the only modeled step is
  dividing the compute across ``PN`` real cores.

Every record carries a ``speedup_source`` field (``"measured"`` or
``"modeled"``) plus ``host_cores``, so a reader can never mistake one for
the other; re-running on a multi-core host flips the source to measured
without changing the schema.
"""

from __future__ import annotations

import os
import platform
import tempfile
import time
from pathlib import Path

from ..data.generators import make_binary_dense
from ..ml.models.linear import LogisticRegression
from ..ml.schedules import ExponentialDecay
from ..storage import write_block_file

__all__ = ["QUICK_CONFIG", "FULL_CONFIG", "run_parallel_bench", "parallel_bench_rows"]

#: The dense quick config the acceptance gate runs (seconds on one core).
QUICK_CONFIG = {
    "n_tuples": 4000,
    "n_features": 16,
    "tuples_per_block": 50,
    "epochs": 3,
    "global_batch_size": 64,
    "buffer_blocks": 2,
}

FULL_CONFIG = {
    "n_tuples": 20000,
    "n_features": 32,
    "tuples_per_block": 100,
    "epochs": 4,
    "global_batch_size": 128,
    "buffer_blocks": 2,
}

_LR = 0.05


def _steady_epoch_wall(epoch_walls: list[float]) -> float:
    """Steady-state per-epoch wall: drop the first epoch (spawn warm-up)."""
    if len(epoch_walls) > 1:
        return min(epoch_walls[1:])
    return epoch_walls[0]


def run_parallel_bench(
    quick: bool = True,
    seed: int = 0,
    workers_list: tuple[int, ...] = (1, 2, 4),
    modes: tuple[str, ...] = ("epoch", "sync"),
) -> dict:
    """Run the scaling sweep and return the JSON-ready document."""
    from ..parallel import ParallelTrainer

    sizes = QUICK_CONFIG if quick else FULL_CONFIG
    host_cores = os.cpu_count() or 1
    dataset = make_binary_dense(sizes["n_tuples"], sizes["n_features"], seed=seed)
    records: list[dict] = []

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "parallel_bench.blocks"
        write_block_file(dataset, path, sizes["tuples_per_block"])
        for mode in modes:
            base_wall: float | None = None
            for n_workers in workers_list:
                model = LogisticRegression(sizes["n_features"], seed=1)
                t0 = time.perf_counter()
                result = ParallelTrainer(
                    path,
                    model,
                    n_workers=n_workers,
                    mode=mode,
                    epochs=sizes["epochs"],
                    global_batch_size=sizes["global_batch_size"],
                    buffer_blocks=sizes["buffer_blocks"],
                    seed=seed,
                    schedule=ExponentialDecay(_LR),
                ).run()
                total_wall = time.perf_counter() - t0
                epoch_wall = _steady_epoch_wall(result.epoch_walls)
                if n_workers == 1:
                    base_wall = epoch_wall
                # On one core the PN workers serialise, so any excess over the
                # single-worker epoch is coordination, not compute.
                coord_s = max(0.0, epoch_wall - base_wall)
                modeled_wall = base_wall / n_workers + coord_s
                measured_ok = host_cores >= n_workers
                effective_wall = epoch_wall if measured_ok else modeled_wall
                tuples = sizes["n_tuples"]
                records.append(
                    {
                        "mode": mode,
                        "workers": n_workers,
                        "epochs": sizes["epochs"],
                        "measured_epoch_wall_s": round(epoch_wall, 6),
                        "measured_total_wall_s": round(total_wall, 6),
                        "measured_tuples_per_s": round(tuples / epoch_wall, 1),
                        "coord_overhead_s": round(coord_s, 6),
                        "modeled_epoch_wall_s": round(modeled_wall, 6),
                        "epoch_speedup_vs_1": round(base_wall / effective_wall, 3),
                        "speedup_source": "measured" if measured_ok else "modeled",
                        "final_train_score": result.history.final.train_score,
                        "tuples_processed": result.tuples_processed,
                    }
                )

    def speedup_at(mode: str, workers: int) -> float | None:
        for rec in records:
            if rec["mode"] == mode and rec["workers"] == workers:
                return rec["epoch_speedup_vs_1"]
        return None

    headline_workers = max(workers_list)
    headline = speedup_at("epoch", headline_workers)
    return {
        "bench": "parallel-scaling",
        "config": "quick" if quick else "full",
        "seed": seed,
        "sizes": sizes,
        "host_cores": host_cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "records": records,
        "summary": {
            "headline_mode": "epoch",
            "headline_workers": headline_workers,
            "epoch_speedup_at_max_workers": headline,
            "speedup_source": (
                "measured" if host_cores >= headline_workers else "modeled"
            ),
            "sync_speedup_at_max_workers": speedup_at("sync", headline_workers),
        },
    }


def parallel_bench_rows(doc: dict) -> list[dict]:
    """Flatten a bench document into printable table rows."""
    return [
        {
            "mode": rec["mode"],
            "workers": rec["workers"],
            "epoch wall (s)": rec["measured_epoch_wall_s"],
            "tuples/s": rec["measured_tuples_per_s"],
            "coord (s)": rec["coord_overhead_s"],
            "speedup": f"{rec['epoch_speedup_vs_1']}x ({rec['speedup_source']})",
            "score": round(rec["final_train_score"], 4),
        }
        for rec in doc["records"]
    ]
