"""Scalar-vs-fused microbenchmarks for the vectorized execution engine.

Four workloads cover the two hot paths the block-fused engine vectorises:

* ``decode-dense`` / ``decode-sparse`` — parsing one page worth of encoded
  tuples: repeated :func:`~repro.storage.codec.decode_tuple` (scalar) vs one
  bulk :func:`~repro.storage.codec.decode_page` (fused);
* ``epoch-dense-lr`` / ``epoch-sparse-lr`` — one standard-SGD epoch of
  logistic regression over a shuffled visit order: the per-tuple
  ``step_example`` reference loop (scalar) vs the models' fused
  ``step_block`` kernel.  ``epoch-sparse-lr`` is the headline quick config —
  a criteo-style high-dimensional sparse GLM with L2, where the scalar
  path's eager O(d) decay and ``np.add.at`` are most punishing;
* ``decode-columnar-dense`` / ``decode-columnar-sparse`` — the same block
  decoded from the row payload (the *fused* row path as baseline, in the
  "scalar" slot) vs the columnar chunk payload (``decode_block_columnar`` +
  full materialisation).  Columnar wins because the hot columns are raw
  little-endian runs that ``np.frombuffer`` views zero-copy instead of
  parsing per-tuple headers.  The summary also records the payload size
  ratio (columnar / row) per workload — CI asserts it stays below 1.

``run_kernel_bench`` returns a JSON-ready document; the
``benchmarks/bench_kernels.py`` entry point persists it to
``benchmarks/results/`` and the repo-root ``BENCH_kernels.json`` so the perf
trajectory of this hot path is recorded per PR (and asserted in CI).
"""

from __future__ import annotations

import platform

import numpy as np

from ..data.sparse import SparseMatrix, SparseRow
from ..ml.models.base import SupervisedModel
from ..ml.models.linear import LogisticRegression
from ..storage.codec import (
    TupleBatch,
    TupleSchema,
    decode_page,
    decode_tuple,
    encode_tuple,
)
from ..storage.columnar import decode_block_columnar, encode_block_columnar
from .timing import ThroughputRecord, compare_throughput

__all__ = ["QUICK_SIZES", "FULL_SIZES", "run_kernel_bench", "kernel_bench_rows"]

#: Workload sizes: (decode tuples, decode dense d, decode sparse d/nnz,
#: epoch tuples, epoch dense d, epoch sparse d/nnz).
QUICK_SIZES = {
    "decode_tuples": 512,
    "decode_dense_d": 32,
    "decode_sparse_d": 4096,
    "decode_sparse_nnz": 10,
    # Columnar decode amortises its fixed directory-parse cost over the
    # block; benchmark at a realistic block population (a 10MB paper block
    # holds thousands of tuples), not the tiny scalar-decode run.
    "columnar_decode_tuples": 2048,
    "epoch_tuples": 3000,
    "epoch_dense_d": 128,
    "epoch_sparse_d": 8192,
    "epoch_sparse_nnz": 8,
}

FULL_SIZES = {
    "decode_tuples": 2048,
    "decode_dense_d": 64,
    "decode_sparse_d": 65536,
    "decode_sparse_nnz": 16,
    "columnar_decode_tuples": 8192,
    "epoch_tuples": 20000,
    "epoch_dense_d": 256,
    "epoch_sparse_d": 65536,
    "epoch_sparse_nnz": 16,
}

_LR = 0.05
_L2 = 1e-4


def _sparse_matrix(rng: np.random.Generator, n: int, d: int, nnz: int) -> SparseMatrix:
    rows = [
        SparseRow(
            np.sort(rng.choice(d, size=nnz, replace=False)),
            rng.standard_normal(nnz),
            d,
        )
        for _ in range(n)
    ]
    return SparseMatrix.from_rows(rows, d)


def _bench_decode_dense(sizes: dict, rng: np.random.Generator, repeats: int) -> ThroughputRecord:
    n, d = sizes["decode_tuples"], sizes["decode_dense_d"]
    schema = TupleSchema(d)
    buffer = b"".join(
        encode_tuple(i, 1.0, rng.standard_normal(d)) for i in range(n)
    )

    def scalar() -> None:
        offset = 0
        for _ in range(n):
            _, offset = decode_tuple(buffer, offset, schema)

    return compare_throughput(
        "decode-dense", n, scalar, lambda: decode_page(buffer, n, schema), repeats
    )


def _bench_decode_sparse(sizes: dict, rng: np.random.Generator, repeats: int) -> ThroughputRecord:
    n, d, nnz = (
        sizes["decode_tuples"],
        sizes["decode_sparse_d"],
        sizes["decode_sparse_nnz"],
    )
    schema = TupleSchema(d, sparse=True)
    buffer = b"".join(
        encode_tuple(
            i,
            1.0,
            SparseRow(
                np.sort(rng.choice(d, size=nnz, replace=False)),
                rng.standard_normal(nnz),
                d,
            ),
        )
        for i in range(n)
    )

    def scalar() -> None:
        offset = 0
        for _ in range(n):
            _, offset = decode_tuple(buffer, offset, schema)

    return compare_throughput(
        "decode-sparse", n, scalar, lambda: decode_page(buffer, n, schema), repeats
    )


def _bench_columnar_decode(
    sizes: dict, rng: np.random.Generator, repeats: int, sparse: bool
) -> tuple[ThroughputRecord, int, int]:
    """Row-fused vs columnar block decode; returns (record, row_B, col_B).

    The "scalar" slot holds the *row fused* decode — already the fast row
    path — so the record's speedup reads directly as "columnar over the best
    row decode", which is what the CI gate asserts stays >= 1.
    """
    n = sizes["columnar_decode_tuples"]
    ids = np.arange(n, dtype=np.int64)
    labels = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    if sparse:
        d, nnz = sizes["decode_sparse_d"], sizes["decode_sparse_nnz"]
        schema = TupleSchema(d, sparse=True)
        indptr = np.arange(0, nnz * (n + 1), nnz, dtype=np.int64)
        indices = np.concatenate(
            [np.sort(rng.choice(d, size=nnz, replace=False)) for _ in range(n)]
        ).astype(np.int64)
        values = rng.standard_normal(n * nnz)
        batch = TupleBatch(
            ids, labels, d, indptr=indptr, indices=indices, values=values
        )
        row_payload = b"".join(
            encode_tuple(
                int(ids[i]),
                float(labels[i]),
                SparseRow(
                    indices[indptr[i] : indptr[i + 1]],
                    values[indptr[i] : indptr[i + 1]],
                    d,
                ),
            )
            for i in range(n)
        )
    else:
        d = sizes["decode_dense_d"]
        schema = TupleSchema(d)
        dense = rng.standard_normal((n, d))
        batch = TupleBatch(ids, labels, d, dense=dense)
        row_payload = b"".join(
            encode_tuple(int(ids[i]), float(labels[i]), dense[i]) for i in range(n)
        )
    col_payload = encode_block_columnar(batch, schema)

    def columnar() -> None:
        decode_block_columnar(col_payload, schema).materialize()

    record = compare_throughput(
        f"decode-columnar-{'sparse' if sparse else 'dense'}",
        n,
        lambda: decode_page(row_payload, n, schema),
        columnar,
        repeats,
    )
    return record, len(row_payload), len(col_payload)


def _epoch_record(
    name: str,
    X,
    y: np.ndarray,
    order: np.ndarray,
    d: int,
    repeats: int,
) -> ThroughputRecord:
    n = int(order.size)

    def scalar() -> None:
        model = LogisticRegression(d, l2=_L2)
        # Unbound call = the per-tuple step_example reference loop.
        SupervisedModel.step_block(model, X, y, _LR, order=order)

    def fused() -> None:
        model = LogisticRegression(d, l2=_L2)
        model.step_block(X, y, _LR, order=order)

    return compare_throughput(name, n, scalar, fused, repeats)


def _bench_epoch_dense(sizes: dict, rng: np.random.Generator, repeats: int) -> ThroughputRecord:
    n, d = sizes["epoch_tuples"], sizes["epoch_dense_d"]
    X = rng.standard_normal((n, d))
    y = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    return _epoch_record("epoch-dense-lr", X, y, rng.permutation(n), d, repeats)


def _bench_epoch_sparse(sizes: dict, rng: np.random.Generator, repeats: int) -> ThroughputRecord:
    n, d, nnz = (
        sizes["epoch_tuples"],
        sizes["epoch_sparse_d"],
        sizes["epoch_sparse_nnz"],
    )
    X = _sparse_matrix(rng, n, d, nnz)
    y = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    return _epoch_record("epoch-sparse-lr", X, y, rng.permutation(n), d, repeats)


def run_kernel_bench(quick: bool = True, seed: int = 0, repeats: int = 3) -> dict:
    """Run all scalar-vs-fused workloads; return a JSON-ready document.

    The summary's ``epoch_speedup`` is the headline quick-config number (the
    sparse GLM epoch); ``min_speedup`` is the regression gate CI asserts
    stays ≥ 1.
    """
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rng = np.random.default_rng(seed)
    col_dense, dense_row_b, dense_col_b = _bench_columnar_decode(
        sizes, rng, repeats, sparse=False
    )
    col_sparse, sparse_row_b, sparse_col_b = _bench_columnar_decode(
        sizes, rng, repeats, sparse=True
    )
    records = [
        _bench_decode_dense(sizes, rng, repeats),
        _bench_decode_sparse(sizes, rng, repeats),
        col_dense,
        col_sparse,
        _bench_epoch_dense(sizes, rng, repeats),
        _bench_epoch_sparse(sizes, rng, repeats),
    ]
    by_name = {r.name: r for r in records}
    return {
        "config": "quick" if quick else "full",
        "seed": seed,
        "repeats": repeats,
        "sizes": dict(sizes),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "records": [r.to_dict() for r in records],
        "summary": {
            "epoch_speedup": by_name["epoch-sparse-lr"].speedup,
            "epoch_dense_speedup": by_name["epoch-dense-lr"].speedup,
            "decode_speedup": min(
                by_name["decode-dense"].speedup, by_name["decode-sparse"].speedup
            ),
            # Columnar-vs-row-fused decode: the headline is the sparse config
            # (raw CSR runs vs per-tuple header parsing).
            "columnar_decode_speedup": by_name["decode-columnar-sparse"].speedup,
            "columnar_decode_dense_speedup": by_name["decode-columnar-dense"].speedup,
            "columnar_bytes_ratio_dense": dense_col_b / dense_row_b,
            "columnar_bytes_ratio_sparse": sparse_col_b / sparse_row_b,
            "min_speedup": min(r.speedup for r in records),
        },
    }


def kernel_bench_rows(doc: dict) -> list[dict]:
    """Flatten a bench document into printable table rows."""
    return [
        {
            "kernel": r["name"],
            "tuples": r["n_tuples"],
            "scalar t/s": round(r["scalar_tuples_per_s"]),
            "fused t/s": round(r["fused_tuples_per_s"]),
            "speedup": round(r["speedup"], 2),
        }
        for r in doc["records"]
    ]
