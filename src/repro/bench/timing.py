"""Timing plumbing for the perf-regression harness.

Small, dependency-free helpers shared by ``benchmarks/bench_kernels.py`` and
the ``python -m repro kernel-bench`` CLI: best-of-N wall timing and a
throughput record comparing a scalar against a fused implementation of the
same work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["time_best", "ThroughputRecord", "compare_throughput"]


def time_best(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over ``repeats`` runs.

    Minimum — not mean — because scheduling noise only ever adds time; the
    fastest observed run is the closest estimate of the true cost.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class ThroughputRecord:
    """Scalar-vs-fused throughput of one kernel on one workload."""

    name: str
    n_tuples: int
    scalar_s: float
    fused_s: float

    @property
    def scalar_tuples_per_s(self) -> float:
        return self.n_tuples / self.scalar_s if self.scalar_s > 0 else float("inf")

    @property
    def fused_tuples_per_s(self) -> float:
        return self.n_tuples / self.fused_s if self.fused_s > 0 else float("inf")

    @property
    def speedup(self) -> float:
        return self.scalar_s / self.fused_s if self.fused_s > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_tuples": self.n_tuples,
            "scalar_s": self.scalar_s,
            "fused_s": self.fused_s,
            "scalar_tuples_per_s": self.scalar_tuples_per_s,
            "fused_tuples_per_s": self.fused_tuples_per_s,
            "speedup": self.speedup,
        }


def compare_throughput(
    name: str,
    n_tuples: int,
    scalar_fn: Callable[[], object],
    fused_fn: Callable[[], object],
    repeats: int = 3,
) -> ThroughputRecord:
    """Time the scalar and fused implementations of one workload."""
    return ThroughputRecord(
        name=name,
        n_tuples=n_tuples,
        scalar_s=time_best(scalar_fn, repeats),
        fused_s=time_best(fused_fn, repeats),
    )
