"""Physical row orderings used throughout the paper's evaluation.

The evaluation distinguishes three layouts of the same logical dataset:

* *shuffled* — rows in uniformly random order (the easy case; every strategy
  converges, Figure 2 right column);
* *clustered by label* — all ``-1`` rows before all ``+1`` rows (the paper's
  worst case, modelled after Bismarck's setup; Section 3);
* *ordered by feature* — rows sorted by the value of one feature column
  (Section 7.4.3, Figure 19), which also breaks No-Shuffle when the feature
  correlates with the label.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .sparse import SparseMatrix

__all__ = [
    "clustered_by_label",
    "ordered_by_feature",
    "interleaved_by_label",
    "feature_label_correlations",
]


def clustered_by_label(dataset: Dataset, seed: int = 0) -> Dataset:
    """Sort rows by label; ties broken randomly (stable worst case).

    For binary data this puts every negative tuple before every positive
    tuple, matching the clustered criteo/higgs layout of Section 3.  For
    multiclass data the classes appear in increasing label order, matching
    the clustered cifar-10 layout of Section 7.2.
    """
    rng = np.random.default_rng(seed)
    jitter = rng.random(dataset.n_tuples)
    order = np.lexsort((jitter, np.asarray(dataset.y, dtype=np.float64)))
    return dataset.reorder(order, suffix="clustered")


def ordered_by_feature(dataset: Dataset, feature: int, seed: int = 0) -> Dataset:
    """Sort rows by the value of ``feature`` (Section 7.4.3)."""
    if not 0 <= feature < dataset.n_features:
        raise IndexError(f"feature {feature} out of range [0, {dataset.n_features})")
    if isinstance(dataset.X, SparseMatrix):
        column = dataset.X.to_dense()[:, feature]
    else:
        column = dataset.X[:, feature]
    rng = np.random.default_rng(seed)
    jitter = rng.random(dataset.n_tuples)
    order = np.lexsort((jitter, column))
    return dataset.reorder(order, suffix=f"by-feature-{feature}")


def interleaved_by_label(dataset: Dataset, run_length: int, seed: int = 0) -> Dataset:
    """Alternate runs of each class — a partially clustered layout.

    Useful for sweeping the degree of clustering (and therefore the ``h_D``
    factor of Section 4.2) between fully shuffled and fully clustered.
    """
    if run_length <= 0:
        raise ValueError("run_length must be positive")
    rng = np.random.default_rng(seed)
    labels = np.asarray(dataset.y)
    classes = np.unique(labels)
    pools = [rng.permutation(np.nonzero(labels == c)[0]) for c in classes]
    cursors = [0] * len(pools)
    order: list[np.ndarray] = []
    turn = 0
    remaining = dataset.n_tuples
    while remaining > 0:
        pool = pools[turn % len(pools)]
        cursor = cursors[turn % len(pools)]
        take = pool[cursor : cursor + run_length]
        if take.size:
            order.append(take)
            cursors[turn % len(pools)] += take.size
            remaining -= take.size
        turn += 1
    return dataset.reorder(np.concatenate(order), suffix=f"runs-{run_length}")


def feature_label_correlations(dataset: Dataset) -> np.ndarray:
    """Pearson correlation of each feature with the label.

    Section 7.4.3 selects features with the highest / lowest / median label
    correlation to order by; this helper reproduces that selection.
    """
    X = dataset.X.to_dense() if isinstance(dataset.X, SparseMatrix) else dataset.X
    y = np.asarray(dataset.y, dtype=np.float64)
    xc = X - X.mean(axis=0)
    yc = y - y.mean()
    denom = np.sqrt((xc**2).sum(axis=0) * (yc**2).sum())
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denom > 0, xc.T @ yc / np.where(denom == 0, 1, denom), 0.0)
    return corr
