"""Dataset and block-layout abstractions.

A :class:`Dataset` bundles a feature matrix (dense ``numpy`` array or
:class:`~repro.data.sparse.SparseMatrix`), a label vector, and metadata.  The
*physical order* of the rows is significant: the whole point of the paper is
that SGD behaviour depends on how tuples are laid out on storage.  Reordering
therefore returns a new :class:`Dataset` whose rows are physically permuted.

A :class:`BlockLayout` describes how a table of ``n_tuples`` rows is cut into
``N`` blocks of ``b`` contiguous tuples each (the last block may be ragged),
mirroring how the PostgreSQL integration groups batches of contiguous heap
pages into blocks and how the PyTorch integration groups records of a binary
file (Section 5 and 6 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

import numpy as np

from .sparse import SparseMatrix

__all__ = ["Dataset", "BlockLayout", "FeatureMatrix"]

FeatureMatrix = Union[np.ndarray, SparseMatrix]


@dataclass(frozen=True)
class BlockLayout:
    """Partition of ``n_tuples`` contiguous tuples into fixed-size blocks."""

    n_tuples: int
    tuples_per_block: int

    def __post_init__(self) -> None:
        if self.n_tuples <= 0:
            raise ValueError("n_tuples must be positive")
        if self.tuples_per_block <= 0:
            raise ValueError("tuples_per_block must be positive")

    @property
    def n_blocks(self) -> int:
        return -(-self.n_tuples // self.tuples_per_block)

    def block_slice(self, block_id: int) -> slice:
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block_id {block_id} out of range [0, {self.n_blocks})")
        lo = block_id * self.tuples_per_block
        hi = min(lo + self.tuples_per_block, self.n_tuples)
        return slice(lo, hi)

    def block_indices(self, block_id: int) -> np.ndarray:
        s = self.block_slice(block_id)
        return np.arange(s.start, s.stop, dtype=np.int64)

    def block_size(self, block_id: int) -> int:
        s = self.block_slice(block_id)
        return s.stop - s.start

    def block_of(self, tuple_id: int) -> int:
        if not 0 <= tuple_id < self.n_tuples:
            raise IndexError(f"tuple_id {tuple_id} out of range [0, {self.n_tuples})")
        return tuple_id // self.tuples_per_block

    @classmethod
    def from_block_count(cls, n_tuples: int, n_blocks: int) -> "BlockLayout":
        """Build a layout with (approximately) ``n_blocks`` blocks."""
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        per_block = max(1, -(-n_tuples // n_blocks))
        return cls(n_tuples, per_block)


@dataclass
class Dataset:
    """A labelled dataset with a significant physical row order."""

    X: FeatureMatrix
    y: np.ndarray
    name: str = "dataset"
    task: str = "binary"  # binary | multiclass | regression
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y)
        if len(self.X) != len(self.y):
            raise ValueError(
                f"X has {len(self.X)} rows but y has {len(self.y)} labels"
            )
        if self.task not in ("binary", "multiclass", "regression"):
            raise ValueError(f"unknown task {self.task!r}")
        if self.task == "binary":
            labels = set(np.unique(self.y).tolist())
            if not labels <= {-1.0, 1.0, -1, 1}:
                raise ValueError("binary task requires labels in {-1, +1}")

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return len(self.y)

    @property
    def n_features(self) -> int:
        if isinstance(self.X, SparseMatrix):
            return self.X.n_cols
        return self.X.shape[1]

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.X, SparseMatrix)

    @property
    def n_classes(self) -> int:
        if self.task == "regression":
            raise ValueError("regression datasets have no classes")
        return int(np.unique(self.y).size)

    # ------------------------------------------------------------------
    def reorder(self, perm: np.ndarray, suffix: str = "reordered") -> "Dataset":
        """Return a new dataset whose physical row order is ``perm``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.size != self.n_tuples:
            raise ValueError("permutation length must match n_tuples")
        if isinstance(self.X, SparseMatrix):
            new_x: FeatureMatrix = self.X.take_rows(perm)
        else:
            new_x = self.X[perm]
        return replace(
            self,
            X=new_x,
            y=self.y[perm],
            name=f"{self.name}-{suffix}" if suffix else self.name,
            metadata=dict(self.metadata),
        )

    def shuffled(self, seed: int = 0) -> "Dataset":
        """A fully shuffled physical copy (the paper's 'shuffled version')."""
        rng = np.random.default_rng(seed)
        return self.reorder(rng.permutation(self.n_tuples), suffix="shuffled")

    def subset(self, indices: np.ndarray, suffix: str = "subset") -> "Dataset":
        indices = np.asarray(indices, dtype=np.int64)
        if isinstance(self.X, SparseMatrix):
            new_x: FeatureMatrix = self.X.take_rows(indices)
        else:
            new_x = self.X[indices]
        return replace(
            self,
            X=new_x,
            y=self.y[indices],
            name=f"{self.name}-{suffix}" if suffix else self.name,
            metadata=dict(self.metadata),
        )

    def split(self, train_fraction: float, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Random train/test split (applied before any clustering)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_tuples)
        cut = int(round(train_fraction * self.n_tuples))
        return (
            self.subset(perm[:cut], suffix="train"),
            self.subset(perm[cut:], suffix="test"),
        )

    def layout(self, tuples_per_block: int) -> BlockLayout:
        return BlockLayout(self.n_tuples, tuples_per_block)

    def __len__(self) -> int:
        return self.n_tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"Dataset({self.name!r}, n={self.n_tuples}, d={self.n_features}, "
            f"{kind}, task={self.task})"
        )
