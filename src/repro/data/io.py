"""Dataset file I/O: the LIBSVM text format and dense CSV.

The paper's GLM datasets (higgs, susy, epsilon, criteo, yfcc) ship as
LIBSVM files — ``label idx:value idx:value ...`` with 1-based feature
indices.  These readers/writers let the reproduction ingest real LIBSVM
dumps when available and export its synthetic stand-ins in the same format
(useful for cross-checking against the authors' released code).

CSV support covers the dense case: one row per tuple, the label in the
last column.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .dataset import Dataset
from .sparse import SparseMatrix, SparseRow

__all__ = ["read_libsvm", "write_libsvm", "read_csv", "write_csv"]


def write_libsvm(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` in LIBSVM format (1-based feature indices)."""
    path = Path(path)
    labels = np.asarray(dataset.y)
    with open(path, "w") as f:
        if isinstance(dataset.X, SparseMatrix):
            for i, row in enumerate(dataset.X.iter_rows()):
                feats = " ".join(
                    f"{int(j) + 1}:{v:.17g}" for j, v in zip(row.indices, row.values)
                )
                f.write(f"{_format_label(labels[i], dataset.task)} {feats}\n")
        else:
            for i in range(dataset.n_tuples):
                row = dataset.X[i]
                nz = np.nonzero(row)[0]
                feats = " ".join(f"{int(j) + 1}:{row[j]:.17g}" for j in nz)
                f.write(f"{_format_label(labels[i], dataset.task)} {feats}\n")


def _format_label(label, task: str) -> str:
    if task == "multiclass":
        return str(int(label))
    value = float(label)
    if value == int(value):
        return str(int(value))
    return f"{value:.17g}"


def read_libsvm(
    path: str | Path,
    n_features: int | None = None,
    task: str = "binary",
    dense: bool = False,
    name: str | None = None,
) -> Dataset:
    """Parse a LIBSVM file into a :class:`Dataset`.

    ``n_features`` defaults to the largest index seen.  ``dense=True``
    materialises a dense matrix (for low-dimensional data); otherwise the
    result is sparse.  Raises ``ValueError`` on malformed lines.
    """
    path = Path(path)
    labels: list[float] = []
    rows: list[tuple[np.ndarray, np.ndarray]] = []
    max_index = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError:
                raise ValueError(f"{path}:{lineno}: bad label {parts[0]!r}") from None
            indices: list[int] = []
            values: list[float] = []
            for token in parts[1:]:
                if ":" not in token:
                    raise ValueError(f"{path}:{lineno}: bad feature token {token!r}")
                idx_text, val_text = token.split(":", 1)
                try:
                    idx = int(idx_text)
                    val = float(val_text)
                except ValueError:
                    raise ValueError(f"{path}:{lineno}: bad feature token {token!r}") from None
                if idx < 1:
                    raise ValueError(f"{path}:{lineno}: LIBSVM indices are 1-based")
                indices.append(idx - 1)
                values.append(val)
            if indices and any(indices[i] >= indices[i + 1] for i in range(len(indices) - 1)):
                order = np.argsort(indices)
                indices = [indices[i] for i in order]
                values = [values[i] for i in order]
            rows.append((np.asarray(indices, dtype=np.int64), np.asarray(values)))
            if indices:
                max_index = max(max_index, indices[-1] + 1)

    if not rows:
        raise ValueError(f"{path}: no examples found")
    d = n_features if n_features is not None else max_index
    if d < max_index:
        raise ValueError(f"n_features={d} but file contains index {max_index}")
    y = np.asarray(labels)
    if task == "multiclass":
        y = y.astype(np.int64)

    if dense:
        X: np.ndarray | SparseMatrix = np.zeros((len(rows), d))
        for i, (indices, values) in enumerate(rows):
            X[i, indices] = values
    else:
        X = SparseMatrix.from_rows(
            [SparseRow(indices, values, d) for indices, values in rows], d
        )
    return Dataset(X, y, name=name or path.stem, task=task)


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dense dataset as CSV: feature columns then a label column."""
    if dataset.is_sparse:
        raise ValueError("CSV export supports dense datasets only; use write_libsvm")
    path = Path(path)
    header = ",".join([f"f{j}" for j in range(dataset.n_features)] + ["label"])
    table = np.column_stack([dataset.X, np.asarray(dataset.y, dtype=np.float64)])
    np.savetxt(path, table, delimiter=",", header=header, comments="", fmt="%.17g")


def read_csv(path: str | Path, task: str = "binary", name: str | None = None) -> Dataset:
    """Read a dense CSV written by :func:`write_csv` (label in last column)."""
    path = Path(path)
    table = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    if table.shape[1] < 2:
        raise ValueError(f"{path}: need at least one feature column and a label")
    y = table[:, -1]
    if task == "multiclass":
        y = y.astype(np.int64)
    return Dataset(table[:, :-1], y, name=name or path.stem, task=task)
