"""Scaled-down registry of the paper's datasets (Table 2).

Each entry maps one of the paper's datasets to a synthetic, laptop-scale
stand-in with the same *shape class* (dense low-dimensional, dense
high-dimensional, sparse, multiclass image-like, multiclass text-like) and a
comparable achievable accuracy so that the evaluation's accuracy tables keep
their relative structure.  Sizes are scaled down by roughly 10³; the paper's
original sizes are preserved in the entry metadata so benchmark reports can
print both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .dataset import Dataset
from .generators import (
    make_binary_dense,
    make_binary_sparse,
    make_multiclass_dense,
    make_multiclass_sparse,
    make_regression,
)

__all__ = ["DatasetSpec", "DATASETS", "load", "names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of (scaled) Table 2."""

    name: str
    kind: str  # dense | sparse | image | text | regression
    n_tuples: int
    n_features: int
    paper_tuples: str
    paper_features: str
    paper_size: str
    factory: Callable[[int], Dataset] = field(repr=False)
    train_fraction: float = 0.9

    def build(self, seed: int = 0) -> Dataset:
        dataset = self.factory(seed)
        dataset.name = self.name
        dataset.metadata.update(
            paper_tuples=self.paper_tuples,
            paper_features=self.paper_features,
            paper_size=self.paper_size,
        )
        return dataset

    def build_split(self, seed: int = 0) -> tuple[Dataset, Dataset]:
        return self.build(seed).split(self.train_fraction, seed=seed + 1)


def _spec(
    name: str,
    kind: str,
    n: int,
    d: int,
    paper_tuples: str,
    paper_features: str,
    paper_size: str,
    factory: Callable[[int], Dataset],
    train_fraction: float = 0.9,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        kind=kind,
        n_tuples=n,
        n_features=d,
        paper_tuples=paper_tuples,
        paper_features=paper_features,
        paper_size=paper_size,
        factory=factory,
        train_fraction=train_fraction,
    )


DATASETS: dict[str, DatasetSpec] = {
    # LIBSVM-style GLM datasets (Table 2).  Separations are tuned so the
    # converged accuracies land in the same band as the paper's Table 3
    # (higgs ~64 %, susy ~79 %, epsilon ~90 %, criteo ~79 %, yfcc ~96 %).
    "higgs": _spec(
        "higgs", "dense", 8000, 28, "10.0/1.0M", "28", "2.8 GB",
        lambda seed: make_binary_dense(8000, 28, separation=0.45, noise=1.0, seed=seed),
    ),
    "susy": _spec(
        "susy", "dense", 6000, 18, "4.5/0.5M", "18", "0.9 GB",
        lambda seed: make_binary_dense(6000, 18, separation=0.85, noise=1.0, seed=seed),
    ),
    "epsilon": _spec(
        "epsilon", "dense", 2000, 400, "0.4/0.1M", "2,000", "6.3 GB",
        lambda seed: make_binary_dense(2000, 400, separation=1.5, noise=1.0, seed=seed),
    ),
    "criteo": _spec(
        "criteo", "sparse", 8000, 5000, "92/6.0M", "1,000,000", "50 GB",
        lambda seed: make_binary_sparse(8000, 5000, nnz_per_row=30, separation=0.25, seed=seed),
    ),
    "yfcc": _spec(
        "yfcc", "dense", 3000, 512, "3.3/0.3M", "4,096", "55 GB",
        lambda seed: make_binary_dense(3000, 512, separation=2.2, noise=1.0, seed=seed),
    ),
    # Deep-learning datasets.
    "imagenet-like": _spec(
        "imagenet-like", "image", 6000, 64, "1.3/0.05M", "224*224*3", "150 GB",
        lambda seed: make_multiclass_dense(6000, 64, 20, separation=2.2, seed=seed),
    ),
    "cifar10-like": _spec(
        "cifar10-like", "image", 4000, 48, "0.05/0.01M", "3,072", "178 MB",
        lambda seed: make_multiclass_dense(4000, 48, 10, separation=2.4, seed=seed),
    ),
    "yelp-like": _spec(
        "yelp-like", "text", 3000, 2000, "0.65/0.05M", "-", "600 MB",
        lambda seed: make_multiclass_sparse(3000, 2000, 5, tokens_per_doc=30, topic_sharpness=0.2, seed=seed),
    ),
    # Section 7.4.2 datasets.
    "yearpred-like": _spec(
        "yearpred-like", "regression", 5000, 90, "0.46/0.05M", "90", "0.6 GB",
        lambda seed: make_regression(5000, 90, noise=0.5, seed=seed),
    ),
    "mnist8m-like": _spec(
        "mnist8m-like", "image", 5000, 64, "8.1/0.01M", "784", "19 GB",
        lambda seed: make_multiclass_dense(5000, 64, 10, separation=3.6, seed=seed),
    ),
}


def names() -> list[str]:
    return list(DATASETS)


def load(name: str, seed: int = 0) -> Dataset:
    """Build the scaled stand-in for the paper dataset ``name``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(DATASETS)}") from None
    return spec.build(seed)
