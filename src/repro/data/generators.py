"""Synthetic dataset generators standing in for the paper's datasets.

The paper trains on LIBSVM datasets (higgs, susy, epsilon, criteo, yfcc) and
image/text corpora (ImageNet, cifar-10, yelp-review-full).  None of those can
ship with an offline reproduction, and none of the paper's *claims* depend on
their exact content — only on their shape (dense vs sparse, dimensionality,
number of classes) and physical order.  These generators produce datasets
that are learnable by the same model families, with controllable Bayes error,
so that convergence-rate differences between shuffling strategies are visible
exactly as in the paper.

All generators return rows in fully shuffled order; apply
:mod:`repro.data.orderings` to obtain the clustered / feature-ordered copies.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .sparse import SparseMatrix, SparseRow

__all__ = [
    "make_binary_dense",
    "make_binary_sparse",
    "make_multiclass_dense",
    "make_multiclass_sparse",
    "make_regression",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def make_binary_dense(
    n_tuples: int,
    n_features: int,
    *,
    separation: float = 1.5,
    noise: float = 1.0,
    positive_fraction: float = 0.5,
    predictive_features: int | None = None,
    seed: int | np.random.Generator = 0,
    name: str = "binary-dense",
) -> Dataset:
    """Two Gaussian classes around ±``separation``·u along a random direction.

    ``separation``/``noise`` controls the achievable accuracy: the defaults
    give a linearly separable-with-overlap problem in the 75–95 % accuracy
    band, comparable to higgs (64 %) through yfcc (96 %) when tuned.

    ``predictive_features`` concentrates the class direction on that many
    coordinates (default: spread over all features).  Concentrated signal
    makes individual features correlate with the label — the regime of the
    paper's feature-ordered experiments (Section 7.4.3), where sorting by
    one informative feature partially sorts the labels.
    """
    rng = _rng(seed)
    if predictive_features is None:
        direction = rng.standard_normal(n_features)
    else:
        if not 1 <= predictive_features <= n_features:
            raise ValueError("predictive_features must be in [1, n_features]")
        direction = np.zeros(n_features)
        support = rng.choice(n_features, size=predictive_features, replace=False)
        direction[support] = rng.standard_normal(predictive_features)
    direction /= np.linalg.norm(direction)
    y = np.where(rng.random(n_tuples) < positive_fraction, 1.0, -1.0)
    X = rng.standard_normal((n_tuples, n_features)) * noise
    X += np.outer(y * separation, direction)
    return Dataset(X, y, name=name, task="binary", metadata={"separation": separation})


def make_binary_sparse(
    n_tuples: int,
    n_features: int,
    *,
    nnz_per_row: int = 30,
    separation: float = 1.2,
    positive_fraction: float = 0.5,
    seed: int | np.random.Generator = 0,
    name: str = "binary-sparse",
) -> Dataset:
    """A criteo-like sparse binary dataset.

    Each row activates ``nnz_per_row`` random features; a subset of features
    is predictive (its value is shifted by the label), the rest is noise.
    """
    rng = _rng(seed)
    y = np.where(rng.random(n_tuples) < positive_fraction, 1.0, -1.0)
    n_predictive = max(1, n_features // 10)
    rows = []
    for i in range(n_tuples):
        # Half the non-zeros come from the predictive band so the label
        # signal survives sparsification.
        k_pred = nnz_per_row // 2
        k_noise = nnz_per_row - k_pred
        pred_idx = rng.choice(n_predictive, size=min(k_pred, n_predictive), replace=False)
        noise_idx = n_predictive + rng.choice(
            n_features - n_predictive,
            size=min(k_noise, n_features - n_predictive),
            replace=False,
        )
        indices = np.sort(np.concatenate([pred_idx, noise_idx]))
        values = rng.standard_normal(indices.size)
        values[np.isin(indices, pred_idx)] += y[i] * separation
        rows.append(SparseRow(indices, values, n_features))
    X = SparseMatrix.from_rows(rows, n_features)
    return Dataset(X, y, name=name, task="binary", metadata={"nnz_per_row": nnz_per_row})


def make_multiclass_dense(
    n_tuples: int,
    n_features: int,
    n_classes: int,
    *,
    separation: float = 2.5,
    noise: float = 1.0,
    seed: int | np.random.Generator = 0,
    name: str = "multiclass-dense",
) -> Dataset:
    """Gaussian blobs, one per class — the cifar/ImageNet stand-in.

    Class centroids are random unit vectors scaled by ``separation``; a
    non-convex model (MLP) reaches high accuracy while a badly ordered SGD
    run collapses to predicting the last-seen classes, reproducing the
    near-zero No-Shuffle accuracy of Figure 7.
    """
    rng = _rng(seed)
    centroids = rng.standard_normal((n_classes, n_features))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    centroids *= separation
    y = rng.integers(0, n_classes, size=n_tuples)
    X = centroids[y] + rng.standard_normal((n_tuples, n_features)) * noise
    return Dataset(
        X,
        y.astype(np.int64),
        name=name,
        task="multiclass",
        metadata={"n_classes": n_classes},
    )


def make_multiclass_sparse(
    n_tuples: int,
    vocabulary: int,
    n_classes: int,
    *,
    tokens_per_doc: int = 40,
    topic_sharpness: float = 0.7,
    seed: int | np.random.Generator = 0,
    name: str = "multiclass-sparse",
) -> Dataset:
    """A yelp-review-like bag-of-words corpus.

    Each class owns a topic distribution over the vocabulary; documents mix
    ``topic_sharpness`` of their class topic with uniform background noise.
    """
    rng = _rng(seed)
    if not 0.0 < topic_sharpness <= 1.0:
        raise ValueError("topic_sharpness must be in (0, 1]")
    words_per_class = max(1, vocabulary // (2 * n_classes))
    class_words = [
        rng.choice(vocabulary, size=words_per_class, replace=False)
        for _ in range(n_classes)
    ]
    y = rng.integers(0, n_classes, size=n_tuples)
    rows = []
    for i in range(n_tuples):
        n_topic = rng.binomial(tokens_per_doc, topic_sharpness)
        topic_tokens = rng.choice(class_words[y[i]], size=n_topic, replace=True)
        noise_tokens = rng.integers(0, vocabulary, size=tokens_per_doc - n_topic)
        tokens = np.concatenate([topic_tokens, noise_tokens])
        indices, counts = np.unique(tokens, return_counts=True)
        rows.append(SparseRow(indices, counts.astype(np.float64), vocabulary))
    X = SparseMatrix.from_rows(rows, vocabulary)
    return Dataset(
        X,
        y.astype(np.int64),
        name=name,
        task="multiclass",
        metadata={"n_classes": n_classes, "vocabulary": vocabulary},
    )


def make_regression(
    n_tuples: int,
    n_features: int,
    *,
    noise: float = 0.5,
    seed: int | np.random.Generator = 0,
    name: str = "regression",
) -> Dataset:
    """A linear regression problem (the YearPredictionMSD stand-in)."""
    rng = _rng(seed)
    w = rng.standard_normal(n_features)
    X = rng.standard_normal((n_tuples, n_features))
    y = X @ w + rng.standard_normal(n_tuples) * noise
    return Dataset(X, y, name=name, task="regression", metadata={"noise": noise})
