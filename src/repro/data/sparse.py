"""A minimal CSR sparse matrix for high-dimensional linear models.

The paper stores sparse datasets (e.g. criteo, one million features) in
PostgreSQL as ``<id, features_k[], features_v[], label>`` rows, where
``features_k`` holds the indices of non-zero dimensions and ``features_v``
their values.  This module provides the in-memory analogue: a compressed
sparse row matrix supporting exactly the operations the SGD kernels need
(row extraction, row-times-vector, scaled row-into-vector accumulation, and
matrix-vector products for vectorised loss evaluation).

We implement it from scratch rather than depending on ``scipy.sparse`` so the
storage codec (``repro.storage.codec``) and the DB tuple layout can share the
same index/value representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["SparseMatrix", "SparseRow"]


class SparseRow:
    """A single sparse example: parallel index and value arrays."""

    __slots__ = ("indices", "values", "n_features", "_unique")

    def __init__(self, indices: np.ndarray, values: np.ndarray, n_features: int):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.indices.shape != self.values.shape:
            raise ValueError(
                f"indices/values length mismatch: {self.indices.shape} vs {self.values.shape}"
            )
        self.n_features = int(n_features)
        # Detected once at construction: duplicate-free index arrays take the
        # direct fancy-index ``+=`` path in add_into; ``np.add.at`` stays as
        # the duplicate-safe fallback.  Rows decoded from the codec / CSR
        # slices are strictly sorted, so the diff check is the common case.
        n = self.indices.size
        if n <= 1:
            self._unique = True
        else:
            self._unique = bool(np.all(np.diff(self.indices) > 0)) or (
                np.unique(self.indices).size == n
            )

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def has_unique_indices(self) -> bool:
        """True when no feature index repeats (fast scatter-add is safe)."""
        return self._unique

    def dot(self, w: np.ndarray) -> float:
        """Inner product with a dense weight vector."""
        return float(self.values @ w[self.indices])

    def add_into(self, out: np.ndarray, scale: float) -> None:
        """``out[indices] += scale * values`` (scatter-add).

        Duplicate-free rows (the overwhelmingly common case) use direct
        fancy-index ``+=``; rows with repeated indices fall back to the
        slower but duplicate-accumulating ``np.add.at``.
        """
        if self._unique:
            out[self.indices] += scale * self.values
        else:
            np.add.at(out, self.indices, scale * self.values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.n_features, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseRow(nnz={self.nnz}, n_features={self.n_features})"


class SparseMatrix:
    """Compressed sparse row matrix over float64 data.

    Parameters
    ----------
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column index array of length ``nnz``.
    data:
        Value array of length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr must have n_rows + 1 entries")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data must have equal length")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr[-1] must equal nnz")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[SparseRow], n_features: int) -> "SparseMatrix":
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, row in enumerate(rows):
            indptr[i + 1] = indptr[i] + row.nnz
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for i, row in enumerate(rows):
            indices[indptr[i] : indptr[i + 1]] = row.indices
            data[indptr[i] : indptr[i + 1]] = row.values
        return cls(indptr, indices, data, (len(rows), n_features))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows = []
        for i in range(dense.shape[0]):
            nz = np.nonzero(dense[i])[0]
            rows.append(SparseRow(nz, dense[i, nz], dense.shape[1]))
        return cls.from_rows(rows, dense.shape[1])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row(self, i: int) -> SparseRow:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return SparseRow(self.indices[lo:hi], self.data[lo:hi], self.n_cols)

    def iter_rows(self) -> Iterable[SparseRow]:
        for i in range(self.n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def dot(self, w: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``X @ w`` returning a dense vector."""
        w = np.asarray(w, dtype=np.float64)
        products = self.data * w[self.indices]
        if not products.size:
            return np.zeros(self.n_rows, dtype=np.float64)
        # Segment-sum by row; bincount handles empty rows correctly.
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        return np.bincount(row_ids, weights=products, minlength=self.n_rows)

    def t_dot(self, v: np.ndarray) -> np.ndarray:
        """Transposed product ``X.T @ v`` returning a dense vector."""
        v = np.asarray(v, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        # bincount is a segment-sum over column ids — same accumulation order
        # as np.add.at but without its per-element dispatch overhead.
        return np.bincount(
            self.indices, weights=self.data * v[row_ids], minlength=self.n_cols
        )

    def take_rows(self, order: np.ndarray) -> "SparseMatrix":
        """Return a new matrix with rows permuted/selected by ``order``."""
        order = np.asarray(order, dtype=np.int64)
        counts = np.diff(self.indptr)[order]
        indptr = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        data = np.empty(int(indptr[-1]), dtype=np.float64)
        for new_i, old_i in enumerate(order):
            lo, hi = self.indptr[old_i], self.indptr[old_i + 1]
            nlo, nhi = indptr[new_i], indptr[new_i + 1]
            indices[nlo:nhi] = self.indices[lo:hi]
            data[nlo:nhi] = self.data[lo:hi]
        return SparseMatrix(indptr, indices, data, (order.size, self.n_cols))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        dense[row_ids, self.indices] = self.data
        return dense

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseMatrix(shape={self.shape}, nnz={self.nnz})"
