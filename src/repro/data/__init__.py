"""Datasets: synthetic generators, physical orderings, and the Table 2 registry."""

from .dataset import BlockLayout, Dataset, FeatureMatrix
from .io import read_csv, read_libsvm, write_csv, write_libsvm
from .generators import (
    make_binary_dense,
    make_binary_sparse,
    make_multiclass_dense,
    make_multiclass_sparse,
    make_regression,
)
from .orderings import (
    clustered_by_label,
    feature_label_correlations,
    interleaved_by_label,
    ordered_by_feature,
)
from .registry import DATASETS, DatasetSpec, load, names
from .sparse import SparseMatrix, SparseRow

__all__ = [
    "BlockLayout",
    "Dataset",
    "FeatureMatrix",
    "SparseMatrix",
    "SparseRow",
    "make_binary_dense",
    "make_binary_sparse",
    "make_multiclass_dense",
    "make_multiclass_sparse",
    "make_regression",
    "clustered_by_label",
    "ordered_by_feature",
    "interleaved_by_label",
    "feature_label_correlations",
    "DATASETS",
    "DatasetSpec",
    "load",
    "names",
    "read_libsvm",
    "write_libsvm",
    "read_csv",
    "write_csv",
]
